"""Setuptools shim.

This environment has no network access and no ``wheel`` package, so the
PEP 517 editable-install path (which builds a wheel) is unavailable.
This shim lets ``pip install -e . --no-use-pep517`` fall back to the
legacy ``setup.py develop`` route.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
