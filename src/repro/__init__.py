"""repro: a reproduction of PAST (Druschel & Rowstron, HotOS 2001).

A complete, simulated implementation of the PAST peer-to-peer storage
utility and the Pastry routing substrate it is built on, plus the
baselines, workloads and analysis tooling used to regenerate the paper's
quantitative claims.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the per-claim results.

Quickstart::

    from repro import PastNetwork, RealData

    network = PastNetwork()
    network.build(64, method="join")
    alice = network.create_client(usage_quota=1 << 20)
    handle = alice.insert("hello.txt", RealData(b"hello, PAST"), replication_factor=3)
    bob = network.create_client(usage_quota=0)
    assert bob.lookup(handle.file_id).to_bytes() == b"hello, PAST"
"""

from repro.core.broker import Broker
from repro.core.client import FileHandle, LookupResult, PastClient
from repro.core.errors import (
    CertificateError,
    DuplicateFileError,
    InsertRejectedError,
    LookupFailedError,
    PastError,
    QuotaExceededError,
    ReclaimDeniedError,
)
from repro.core.files import FileData, RealData, SyntheticData
from repro.core.network import PastNetwork
from repro.core.node import PastNode
from repro.core.smartcard import SmartCard
from repro.core.storage_manager import StoragePolicy
from repro.pastry.network import PastryNetwork
from repro.pastry.nodeid import IdSpace
from repro.sim.rng import RngRegistry

__version__ = "1.0.0"

__all__ = [
    "Broker",
    "PastClient",
    "FileHandle",
    "LookupResult",
    "PastError",
    "QuotaExceededError",
    "InsertRejectedError",
    "LookupFailedError",
    "DuplicateFileError",
    "ReclaimDeniedError",
    "CertificateError",
    "FileData",
    "RealData",
    "SyntheticData",
    "PastNetwork",
    "PastNode",
    "SmartCard",
    "StoragePolicy",
    "PastryNetwork",
    "IdSpace",
    "RngRegistry",
    "__version__",
]
