"""The circular identifier space and its digit arithmetic.

NodeIds are 128-bit unsigned integers, thought of (for routing purposes)
as a sequence of digits with base 2^b.  The space is circular: the
"numerically closest" relation and the leaf set wrap around 2^128 - 1 to
0, exactly as in the Pastry paper.

Ids are represented as plain Python ints for speed; :class:`IdSpace`
carries the parameters (width in bits, digit size b) and provides all the
arithmetic, so the rest of the code never hard-codes 128 or 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, List


@dataclass(frozen=True)
class IdSpace:
    """Parameters and arithmetic of a circular id space.

    ``bits`` is the identifier width (128 for nodeIds); ``b`` is the digit
    width in bits (the paper's configuration parameter, typical value 4,
    i.e. hexadecimal digits).
    """

    bits: int = 128
    b: int = 4

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.b <= 0:
            raise ValueError("bits and b must be positive")
        if self.bits % self.b != 0:
            raise ValueError(f"bits ({self.bits}) must be a multiple of b ({self.b})")

    # Derived parameters are consulted on every distance/offset
    # computation (millions of times per build), so they are computed
    # once per instance rather than per access.  ``cached_property``
    # writes straight into ``__dict__``, which a frozen dataclass allows.
    @cached_property
    def size(self) -> int:
        """Number of ids in the space: 2^bits."""
        return 1 << self.bits

    @cached_property
    def digits(self) -> int:
        """Number of base-2^b digits in an id."""
        return self.bits // self.b

    @cached_property
    def base(self) -> int:
        """The digit base, 2^b."""
        return 1 << self.b

    def validate(self, value: int) -> int:
        """Check that *value* is a legal id and return it."""
        if not 0 <= value < self.size:
            raise ValueError(f"id {value} out of range for a {self.bits}-bit space")
        return value

    def random_id(self, rng: random.Random) -> int:
        """A uniformly random id (used to model hash-assigned ids)."""
        return rng.getrandbits(self.bits)

    def digit(self, value: int, index: int) -> int:
        """The *index*-th digit of *value*, 0 being the most significant."""
        if not 0 <= index < self.digits:
            raise IndexError(f"digit index {index} out of range [0, {self.digits})")
        shift = self.bits - (index + 1) * self.b
        return (value >> shift) & (self.base - 1)

    def digits_of(self, value: int) -> List[int]:
        """All digits of *value*, most significant first."""
        return [self.digit(value, i) for i in range(self.digits)]

    def from_digits(self, digits: List[int]) -> int:
        """Reassemble an id from its digit list."""
        if len(digits) != self.digits:
            raise ValueError(f"need exactly {self.digits} digits")
        value = 0
        for d in digits:
            if not 0 <= d < self.base:
                raise ValueError(f"digit {d} out of range [0, {self.base})")
            value = (value << self.b) | d
        return value

    def prefix(self, value: int, row: int) -> int:
        """The first *row* base-2^b digits of *value*, packed into an int.

        Row 0 is the empty prefix (always 0).  The oracle build and the
        incremental maintainer both group routing-table candidates by
        ``(row, prefix, digit)``; sharing this helper keeps the two
        groupings bit-identical.
        """
        if row <= 0:
            return 0
        return value >> (self.bits - row * self.b)

    def shared_prefix_length(self, a: int, b_val: int) -> int:
        """Number of leading base-2^b digits *a* and *b_val* share."""
        diff = a ^ b_val
        if diff == 0:
            return self.digits
        # Index of the most significant differing bit, then floor-divide
        # into digit positions.
        top_bit = diff.bit_length() - 1
        differing_digit = (self.bits - 1 - top_bit) // self.b
        return differing_digit

    def distance(self, a: int, b_val: int) -> int:
        """Circular distance: min(|a-b|, 2^bits - |a-b|).

        This is the metric behind "numerically closest": the leaf set and
        replica roots wrap around the end of the id space.
        """
        d = abs(a - b_val)
        return min(d, self.size - d)

    def clockwise_offset(self, origin: int, target: int) -> int:
        """Distance from *origin* to *target* travelling clockwise
        (in the direction of increasing ids, with wraparound)."""
        return (target - origin) % self.size

    def counter_clockwise_offset(self, origin: int, target: int) -> int:
        """Distance from *origin* to *target* travelling counter-clockwise."""
        return (origin - target) % self.size

    def is_between_clockwise(self, low: int, value: int, high: int) -> bool:
        """True iff travelling clockwise from *low* reaches *value* no
        later than *high* (inclusive bounds)."""
        return self.clockwise_offset(low, value) <= self.clockwise_offset(low, high)

    def closest(self, target: int, candidates: Iterator[int]) -> int:
        """The candidate with minimum circular distance to *target*.

        Ties (two candidates equidistant, one on each side) are broken
        towards the numerically larger candidate, deterministically.
        """
        best = None
        best_key = None
        for candidate in candidates:
            key = (self.distance(candidate, target), -candidate)
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        if best is None:
            raise ValueError("closest() of empty candidate set")
        return best

    def format_id(self, value: int) -> str:
        """Hex rendering padded to the full digit count (b=4 renders each
        routing digit as one hex character)."""
        hex_chars = (self.bits + 3) // 4
        return f"{value:0{hex_chars}x}"

    def truncate(self, value: int, from_bits: int) -> int:
        """Keep the ``self.bits`` most significant bits of a wider id.

        PAST stores a file on the nodes whose 128-bit nodeIds are closest
        to the 128 *most significant* bits of the 160-bit fileId; this is
        that projection.
        """
        if from_bits < self.bits:
            raise ValueError(f"cannot truncate a {from_bits}-bit id to {self.bits} bits")
        return value >> (from_bits - self.bits)
