"""The leaf set: the l nodes numerically closest to a node.

Each Pastry node maintains the l/2 nodes with numerically closest larger
nodeIds and the l/2 with numerically closest smaller nodeIds (circular,
so "larger" means clockwise).  The leaf set serves three roles:

* routing termination -- if a key falls within the leaf set's range the
  message is forwarded directly to the numerically closest member;
* failure tolerance -- delivery is guaranteed unless floor(l/2) nodes
  with adjacent nodeIds fail simultaneously (claim C6);
* replica placement -- PAST stores a file on the k members closest to
  the fileId, which the root reads off its leaf set.

In a network smaller than l the two sides overlap (the same node can be
among the closest on both sides); this is normal and handled throughout.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.pastry.nodeid import IdSpace


class LeafSet:
    """Leaf set of one node (the *owner*)."""

    def __init__(self, space: IdSpace, owner: int, capacity: int = 32) -> None:
        if capacity < 2 or capacity % 2 != 0:
            raise ValueError("leaf set capacity l must be an even number >= 2")
        self.space = space
        self.owner = space.validate(owner)
        self.capacity = capacity
        # Sorted by clockwise offset from the owner, nearest first.
        self._larger: List[int] = []
        # Sorted by counter-clockwise offset from the owner, nearest first.
        self._smaller: List[int] = []

    @property
    def half(self) -> int:
        return self.capacity // 2

    # ------------------------------------------------------------------ #
    # membership maintenance
    # ------------------------------------------------------------------ #

    def add(self, node_id: int) -> bool:
        """Consider *node_id* for membership; returns True if it was
        admitted to (or already on) either side."""
        if node_id == self.owner:
            return False
        self.space.validate(node_id)
        admitted = self._admit(self._larger, node_id, self.space.clockwise_offset)
        admitted |= self._admit(self._smaller, node_id, self.space.counter_clockwise_offset)
        return admitted

    def _admit(self, side: List[int], node_id: int, offset_fn) -> bool:
        if node_id in side:
            return True
        offset = offset_fn(self.owner, node_id)
        position = 0
        while position < len(side) and offset_fn(self.owner, side[position]) < offset:
            position += 1
        side.insert(position, node_id)
        if len(side) > self.half:
            evicted = side.pop()
            return evicted != node_id
        return True

    def remove(self, node_id: int) -> bool:
        """Drop a (failed) node from both sides; True if it was present."""
        present = False
        for side in (self._larger, self._smaller):
            if node_id in side:
                side.remove(node_id)
                present = True
        return present

    def members(self) -> Set[int]:
        """All distinct leaf set members (owner excluded)."""
        return set(self._larger) | set(self._smaller)

    def larger_side(self) -> List[int]:
        """Clockwise neighbours, nearest first (copy)."""
        return list(self._larger)

    def smaller_side(self) -> List[int]:
        """Counter-clockwise neighbours, nearest first (copy)."""
        return list(self._smaller)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._larger or node_id in self._smaller

    def __len__(self) -> int:
        return len(self.members())

    def is_side_full(self, larger: bool) -> bool:
        side = self._larger if larger else self._smaller
        return len(side) >= self.half

    # ------------------------------------------------------------------ #
    # routing queries
    # ------------------------------------------------------------------ #

    def covers(self, key: int) -> bool:
        """True iff *key* falls within the leaf set's id range.

        The range runs clockwise from the furthest smaller-side member to
        the furthest larger-side member.  A side that is not full implies
        the network holds fewer nodes than the side can, i.e. the leaf
        set sees the whole ring, so coverage is total.
        """
        if not self._larger or not self._smaller:
            return True
        if len(self._larger) < self.half or len(self._smaller) < self.half:
            return True
        if set(self._larger) & set(self._smaller):
            # A node on both sides means the two arcs overlap: the leaf
            # set contains every other node in the network, so it covers
            # the whole ring (possible only when N - 1 < l).
            return True
        low = self._smaller[-1]
        high = self._larger[-1]
        return self.space.is_between_clockwise(low, key, high)

    def closest_to(self, key: int, include_owner: bool = True) -> int:
        """The member (optionally including the owner) numerically
        closest to *key*."""
        candidates = self.members()
        if include_owner:
            candidates.add(self.owner)
        return self.space.closest(key, iter(candidates))

    def replica_candidates(self, key: int, k: int) -> List[int]:
        """The k nodes numerically closest to *key* among owner + members.

        This is how a PAST root node selects the k storage nodes for a
        file: itself plus its leaf set neighbours, ranked by circular
        distance to the fileId.  Requires k <= l/2 + 1 for correctness
        in a large network (otherwise the leaf set may not see enough of
        the ring); we enforce the safe bound.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > self.half + 1:
            raise ValueError(
                f"replication factor {k} exceeds what a leaf set of "
                f"l={self.capacity} can place (max {self.half + 1})"
            )
        pool = sorted(
            self.members() | {self.owner},
            key=lambda n: (self.space.distance(n, key), -n),
        )
        return pool[:k]

    def neighbours_adjacent_to_owner(self, count: int) -> List[int]:
        """The *count* members nearest the owner on each side, interleaved
        (used by keep-alive scheduling)."""
        out: List[int] = []
        for i in range(max(len(self._larger), len(self._smaller))):
            if i < len(self._larger):
                out.append(self._larger[i])
            if i < len(self._smaller):
                out.append(self._smaller[i])
            if len(out) >= count:
                break
        return out[:count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fmt = self.space.format_id
        return (
            f"LeafSet(owner={fmt(self.owner)}, "
            f"smaller={[fmt(n) for n in self._smaller]}, "
            f"larger={[fmt(n) for n in self._larger]})"
        )
