"""The leaf set: the l nodes numerically closest to a node.

Each Pastry node maintains the l/2 nodes with numerically closest larger
nodeIds and the l/2 with numerically closest smaller nodeIds (circular,
so "larger" means clockwise).  The leaf set serves three roles:

* routing termination -- if a key falls within the leaf set's range the
  message is forwarded directly to the numerically closest member;
* failure tolerance -- delivery is guaranteed unless floor(l/2) nodes
  with adjacent nodeIds fail simultaneously (claim C6);
* replica placement -- PAST stores a file on the k members closest to
  the fileId, which the root reads off its leaf set.

In a network smaller than l the two sides overlap (the same node can be
among the closest on both sides); this is normal and handled throughout.

Performance notes: the routing queries (``covers``, ``closest_to``,
``replica_candidates``) run on every hop of every message, so they work
off caches -- a sorted ring of members (owner included) binary-searched
per query, and an overlap flag -- instead of materialising fresh sets.
Each side also keeps its members' circular offsets in a parallel sorted
list, making admission a binary search rather than a scan of recomputed
offsets.  All caches invalidate on mutation (``add`` / ``remove``); the
``version`` stamp lets dependants (``NodeState.known_nodes``) do the
same.  Every query returns bit-identical results to the original
set-based implementation, which the equivalence tests assert.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Set

from repro.pastry.nodeid import IdSpace
from repro.pastry.versioning import next_version


class LeafSet:
    """Leaf set of one node (the *owner*)."""

    __slots__ = (
        "space",
        "owner",
        "capacity",
        "half",
        "_larger",
        "_larger_offsets",
        "_smaller",
        "_smaller_offsets",
        "version",
        "_members_cache",
        "_ring_cache",
        "_members_sorted_cache",
        "_overlap_cache",
    )

    def __init__(self, space: IdSpace, owner: int, capacity: int = 32) -> None:
        if capacity < 2 or capacity % 2 != 0:
            raise ValueError("leaf set capacity l must be an even number >= 2")
        self.space = space
        self.owner = space.validate(owner)
        self.capacity = capacity
        self.half = capacity // 2
        # Sorted by clockwise offset from the owner, nearest first, with
        # the offsets themselves kept in a parallel list.
        self._larger: List[int] = []
        self._larger_offsets: List[int] = []
        # Sorted by counter-clockwise offset from the owner, nearest first.
        self._smaller: List[int] = []
        self._smaller_offsets: List[int] = []
        self.version = next_version()
        self._members_cache: Optional[frozenset] = None
        self._ring_cache: Optional[List[int]] = None  # sorted, owner included
        self._members_sorted_cache: Optional[List[int]] = None
        self._overlap_cache: Optional[bool] = None

    def _invalidate(self) -> None:
        self.version = next_version()
        self._members_cache = None
        self._ring_cache = None
        self._members_sorted_cache = None
        self._overlap_cache = None

    # ------------------------------------------------------------------ #
    # membership maintenance
    # ------------------------------------------------------------------ #

    def add(self, node_id: int) -> bool:
        """Consider *node_id* for membership; returns True if it was
        admitted to (or already on) either side."""
        if node_id == self.owner:
            return False
        self.space.validate(node_id)
        # One modular offset computation covers both sides: for distinct
        # ids the counter-clockwise offset is the ring complement of the
        # clockwise one.
        size = self.space.size
        clockwise = (node_id - self.owner) % size
        counter_clockwise = size - clockwise
        admitted, mutated = self._admit(
            self._larger, self._larger_offsets, node_id, clockwise
        )
        admitted_s, mutated_s = self._admit(
            self._smaller, self._smaller_offsets, node_id, counter_clockwise
        )
        if mutated or mutated_s:
            self._invalidate()
        return admitted or admitted_s

    def _admit(
        self, side: List[int], offsets: List[int], node_id: int, offset: int
    ) -> tuple:
        """Returns (admitted, mutated).  The offset uniquely identifies
        the id on a side, so the membership test rides the same binary
        search as the insertion."""
        position = bisect.bisect_left(offsets, offset)
        if position < len(offsets) and offsets[position] == offset:
            return True, False
        if len(side) >= self.half:
            if position >= self.half:
                # Would be inserted past the capacity boundary and
                # immediately evicted: reject without touching the side.
                return False, False
            side.insert(position, node_id)
            offsets.insert(position, offset)
            side.pop()
            offsets.pop()
            return True, True
        side.insert(position, node_id)
        offsets.insert(position, offset)
        return True, True

    def seed_from_ring(self, ids, index: int) -> None:
        """Load both sides straight off a sorted live ring.

        *ids* is the ascending ring of live ids with the owner at
        *index*.  Each side becomes the ``min(l/2, count-1)`` ring
        neighbours in that direction, nearest first -- byte-identical to
        offering the whole +-l/2 window through :meth:`add` (which is
        what the equivalence tests assert), at a fraction of the cost:
        the ring order *is* the offset order, so no binary searches run.
        """
        count = len(ids)
        owner = self.owner
        size = self.space.size
        reach = min(self.half, count - 1) if count > 0 else 0
        larger = [ids[(index + k) % count] for k in range(1, reach + 1)]
        smaller = [ids[(index - k) % count] for k in range(1, reach + 1)]
        self._larger = larger
        self._larger_offsets = [(n - owner) % size for n in larger]
        self._smaller = smaller
        self._smaller_offsets = [(owner - n) % size for n in smaller]
        self._invalidate()

    def remove(self, node_id: int) -> bool:
        """Drop a (failed) node from both sides; True if it was present."""
        present = False
        for side, offsets in (
            (self._larger, self._larger_offsets),
            (self._smaller, self._smaller_offsets),
        ):
            if node_id in side:
                index = side.index(node_id)
                side.pop(index)
                offsets.pop(index)
                present = True
        if present:
            self._invalidate()
        return present

    def members(self) -> Set[int]:
        """All distinct leaf set members (owner excluded)."""
        if self._members_cache is None:
            self._members_cache = frozenset(self._larger) | frozenset(self._smaller)
        return self._members_cache

    def _members_sorted(self) -> List[int]:
        """Distinct members in ascending id order (cached)."""
        if self._members_sorted_cache is None:
            self._members_sorted_cache = sorted(self.members())
        return self._members_sorted_cache

    def _ring(self) -> List[int]:
        """Distinct members plus the owner, ascending (cached).  This is
        the list the routing queries binary-search."""
        if self._ring_cache is None:
            ring = list(self._members_sorted())
            bisect.insort(ring, self.owner)
            self._ring_cache = ring
        return self._ring_cache

    def larger_side(self) -> List[int]:
        """Clockwise neighbours, nearest first (copy)."""
        return list(self._larger)

    def smaller_side(self) -> List[int]:
        """Counter-clockwise neighbours, nearest first (copy)."""
        return list(self._smaller)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._larger or node_id in self._smaller

    def __len__(self) -> int:
        return len(self.members())

    def is_side_full(self, larger: bool) -> bool:
        side = self._larger if larger else self._smaller
        return len(side) >= self.half

    # ------------------------------------------------------------------ #
    # routing queries
    # ------------------------------------------------------------------ #

    def covers(self, key: int) -> bool:
        """True iff *key* falls within the leaf set's id range.

        The range runs clockwise from the furthest smaller-side member to
        the furthest larger-side member.  A side that is not full implies
        the network holds fewer nodes than the side can, i.e. the leaf
        set sees the whole ring, so coverage is total.
        """
        if not self._larger or not self._smaller:
            return True
        if len(self._larger) < self.half or len(self._smaller) < self.half:
            return True
        if self._overlap_cache is None:
            # A node on both sides means the two arcs overlap: the leaf
            # set contains every other node in the network, so it covers
            # the whole ring (possible only when N - 1 < l).
            self._overlap_cache = not set(self._larger).isdisjoint(self._smaller)
        if self._overlap_cache:
            return True
        low = self._smaller[-1]
        high = self._larger[-1]
        return self.space.is_between_clockwise(low, key, high)

    def closest_to(self, key: int, include_owner: bool = True) -> int:
        """The member (optionally including the owner) numerically
        closest to *key*.

        Binary search over the cached sorted ring: the circularly
        closest id is always one of the two ring neighbours of *key*,
        with ties broken towards the larger id (as ``IdSpace.closest``).
        """
        ids = self._ring() if include_owner else self._members_sorted()
        count = len(ids)
        if count == 0:
            raise ValueError("closest() of empty candidate set")
        index = bisect.bisect_left(ids, key)
        after = ids[index % count]
        before = ids[(index - 1) % count]
        if after == before:
            return after
        distance = self.space.distance
        key_after = (distance(after, key), -after)
        key_before = (distance(before, key), -before)
        return after if key_after < key_before else before

    def replica_candidates(self, key: int, k: int) -> List[int]:
        """The k nodes numerically closest to *key* among owner + members.

        This is how a PAST root node selects the k storage nodes for a
        file: itself plus its leaf set neighbours, ranked by circular
        distance to the fileId.  Requires k <= l/2 + 1 for correctness
        in a large network (otherwise the leaf set may not see enough of
        the ring); we enforce the safe bound.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > self.half + 1:
            raise ValueError(
                f"replication factor {k} exceeds what a leaf set of "
                f"l={self.capacity} can place (max {self.half + 1})"
            )
        ids = self._ring()
        count = len(ids)
        if 2 * k + 1 >= count:
            pool: List[int] = ids
        else:
            # The k circularly closest ids all sit within k ring
            # positions of the key's insertion point.
            index = bisect.bisect_left(ids, key)
            pool = sorted(
                {ids[(index + offset) % count] for offset in range(-k, k + 1)}
            )
        distance = self.space.distance
        pool = sorted(pool, key=lambda n: (distance(n, key), -n))
        return pool[:k]

    def neighbours_adjacent_to_owner(self, count: int) -> List[int]:
        """The *count* members nearest the owner on each side, interleaved
        (used by keep-alive scheduling)."""
        out: List[int] = []
        for i in range(max(len(self._larger), len(self._smaller))):
            if i < len(self._larger):
                out.append(self._larger[i])
            if i < len(self._smaller):
                out.append(self._smaller[i])
            if len(out) >= count:
                break
        return out[:count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fmt = self.space.format_id
        return (
            f"LeafSet(owner={fmt(self.owner)}, "
            f"smaller={[fmt(n) for n in self._smaller]}, "
            f"larger={[fmt(n) for n in self._larger]})"
        )
