"""The simulated Pastry overlay network.

The network holds the node registry and the transport: it walks messages
from node to node by repeatedly asking the *current* node for its next
hop.  Nodes never consult global state when routing -- the network's
global view exists only for bookkeeping (statistics, ground-truth checks
in tests, and the optional "oracle" bootstrap that builds a large overlay
without running one join per node).

Two bootstrap methods:

* ``build(n, method="join")`` -- every node after the first joins through
  the real arrival protocol (claim C3 is measured on this path);
* ``build(n, method="oracle")`` -- node state is constructed directly
  from the global membership (perfect leaf sets, proximity-chosen routing
  tables).  Used by the large-N routing experiments where running
  thousands of joins would dominate runtime without changing the result.
"""

from __future__ import annotations

import bisect
import math
import random
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.netsim.topology import EuclideanPlaneTopology, Topology
from repro.obs.events import NodeFailed, NodeRecovered, OracleRebuilt, RouteCompleted
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.recorder import NULL_OBSERVER
from repro.obs.spans import Span
from repro.pastry.node import PastryNode
from repro.pastry.nodeid import IdSpace
from repro.pastry.routing import RULE_DELIVER_SELF, RULE_EN_ROUTE, DeterministicRouting
from repro.sim.rng import RngRegistry

DEFAULT_LEAF_CAPACITY = 32
DEFAULT_NEIGHBORHOOD_CAPACITY = 32

# Routing tables are proximity-filled from a bounded candidate sample in
# oracle mode; "perfect" scans every candidate, "random" models a network
# that ignores locality entirely (the E5 ablation).
TABLE_QUALITY_PERFECT = "perfect"
TABLE_QUALITY_GOOD = "good"
TABLE_QUALITY_RANDOM = "random"


def oracle_rows(space: IdSpace, count: int) -> int:
    """Rows the oracle populates for a *count*-node overlay.

    ceil(log_2^b N) rows hold nearly all entries; two extra rows catch
    the stragglers whose prefixes collide deeper than expected.  The
    incremental maintainer uses the same formula to detect when a
    membership change crosses a row-count threshold.
    """
    if count <= 0:
        return 0
    return min(
        space.digits,
        max(1, math.ceil(math.log(max(count, 2), space.base))) + 2,
    )


@dataclass
class RouteResult:
    """Outcome of routing one message."""

    key: int
    path: List[int]
    delivered: bool
    reason: str = "delivered"
    value: object = None
    span: Optional[Span] = None

    @property
    def hops(self) -> int:
        """Number of overlay hops taken (path length minus the origin)."""
        return max(len(self.path) - 1, 0)

    @property
    def destination(self) -> Optional[int]:
        return self.path[-1] if self.delivered and self.path else None


class PastryNetwork:
    """A collection of Pastry nodes plus the simulated transport."""

    def __init__(
        self,
        space: Optional[IdSpace] = None,
        topology: Optional[Topology] = None,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        neighborhood_capacity: int = DEFAULT_NEIGHBORHOOD_CAPACITY,
        rngs: Optional[RngRegistry] = None,
        table_quality: str = TABLE_QUALITY_GOOD,
        observer=None,
    ) -> None:
        self.space = space if space is not None else IdSpace()
        self.rngs = rngs if rngs is not None else RngRegistry(0)
        self.topology = (
            topology
            if topology is not None
            else EuclideanPlaneTopology(self.rngs.stream("topology"))
        )
        self.leaf_capacity = leaf_capacity
        self.neighborhood_capacity = neighborhood_capacity
        self.table_quality = table_quality
        # Observability: the null observer is falsy and every hot-path
        # site is guarded by ``if self.obs.enabled``, so an uninstrumented
        # network pays one attribute test per site.  With a real observer
        # installed, the message counters land in its registry so all
        # accounting shares one surface.
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.stats = observer.metrics if observer is not None else MetricsRegistry()
        self._message_counters: Dict[str, Counter] = {}
        # Cost accounting: a direct reference to the observer's ledger
        # (None with the null observer), so the per-message charge site
        # costs one ``is not None`` test when the ledger is off.
        self._ledger = getattr(self.obs, "ledger", None)
        self.nodes: Dict[int, PastryNode] = {}
        # Sorted live ids, for ground truth.  Ids narrow enough for a C
        # unsigned-64 array live unboxed (one machine word per node
        # instead of a pointer to a heap int); the default 128-bit space
        # falls back to a plain list.
        self._live_sorted = array("Q") if self.space.bits <= 64 else []
        # Spatial index over the *live* nodes, used to answer "who is the
        # proximally nearest live contact" in O(grid cell) instead of a
        # full scan (makes join-mode builds near-linear in N).
        self._live_index = self.topology.make_index()
        # Optional incremental oracle maintainer (attach_incremental_oracle);
        # when installed, membership changes update node state in place
        # instead of requiring a full rebuild_state_oracle pass.
        self._oracle = None

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def add_node(self, node_id: Optional[int] = None) -> PastryNode:
        """Create a node (state empty; see join.join_network / build)."""
        rng = self.rngs.stream("node-ids")
        if node_id is None:
            node_id = self.space.random_id(rng)
            while node_id in self.nodes:
                node_id = self.space.random_id(rng)
        elif node_id in self.nodes:
            raise ValueError(f"node id {node_id} already present")
        self.topology.add_endpoint(node_id)
        node = PastryNode(self, node_id, self.leaf_capacity, self.neighborhood_capacity)
        self.nodes[node_id] = node
        bisect.insort(self._live_sorted, node_id)
        self._live_index.add(node_id)
        if self._oracle is not None:
            self._oracle.on_join(node_id)
        return node

    def is_live(self, node_id: int) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.alive

    def live_ids(self) -> List[int]:
        """Sorted ids of all live nodes (copy)."""
        return list(self._live_sorted)

    def live_count(self) -> int:
        return len(self._live_sorted)

    def mark_failed(self, node_id: int) -> PastryNode:
        """Silently kill a node (it stops responding; nothing is sent).

        Other nodes discover the failure lazily (routing) or through the
        keep-alive protocol in :mod:`repro.pastry.failure`.
        """
        node = self.nodes[node_id]
        if node.alive:
            node.alive = False
            index = bisect.bisect_left(self._live_sorted, node_id)
            if index < len(self._live_sorted) and self._live_sorted[index] == node_id:
                self._live_sorted.pop(index)
            self._live_index.discard(node_id)
            if self._oracle is not None:
                self._oracle.on_leave(node_id)
            if self.obs.enabled:
                self.obs.metrics.counter("node.failures").increment()
                self.obs.emit(NodeFailed(node_id=node_id))
        return node

    def mark_recovered(self, node_id: int) -> PastryNode:
        """Bring a previously failed node back (state retained, possibly
        stale -- the recovery protocol refreshes it)."""
        node = self.nodes[node_id]
        if not node.alive:
            node.alive = True
            bisect.insort(self._live_sorted, node_id)
            self._live_index.add(node_id)
            if self._oracle is not None:
                self._oracle.on_revive(node_id)
            if self.obs.enabled:
                self.obs.metrics.counter("node.recoveries").increment()
                self.obs.emit(NodeRecovered(node_id=node_id))
        return node

    def global_root(self, key: int) -> int:
        """Ground truth: the live node numerically closest to *key*.

        Used only by tests/benchmarks to verify that the decentralised
        routing reached the correct node; never consulted while routing.
        """
        if not self._live_sorted:
            raise ValueError("network has no live nodes")
        ids = self._live_sorted
        index = bisect.bisect_left(ids, key)
        candidates = {ids[index % len(ids)], ids[(index - 1) % len(ids)]}
        return self.space.closest(key, iter(candidates))

    def replica_root_set(self, key: int, k: int) -> List[int]:
        """Ground truth: the k live nodes numerically closest to *key*."""
        if k > len(self._live_sorted):
            raise ValueError("k exceeds live node count")
        ids = self._live_sorted
        index = bisect.bisect_left(ids, key)
        window = [
            ids[(index + offset) % len(ids)]
            for offset in range(-k, k + 1)
        ]
        window = sorted(set(window), key=lambda n: (self.space.distance(n, key), -n))
        return window[:k]

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def count_message(
        self,
        category: str,
        amount: int = 1,
        kind: Optional[str] = None,
        node: Optional[int] = None,
    ) -> None:
        """Record protocol traffic (join, repair, keep-alive, routing).

        Runs once per hop, so the counter object is memoised per category
        -- instruments are create-on-first-use and never replaced, which
        makes caching them safe.

        *kind* names the concrete message for the cost ledger's wire-size
        model (defaults to *category* -- callers whose one counter bucket
        spans several message shapes pass the specific kind); *node* is
        the sending node, for per-node spend attribution.  Both are
        ignored unless an observer (and thus a ledger) is installed.
        """
        counter = self._message_counters.get(category)
        if counter is None:
            counter = self.stats.counter(f"messages.{category}")
            self._message_counters[category] = counter
        counter.increment(amount)
        ledger = self._ledger
        if ledger is not None:
            ledger.charge(kind if kind is not None else category, node=node, count=amount)

    def route(
        self,
        key: int,
        origin: int,
        policy=None,
        rng: Optional[random.Random] = None,
        message: object = None,
        category: str = "route",
        max_hops: Optional[int] = None,
        trace: bool = False,
    ) -> RouteResult:
        """Walk a message from *origin* towards the live node whose id is
        numerically closest to *key*, one local decision per hop.

        With ``trace=True`` (and an observer installed), the result
        carries a span tree: one ``hop`` child per path element, each
        annotated with the routing rule that fired at decision time.
        """
        if policy is None:
            policy = DeterministicRouting()
        if max_hops is None:
            max_hops = 4 * self.space.digits + self.leaf_capacity
        current = self.nodes[origin]
        if not current.alive:
            raise ValueError("route origin is not alive")
        span: Optional[Span] = None
        if trace and self.obs.enabled:
            span = self.obs.span(
                "route",
                key=key,
                origin=origin,
                category=category,
                policy=getattr(policy, "name", type(policy).__name__),
            )
        path = [origin]
        visited = {origin}
        while True:
            if current.malicious and current.node_id != origin:
                # The node accepts the message and silently drops it.
                self.count_message(category, node=current.node_id)
                if span is not None:
                    self._span_hop(span, current.node_id, key, "dropped (malicious)", None)
                return self._finish_route(
                    RouteResult(key=key, path=path, delivered=False, reason="dropped"),
                    category,
                    span,
                )
            # Application en-route check: a node holding the requested
            # file answers immediately (how lookups find a nearby replica
            # instead of always travelling to the root).
            value = current.forward(key, message)
            if value is not None:
                if span is not None:
                    self._span_hop(span, current.node_id, key, RULE_EN_ROUTE, None)
                return self._finish_route(
                    RouteResult(
                        key=key, path=path, delivered=True, reason="en-route", value=value
                    ),
                    category,
                    span,
                )
            if span is not None:
                hop, rule = current.next_hop_explained(key, policy, rng)
            else:
                hop = current.next_hop(key, policy, rng)
                rule = None
            if hop is None or hop in visited:
                # hop in visited: the prefix heuristic and the numeric
                # leaf fallback disagree (possible only after heavy
                # correlated failures); the paper's algorithm delivers at
                # the current node in this rare case rather than loop.
                value = current.deliver(key, message)
                if span is not None:
                    self._span_hop(span, current.node_id, key, RULE_DELIVER_SELF, None)
                return self._finish_route(
                    RouteResult(key=key, path=path, delivered=True, value=value),
                    category,
                    span,
                )
            self.count_message(category, node=current.node_id)
            if span is not None:
                self._span_hop(span, current.node_id, key, rule, hop)
            path.append(hop)
            visited.add(hop)
            if len(path) - 1 > max_hops:
                return self._finish_route(
                    RouteResult(key=key, path=path, delivered=False, reason="hop-limit"),
                    category,
                    span,
                )
            current = self.nodes[hop]

    def _span_hop(
        self, span: Span, node_id: int, key: int, rule: str, next_node: Optional[int]
    ) -> None:
        """Attach one per-hop child span (traced routes only)."""
        attributes = {
            "node_id": node_id,
            "shared_prefix": self.space.shared_prefix_length(node_id, key),
            "distance": self.space.distance(node_id, key),
            "rule": rule,
        }
        if next_node is not None:
            attributes["next_node"] = next_node
        span.child("hop", **attributes)

    def _finish_route(
        self, result: RouteResult, category: str, span: Optional[Span]
    ) -> RouteResult:
        """Record metrics/events for a finished route (observer installed
        only) and close out its span, if traced."""
        obs = self.obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("route.requests", category=category).increment()
            metrics.histogram("route.hops", category=category).add(result.hops)
            if result.delivered and len(result.path) > 1:
                # Relative delay penalty (claim C4): network distance
                # actually travelled over the direct origin-destination
                # distance.  Same-point endpoints are skipped -- stretch
                # is undefined when the direct distance is zero.
                topology = self.topology
                direct = topology.distance(result.path[0], result.destination)
                if direct > 0:
                    travelled = sum(
                        topology.distance(a, b)
                        for a, b in zip(result.path, result.path[1:])
                    )
                    metrics.histogram("route.stretch", category=category).add(
                        travelled / direct
                    )
            if not result.delivered:
                metrics.counter(
                    "route.failed", category=category, reason=result.reason
                ).increment()
            obs.emit(
                RouteCompleted(
                    key=result.key,
                    origin=result.path[0],
                    destination=result.destination,
                    hops=result.hops,
                    delivered=result.delivered,
                    reason=result.reason,
                    category=category,
                )
            )
        if span is not None:
            span.set(hops=result.hops, delivered=result.delivered, reason=result.reason)
            result.span = span
        return result

    # ------------------------------------------------------------------ #
    # bootstrap
    # ------------------------------------------------------------------ #

    def build(self, n: int, method: str = "join") -> List[PastryNode]:
        """Create an overlay of *n* nodes.

        ``join``: each node arrives through the real protocol, contacting
        the proximally nearest existing node -- exactly the deployment
        story in section 2.2.  ``oracle``: state is constructed directly;
        orders of magnitude faster and equivalent for routing experiments.
        """
        if n < 1:
            raise ValueError("need at least one node")
        if method == "join":
            return self._build_by_join(n)
        if method == "oracle":
            return self._build_by_oracle(n)
        raise ValueError(f"unknown build method: {method!r}")

    def _build_by_join(self, n: int) -> List[PastryNode]:
        from repro.pastry.join import join_network  # cycle guard

        created = [self.add_node()]
        for _ in range(n - 1):
            node = self.add_node()
            contact = self._nearest_live_contact(node)
            join_network(self, node, contact)
            created.append(node)
        return created

    def _nearest_live_contact(self, newcomer: PastryNode) -> int:
        """The proximally nearest existing live node (models the 'nearby
        node A' a joining node is assumed to know, e.g. from expanding-
        ring IP multicast).

        Answered by the live-node spatial index; ties break towards the
        smaller node id, matching the historical linear scan exactly.
        """
        best = self._live_index.nearest(
            newcomer.node_id, exclude=(newcomer.node_id,)
        )
        if best is None:
            raise ValueError("no live contact available")
        return best

    def _build_by_oracle(self, n: int) -> List[PastryNode]:
        created = [self.add_node() for _ in range(n)]
        self.rebuild_state_oracle()
        return created

    def rebuild_state_oracle(self) -> None:
        """(Re)construct every live node's state from global membership."""
        ids = self._live_sorted
        count = len(ids)
        if count == 0:
            return
        if self.obs.enabled:
            self.obs.metrics.counter("oracle.rebuilds").increment()
            self.obs.emit(OracleRebuilt(nodes=count))
        space = self.space
        rng = self.rngs.stream("oracle-build")

        # --- leaf sets: straight off the sorted ring ---
        for index, node_id in enumerate(ids):
            state = self.nodes[node_id].state
            state.leaf_set = type(state.leaf_set)(space, node_id, self.leaf_capacity)
            state.leaf_set.seed_from_ring(ids, index)

        # --- routing tables: group candidates by (row, prefix, digit) ---
        max_rows = oracle_rows(space, count)
        prefix_of = space.prefix
        digit_of = space.digit
        base = space.base
        groups: Dict[tuple, List[int]] = {}
        for node_id in ids:
            for row in range(max_rows):
                key = (row, prefix_of(node_id, row), digit_of(node_id, row))
                cell = groups.get(key)
                if cell is None:
                    groups[key] = [node_id]
                else:
                    cell.append(node_id)

        pick = self._pick_table_entry
        groups_get = groups.get
        for node_id in ids:
            node = self.nodes[node_id]
            state = node.state
            state.routing_table = type(state.routing_table)(space, node_id)
            install = state.routing_table.install
            distances = self.topology.batch_distance(node_id)
            for row in range(max_rows):
                prefix = prefix_of(node_id, row)
                own_digit = digit_of(node_id, row)
                for col in range(base):
                    if col == own_digit:
                        continue
                    candidates = groups_get((row, prefix, col))
                    if candidates:
                        install(row, col, pick(node, candidates, rng, distances))

        # --- neighborhood sets: reseed from leaf set + routing table ---
        batch_distance = self.topology.batch_distance
        for node_id in ids:
            self.nodes[node_id].state.reseed_neighborhood(batch_distance(node_id))

    def attach_incremental_oracle(self):
        """Switch membership changes to in-place oracle maintenance.

        Requires node state consistent with ``rebuild_state_oracle`` of
        the current membership (a fresh rebuild is run if the network is
        non-empty, making the cold-start explicit).  After attachment,
        ``add_node`` / ``mark_failed`` / ``mark_recovered`` update only
        the nodes whose leaf sets or routing-table cells actually change
        (one ring-window of leaf sets, one table cell per row), so a
        single churn event costs a scan over the changed node's
        prefix-sharers -- two orders of magnitude less than a full
        rebuild at large N.
        """
        from repro.pastry.oracle import IncrementalOracle  # cycle guard

        if self._oracle is None:
            if self._live_sorted:
                self.rebuild_state_oracle()
            self._oracle = IncrementalOracle(self)
        return self._oracle

    def detach_incremental_oracle(self) -> None:
        """Stop maintaining state incrementally on membership changes."""
        self._oracle = None

    def _pick_table_entry(
        self,
        node: PastryNode,
        candidates: List[int],
        rng: random.Random,
        distances=None,
    ) -> int:
        """Choose one routing-table entry from a candidate id group.

        *distances*, when given, is a batch proximity evaluator with the
        owner already bound (:meth:`Topology.batch_distance`); the rebuild
        loop hoists it per node instead of re-binding per cell.
        """
        count = len(candidates)
        if count == 1:
            return candidates[0]
        if self.table_quality == TABLE_QUALITY_RANDOM:
            return candidates[rng.randrange(count)]
        if self.table_quality == TABLE_QUALITY_PERFECT or count <= 16:
            pool = candidates
        else:
            # TABLE_QUALITY_GOOD: proximally best of a bounded sample.
            # One rng draw selects a contiguous 16-wide window of the
            # id-sorted group; ids are assigned independently of network
            # position, so any fixed-size window is an unbiased proximity
            # sample -- same distribution as rng.sample at a fraction of
            # the generator draws.
            start = rng.randrange(count - 15)
            pool = candidates[start : start + 16]
        if distances is None:
            distances = self.topology.batch_distance(node.node_id)
        ranked = distances(pool)
        best = pool[0]
        best_distance = ranked[0]
        for index in range(1, len(pool)):
            d = ranked[index]
            if d < best_distance or (d == best_distance and pool[index] < best):
                best = pool[index]
                best_distance = d
        return best

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def check_all_invariants(self) -> None:
        """Structural invariants on every live node (test support)."""
        live: Set[int] = set(self._live_sorted)
        for node_id in self._live_sorted:
            self.nodes[node_id].state.check_invariants(live_nodes=None)
            # Leaf sets must reference only live nodes after repair.
            for member in self.nodes[node_id].state.leaf_set.members():
                if member not in live:
                    raise AssertionError(
                        f"leaf set of {self.space.format_id(node_id)} references "
                        f"dead node {self.space.format_id(member)}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PastryNetwork(nodes={len(self.nodes)}, live={self.live_count()})"
