"""Incremental oracle maintenance: O(changed-state) membership updates.

``PastryNetwork.rebuild_state_oracle`` reconstructs *every* node's leaf
set, routing table and neighborhood set from the global membership --
perfect for cold-starting a large overlay, ruinous under churn, where a
single join or silent failure forces an O(N log N) pass to keep the
oracle-built state truthful.

:class:`IncrementalOracle` keeps oracle-built state truthful in place.
The key observation is that the rebuild's ``(row, prefix, digit)``
candidate groups are *contiguous ranges of the sorted live ring*: the
group is exactly the ids in ``[((prefix << b) | digit) << shift,
+2^shift)`` with ``shift = bits - (row+1)*b``.  The persistent candidate
index is therefore the ring itself (which the network already maintains
on every membership change) plus bisect arithmetic -- nothing extra to
update, nothing extra to store.

Per membership change the maintainer touches only:

* the l/2 ring neighbours on each side of the changed position (their
  leaf sets are rebuilt from the ring -- the same loop the full rebuild
  runs, on a 2*(l/2)-node window instead of N);
* owners of the routing-table cells the changed node occupies or ought
  to occupy -- one cell per populated row, found by slicing the ring;
* the neighborhood sets of exactly the nodes whose leaf set or table
  changed (reseeded from leaf + table, the oracle's M-invariant).

Equivalence contract (asserted by ``tests/test_oracle_incremental.py``):
with ``table_quality="perfect"`` -- whose per-cell choice is the
deterministic ``min`` over the whole group -- the incrementally
maintained state is **byte-identical** to a fresh
``rebuild_state_oracle`` after any interleaving of joins, failures and
revivals.  The sampled qualities ("good"/"random") draw from an RNG
stream the rebuild would consume differently, so for them the
maintainer guarantees *structural validity* instead: every entry live,
every entry in its correct slot, a cell vacant only when its candidate
group is empty, and leaf sets still byte-identical (leaf construction
never consults the RNG).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Set, Tuple

from repro.pastry.network import (
    TABLE_QUALITY_PERFECT,
    TABLE_QUALITY_RANDOM,
    PastryNetwork,
    oracle_rows,
)
from repro.pastry.node import PastryNode


class IncrementalOracle:
    """In-place oracle maintenance for one :class:`PastryNetwork`.

    Constructed via ``network.attach_incremental_oracle()``, which runs
    the cold-start rebuild first; after that the network's membership
    hooks call :meth:`on_join` / :meth:`on_leave` / :meth:`on_revive`.
    """

    __slots__ = ("network", "space", "_rng")

    def __init__(self, network: PastryNetwork) -> None:
        self.network = network
        self.space = network.space
        # Sampled-quality re-picks draw from their own stream so they
        # never perturb the rebuild's "oracle-build" sequence.
        self._rng = network.rngs.stream("oracle-incremental")

    # ------------------------------------------------------------------ #
    # membership events (ring already updated by the network)
    # ------------------------------------------------------------------ #

    def on_join(self, joiner: int) -> None:
        """A node was added to the live ring (state empty or stale)."""
        net = self.network
        ids = net._live_sorted
        count = len(ids)
        space = self.space
        half = net.leaf_capacity // 2
        changed: Set[int] = set()

        # Crossing a row-count threshold grows every pre-existing node's
        # table by the new rows (rare: happens when N passes a power of
        # the digit base; amortised O(1) rows per join).
        old_rows = oracle_rows(space, count - 1)
        max_rows = oracle_rows(space, count)
        if max_rows > old_rows:
            for node_id in ids:
                if node_id == joiner:
                    continue
                node = net.nodes[node_id]
                for row in range(old_rows, max_rows):
                    if self._fill_row(node, row):
                        changed.add(node_id)

        # The joiner's own state, built exactly as the rebuild would.
        j_index = bisect_left(ids, joiner)
        self._rebuild_own_state(net.nodes[joiner], j_index, max_rows)
        changed.add(joiner)

        # Ring neighbours within l/2 positions gain (or shift) a leaf.
        for node_id in self._window_ids(j_index, half, exclude=joiner):
            self._rebuild_leaf(node_id)
            changed.add(node_id)

        # Offer the joiner to the one table cell per row it can occupy:
        # owners share the row's prefix but differ in the joiner's digit.
        for row in range(max_rows):
            col = space.digit(joiner, row)
            prefix = space.prefix(joiner, row)
            for owner_id in self._owners(row, prefix, col):
                if self._offer(net.nodes[owner_id], row, col, joiner):
                    changed.add(owner_id)

        self._reseed(changed)

    def on_leave(self, departed: int) -> None:
        """A node left the live ring (silent failure or departure)."""
        net = self.network
        ids = net._live_sorted
        count = len(ids)
        if count == 0:
            return
        space = self.space
        half = net.leaf_capacity // 2
        changed: Set[int] = set()

        old_rows = oracle_rows(space, count + 1)
        max_rows = oracle_rows(space, count)
        if max_rows < old_rows:
            # Shrinking across a threshold vacates the now-unpopulated
            # deep rows everywhere, as a rebuild at the new size would.
            for node_id in ids:
                node = net.nodes[node_id]
                for row in range(max_rows, old_rows):
                    if node.state.routing_table.clear_row(row):
                        changed.add(node_id)

        # Leaf sets that referenced the departed node: every node within
        # l/2 ring positions of its former slot.
        d_index = bisect_left(ids, departed)
        for node_id in self._window_ids(d_index, half):
            self._rebuild_leaf(node_id)
            changed.add(node_id)

        # Table cells occupied by the departed node: one per row, owned
        # by the prefix-sharers; re-pick from the shrunken group (or
        # vacate the cell when the group emptied).
        for row in range(max_rows):
            col = space.digit(departed, row)
            prefix = space.prefix(departed, row)
            lo, hi = self._group_slice(row, prefix, col)
            for owner_id in self._owners(row, prefix, col):
                node = net.nodes[owner_id]
                table = node.state.routing_table
                if table.lookup(row, col) != departed:
                    continue
                if lo >= hi:
                    table.clear(row, col)
                else:
                    table.install(row, col, self._pick(node, lo, hi))
                changed.add(owner_id)

        self._reseed(changed)

    def on_revive(self, node_id: int) -> None:
        """A failed node came back: its retained state is stale, so it is
        rebuilt from scratch and announced exactly like a join."""
        self.on_join(node_id)

    # ------------------------------------------------------------------ #
    # ring slicing: the persistent (row, prefix, digit) candidate index
    # ------------------------------------------------------------------ #

    def _group_slice(self, row: int, prefix: int, digit: int) -> Tuple[int, int]:
        """Ring index range holding group (row, prefix, digit)."""
        space = self.space
        shift = space.bits - (row + 1) * space.b
        low_id = ((prefix << space.b) | digit) << shift
        ids = self.network._live_sorted
        return (
            bisect_left(ids, low_id),
            bisect_left(ids, low_id + (1 << shift)),
        )

    def _owners(self, row: int, prefix: int, digit: int) -> Iterator[int]:
        """Live ids sharing the row's prefix whose digit differs from
        *digit* -- the owners of cell (row, *digit*).  Two chained ring
        ranges: the prefix range minus the digit group's subrange."""
        ids = self.network._live_sorted
        space = self.space
        if row == 0:
            range_lo, range_hi = 0, len(ids)
        else:
            shift = space.bits - row * space.b
            low_id = prefix << shift
            range_lo = bisect_left(ids, low_id)
            range_hi = bisect_left(ids, low_id + (1 << shift))
        group_lo, group_hi = self._group_slice(row, prefix, digit)
        for index in range(range_lo, group_lo):
            yield ids[index]
        for index in range(group_hi, range_hi):
            yield ids[index]

    def _window_ids(
        self, center_index: int, half: int, exclude: Optional[int] = None
    ) -> List[int]:
        """Ids within *half* ring positions of *center_index* (both
        directions, wrapping), sorted; *exclude* is dropped if present."""
        ids = self.network._live_sorted
        count = len(ids)
        reach = min(half, count - 1) if count > 1 else 0
        window: Set[int] = set()
        for offset in range(-reach, reach + 1):
            window.add(ids[(center_index + offset) % count])
        if exclude is not None:
            window.discard(exclude)
        return sorted(window)

    # ------------------------------------------------------------------ #
    # per-node reconstruction (identical to the rebuild's loops)
    # ------------------------------------------------------------------ #

    def _rebuild_leaf(self, node_id: int) -> None:
        """Fresh leaf set off the current ring -- the rebuild's loop run
        for one node."""
        net = self.network
        ids = net._live_sorted
        count = len(ids)
        node = net.nodes[node_id]
        leaf = type(node.state.leaf_set)(self.space, node_id, net.leaf_capacity)
        node.state.leaf_set = leaf
        if count:
            leaf.seed_from_ring(ids, bisect_left(ids, node_id))

    def _rebuild_own_state(self, node: PastryNode, index: int, max_rows: int) -> None:
        """Fresh leaf set and routing table for a joining/revived node
        (any retained state is stale by definition)."""
        self._rebuild_leaf(node.node_id)
        node.state.routing_table = type(node.state.routing_table)(
            self.space, node.node_id
        )
        for row in range(max_rows):
            self._fill_row(node, row)

    def _fill_row(self, node: PastryNode, row: int) -> bool:
        """Populate every cell of *row* from the ring groups; True if any
        cell was filled."""
        space = self.space
        node_id = node.node_id
        prefix = space.prefix(node_id, row)
        own_digit = space.digit(node_id, row)
        table = node.state.routing_table
        filled = False
        for col in range(space.base):
            if col == own_digit:
                continue
            lo, hi = self._group_slice(row, prefix, col)
            if lo >= hi:
                continue
            table.install(row, col, self._pick(node, lo, hi))
            filled = True
        return filled

    # ------------------------------------------------------------------ #
    # cell decisions
    # ------------------------------------------------------------------ #

    def _pick(self, node: PastryNode, lo: int, hi: int) -> int:
        """Choose the cell entry from the ring slice [lo, hi).

        Perfect quality replicates the rebuild's deterministic pick (min
        by proximity, ties to the smaller id) without materialising the
        slice; sampled qualities delegate to the network's picker with
        the maintainer's own RNG stream.
        """
        net = self.network
        ids = net._live_sorted
        if net.table_quality == TABLE_QUALITY_PERFECT:
            distance = node._proximity
            best = ids[lo]
            best_distance = distance(best)
            for index in range(lo + 1, hi):
                candidate = ids[index]
                d = distance(candidate)
                if d < best_distance:
                    best_distance = d
                    best = candidate
            return best
        return net._pick_table_entry(node, list(ids[lo:hi]), self._rng)

    def _offer(self, node: PastryNode, row: int, col: int, candidate: int) -> bool:
        """Offer *candidate* for cell (row, col); True if installed.

        An empty cell always takes the candidate (its group was empty
        before, so the rebuild would now pick the sole member).  Perfect
        quality replaces the incumbent iff the candidate wins the
        deterministic pick -- min over (old group + candidate) is then
        min over the new group.  Good quality applies the same
        improvement rule (strictly proximally closer wins); random
        quality keeps the incumbent, any group member being valid.
        """
        table = node.state.routing_table
        incumbent = table.lookup(row, col)
        if incumbent == candidate:
            return False
        if incumbent is None:
            table.install(row, col, candidate)
            return True
        net = self.network
        if net.table_quality == TABLE_QUALITY_RANDOM:
            return False
        distance = node._proximity
        if (distance(candidate), candidate) < (distance(incumbent), incumbent):
            table.install(row, col, candidate)
            return True
        return False

    # ------------------------------------------------------------------ #
    # neighborhood invariant
    # ------------------------------------------------------------------ #

    def _reseed(self, changed: Set[int]) -> None:
        """Re-derive the neighborhood set of every node whose leaf set or
        routing table changed (M is a pure function of those two)."""
        nodes = self.network.nodes
        batch_distance = self.network.topology.batch_distance
        for node_id in sorted(changed):
            nodes[node_id].state.reseed_neighborhood(batch_distance(node_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IncrementalOracle(nodes={self.network.live_count()})"
