"""The Pastry routing table.

Row n of the table holds up to 2^b - 1 entries, each referring to a node
whose nodeId shares the first n digits with the owner's but differs in
digit n (one entry per possible value of that digit; the owner's own
digit value is never used).  Only about ceil(log_2^b N) rows are populated
in a network of N nodes, giving the per-node state bound of claim C2:
(2^b - 1) * ceil(log_2^b N) + 2l entries.

Among the potentially many nodes eligible for an entry, Pastry keeps one
that is *proximally close* to the owner (the locality heuristic behind
claims C4/C5).  The table therefore takes an optional proximity function;
without one, the first eligible node seen is kept (the "random table"
ablation in benchmark E5).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.pastry.nodeid import IdSpace
from repro.pastry.versioning import next_version

ProximityFn = Optional[Callable[[int], float]]


class RoutingTable:
    """Routing table of one node (the *owner*).

    Rows are allocated lazily: only about ceil(log_2^b N) of the
    ``space.digits`` possible rows ever hold an entry, so the table
    stores ``None`` per untouched row instead of a 2^b-slot list.  At
    128-bit/b=4 parameters this is the difference between 32 eager
    16-slot lists per node and the ~3-8 a node actually uses -- the
    dominant term in per-node memory at 100k nodes.
    """

    __slots__ = ("space", "owner", "_rows", "_index", "_owner_digits", "version")

    def __init__(self, space: IdSpace, owner: int) -> None:
        self.space = space
        self.owner = space.validate(owner)
        self._rows: List[Optional[List[Optional[int]]]] = [None] * space.digits
        self._index: Dict[int, Tuple[int, int]] = {}
        self._owner_digits = space.digits_of(owner)
        # Bumped on every entry change; lets NodeState.known_nodes()
        # cache its union until the table actually mutates.
        self.version = next_version()

    def slot_for(self, node_id: int) -> Optional[Tuple[int, int]]:
        """The (row, column) a node belongs in, or None for the owner
        itself (which has no slot)."""
        if node_id == self.owner:
            return None
        space = self.space
        row = space.shared_prefix_length(self.owner, node_id)
        # digit(node_id, row) with the bounds check elided: row < digits
        # is guaranteed because node_id differs from the owner.
        col = (node_id >> (space.bits - (row + 1) * space.b)) & (space.base - 1)
        return row, col

    def add(self, node_id: int, proximity: ProximityFn = None) -> bool:
        """Offer *node_id* for its slot.

        Returns True if the table now references the node.  If the slot is
        occupied, the incumbent is replaced only when a proximity function
        says the newcomer is strictly closer -- replacing entries with
        proximally closer ones is how table quality improves over time.
        """
        self.space.validate(node_id)
        slot = self.slot_for(node_id)
        if slot is None:
            return False
        row, col = slot
        cells = self._rows[row]
        incumbent = cells[col] if cells is not None else None
        if incumbent == node_id:
            return True
        if incumbent is None:
            self._set(row, col, node_id)
            return True
        if proximity is not None and proximity(node_id) < proximity(incumbent):
            self._drop_index(incumbent)
            self._set(row, col, node_id)
            return True
        return False

    def _set(self, row: int, col: int, node_id: int) -> None:
        cells = self._rows[row]
        if cells is None:
            cells = [None] * self.space.base
            self._rows[row] = cells
        cells[col] = node_id
        self._index[node_id] = (row, col)
        self.version = next_version()

    def _drop_index(self, node_id: int) -> None:
        self._index.pop(node_id, None)

    def install(self, row: int, col: int, node_id: int) -> None:
        """Force-set the entry at (row, col), replacing any incumbent.

        The incremental oracle maintainer uses this when it has already
        decided the winning candidate for a cell; ``add`` would re-run
        the proximity comparison and could keep a stale incumbent."""
        cells = self._rows[row]
        incumbent = cells[col] if cells is not None else None
        if incumbent == node_id:
            return
        if incumbent is not None:
            self._drop_index(incumbent)
        self._set(row, col, node_id)

    def clear(self, row: int, col: int) -> bool:
        """Vacate the entry at (row, col); True if one was present."""
        cells = self._rows[row]
        if cells is None or cells[col] is None:
            return False
        self._drop_index(cells[col])
        cells[col] = None
        self.version = next_version()
        return True

    def clear_row(self, row: int) -> bool:
        """Vacate every entry of *row*; True if any was present."""
        cells = self._rows[row]
        if cells is None:
            return False
        cleared = False
        for entry in cells:
            if entry is not None:
                self._drop_index(entry)
                cleared = True
        self._rows[row] = None
        if cleared:
            self.version = next_version()
        return cleared

    def remove(self, node_id: int) -> bool:
        """Drop a (failed) node; True if it was referenced."""
        slot = self._index.pop(node_id, None)
        if slot is None:
            return False
        row, col = slot
        cells = self._rows[row]
        if cells is not None and cells[col] == node_id:
            cells[col] = None
        self.version = next_version()
        return True

    def lookup(self, row: int, col: int) -> Optional[int]:
        """The entry at (row, col), or None if vacant."""
        cells = self._rows[row]
        return cells[col] if cells is not None else None

    def next_hop_for(self, key: int) -> Optional[int]:
        """The standard prefix-routing entry for *key*: row = length of
        the prefix the key shares with the owner, column = the key's next
        digit.  None when the slot is vacant (the rare case)."""
        space = self.space
        row = space.shared_prefix_length(self.owner, key)
        if row >= space.digits:
            return None  # key == owner
        cells = self._rows[row]
        if cells is None:
            return None
        col = (key >> (space.bits - (row + 1) * space.b)) & (space.base - 1)
        return cells[col]

    def row(self, index: int) -> List[Optional[int]]:
        """A copy of row *index* (used by the join protocol, where the
        i-th node along the route contributes its row i)."""
        cells = self._rows[index]
        if cells is None:
            return [None] * self.space.base
        return list(cells)

    def install_row(
        self, index: int, entries: List[Optional[int]], proximity: ProximityFn = None
    ) -> int:
        """Bulk-offer a row received during join; returns how many entries
        were taken.  Entries that would not belong in that row of *this*
        table (different shared-prefix relationship) are re-slotted
        correctly rather than installed blindly."""
        taken = 0
        for entry in entries:
            if entry is not None and entry != self.owner:
                if self.add(entry, proximity):
                    taken += 1
        return taken

    def entries(self) -> Iterator[int]:
        """All node ids currently referenced."""
        return iter(list(self._index))

    def row_entries(self, index: int) -> List[int]:
        """Non-empty entries of row *index*."""
        cells = self._rows[index]
        if cells is None:
            return []
        return [n for n in cells if n is not None]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def populated_rows(self) -> int:
        """Number of rows with at least one entry (should be about
        ceil(log_2^b N) -- measured by benchmark E3)."""
        return sum(
            1
            for row in self._rows
            if row is not None and any(e is not None for e in row)
        )

    def occupancy(self) -> List[int]:
        """Entries per row, for table-quality diagnostics."""
        return [
            0 if row is None else sum(1 for e in row if e is not None)
            for row in self._rows
        ]

    def check_invariants(self) -> None:
        """Verify every entry sits in its correct slot (test support)."""
        for row_index, row in enumerate(self._rows):
            if row is None:
                continue
            for col, entry in enumerate(row):
                if entry is None:
                    continue
                prefix = self.space.shared_prefix_length(self.owner, entry)
                if prefix != row_index:
                    raise AssertionError(
                        f"entry {self.space.format_id(entry)} in row {row_index} "
                        f"shares a {prefix}-digit prefix with the owner"
                    )
                if self.space.digit(entry, row_index) != col:
                    raise AssertionError(
                        f"entry {self.space.format_id(entry)} in wrong column"
                    )
                if col == self._owner_digits[row_index]:
                    raise AssertionError(
                        "entry occupies the owner's own digit column"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingTable(owner={self.space.format_id(self.owner)}, "
            f"entries={len(self._index)}, rows={self.populated_rows()})"
        )
