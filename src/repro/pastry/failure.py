"""Failure detection and state repair.

Three mechanisms from section 2.2:

* **Leaf set repair.**  Nodes with adjacent nodeIds learn of a neighbour's
  failure (via keep-alives or a failed send) and repair by asking the
  live node with the largest index on the failed node's side for *its*
  leaf set; because adjacent leaf sets overlap, the merge restores the
  invariant with a couple of messages.
* **Lazy routing-table repair.**  A dead table entry is only repaired
  when routing trips over it: the node asks the other entries of the same
  row for their entry at the dead slot, then (if that fails) entries of
  later rows, which by construction also know candidate nodes with the
  required prefix.
* **Keep-alive failure detection.**  Leaf set neighbours exchange
  periodic keep-alives on the discrete-event engine; a node unresponsive
  for period T is presumed failed and its leaf-set members repair.

A recovering node contacts its last known leaf set, refreshes from their
current leaf sets, and announces its presence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.pastry.node import PastryNode
from repro.sim.engine import SimulationEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pastry.network import PastryNetwork


def repair_leaf_set(network: "PastryNetwork", node: PastryNode, dead_id: int) -> int:
    """Repair *node*'s leaf set after *dead_id* failed.

    Returns the number of messages used.  The dead node must already have
    been removed from the leaf set (``on_dead_entry`` does this).
    """
    before = network.stats.counter("messages.repair").value
    space = network.space
    on_larger_side = (
        space.clockwise_offset(node.node_id, dead_id)
        <= space.counter_clockwise_offset(node.node_id, dead_id)
    )
    side = (
        node.state.leaf_set.larger_side()
        if on_larger_side
        else node.state.leaf_set.smaller_side()
    )
    donor_id = _first_live_from_end(network, node, side)
    if donor_id is None:
        # That whole side is gone; fall back to the other side, then to
        # anything the node still knows.
        other = (
            node.state.leaf_set.smaller_side()
            if on_larger_side
            else node.state.leaf_set.larger_side()
        )
        donor_id = _first_live_from_end(network, node, other)
    if donor_id is None:
        donor_id = next(
            (n for n in sorted(node.state.known_nodes()) if network.is_live(n)), None
        )
    if donor_id is None:
        return 0  # totally isolated; nothing to repair from
    # Request + reply.
    network.count_message("repair", 2, node=node.node_id)
    donor = network.nodes[donor_id]
    for member in donor.state.leaf_set.members() | {donor_id}:
        if member != node.node_id and network.is_live(member):
            node.state.learn(member)
    # Announce back: members merged in above must learn the repairing
    # node too, or the symmetry invariant decays -- A would hold B
    # without B holding A, and B's keep-alives would never reach A.
    for member in sorted(node.state.leaf_set.members()):
        if not network.is_live(member):
            continue
        peer = network.nodes[member]
        if node.node_id not in peer.state.leaf_set:
            network.count_message("repair", kind="repair-probe", node=node.node_id)
            peer.learn(node.node_id)
    return network.stats.counter("messages.repair").value - before


def _first_live_from_end(
    network: "PastryNetwork", node: PastryNode, side: List[int]
) -> Optional[int]:
    """The live member with the largest index on *side* (furthest from the
    owner), silently dropping dead members encountered on the way."""
    for candidate in reversed(side):
        if network.is_live(candidate):
            return candidate
        node.state.forget(candidate)  # direct forget: no recursive repair
    return None


def repair_routing_entry(
    network: "PastryNetwork", node: PastryNode, row: int, col: int
) -> int:
    """Lazily repair the vacant routing-table slot (row, col).

    Returns messages used.  Queries row-mates first, then later rows, as
    in the Pastry paper; installs the first suitable live entry found.
    """
    before = network.stats.counter("messages.repair").value
    table = node.state.routing_table
    space = network.space
    for query_row in range(row, space.digits):
        for mate_id in table.row_entries(query_row):
            if not network.is_live(mate_id):
                node.state.forget(mate_id)
                continue
            network.count_message("repair", 2, node=node.node_id)  # request + reply
            mate = network.nodes[mate_id]
            candidate = mate.state.routing_table.lookup(row, col)
            if candidate is None:
                # A row-mate's leaf set may also know a suitable node.
                candidate = _candidate_from_state(network, mate, node, row, col)
            if (
                candidate is not None
                and candidate != node.node_id
                and network.is_live(candidate)
            ):
                node.state.learn(candidate)
                # The liveness probe on the new entry doubles as mutual
                # discovery: the candidate learns the prober, so a repair
                # never creates a one-directional leaf-set reference.
                network.count_message("repair", kind="repair-probe", node=node.node_id)
                network.nodes[candidate].learn(node.node_id)
                if table.lookup(row, col) is not None:
                    return network.stats.counter("messages.repair").value - before
        if query_row > row + 2:
            break  # bounded effort, as in practice
    return network.stats.counter("messages.repair").value - before


def _candidate_from_state(
    network: "PastryNetwork", donor: PastryNode, node: PastryNode, row: int, col: int
) -> Optional[int]:
    """Scan a donor's known nodes for one that fits (row, col) of *node*."""
    for known in donor.state.known_nodes():
        if known == node.node_id or not network.is_live(known):
            continue
        slot = node.state.routing_table.slot_for(known)
        if slot == (row, col):
            return known
    return None


def notify_leafset_of_failure(network: "PastryNetwork", failed_id: int) -> int:
    """Synchronous stand-in for keep-alive detection: every live node that
    holds *failed_id* in its leaf set detects the failure and repairs.

    Returns total repair messages.  (The event-driven path below produces
    the same repairs, spread over detection timeouts.)
    """
    before = network.stats.counter("messages.repair").value
    for node_id in network.live_ids():
        node = network.nodes[node_id]
        if failed_id in node.state.leaf_set:
            node.on_dead_entry(failed_id)
    return network.stats.counter("messages.repair").value - before


def purge_failed(network: "PastryNetwork", failed_id: int) -> int:
    """Full detection sweep for one confirmed failure: every live node
    that references *failed_id* anywhere (leaf set, routing table, or
    neighborhood set) reacts as if its keep-alive / lazy-discovery
    machinery had just fired, forgetting the corpse and repairing.

    This is the synchronous stand-in the fault-injection driver runs
    after each injected crash so the invariant checker's liveness
    invariants (no *confirmed* corpse referenced anywhere) are meaningful.
    Returns total repair messages.

    Runs in two phases -- every affected node forgets the corpse first,
    repairs second.  Interleaving them (plain ``on_dead_entry`` per node)
    lets an early repairer's announce bounce off a later node whose leaf
    side is still clogged by the corpse, leaving a one-directional
    reference once that node finally evicts it.
    """
    before = network.stats.counter("messages.repair").value
    affected = []
    for node_id in network.live_ids():
        node = network.nodes[node_id]
        state = node.state
        in_leaf = failed_id in state.leaf_set
        in_table = failed_id in state.routing_table
        in_hood = failed_id in state.neighborhood.members()
        if in_leaf or in_table or in_hood:
            slot = state.routing_table.slot_for(failed_id)
            state.forget(failed_id)
            affected.append((node, in_leaf, in_table, slot))
    for node, in_leaf, in_table, slot in affected:
        if in_leaf:
            repair_leaf_set(network, node, failed_id)
        if in_table and slot is not None:
            repair_routing_entry(network, node, *slot)
    return network.stats.counter("messages.repair").value - before


def stabilize_leaf_sets(network: "PastryNetwork") -> int:
    """One round of the periodic leaf-set maintenance every Pastry node
    runs: each live node exchanges leaf sets with its current members
    (request + reply each) and both sides merge what they hear.

    Needed after *coordinated* failures: per-victim repair ordering can
    leave one-directional references -- A re-admits B while B's side is
    still clogged with corpses A has already purged, so A's announce
    bounces; the next maintenance round (this) restores symmetry.
    Returns total messages used.
    """
    before = network.stats.counter("messages.repair").value
    for node_id in network.live_ids():
        node = network.nodes[node_id]
        for member in sorted(node.state.leaf_set.members()):
            if not network.is_live(member):
                node.on_dead_entry(member)
                continue
            # Ledger: the periodic exchange is leaf-set *stabilization*
            # traffic, not failure repair, even though it lands in the
            # same repair counter the callers diff.
            network.count_message("repair", 2, kind="leafset-exchange", node=node_id)
            peer = network.nodes[member]
            for known in peer.state.leaf_set.members() | {member}:
                if known != node_id and network.is_live(known):
                    node.state.learn(known)
        # Announce back AFTER all merges: every node now in the leaf set
        # (whether held before the round or acquired during it) must
        # learn the owner too, or the round itself would mint the very
        # one-directional references it exists to remove.
        for member in sorted(node.state.leaf_set.members()):
            if not network.is_live(member):
                continue
            peer = network.nodes[member]
            if node_id not in peer.state.leaf_set:
                network.count_message("repair", kind="leafset-announce", node=node_id)
                peer.learn(node_id)
    return network.stats.counter("messages.repair").value - before


def recover_node(network: "PastryNetwork", node_id: int) -> int:
    """Bring a failed node back per the paper: contact the last known leaf
    set, refresh from their current leaf sets, announce presence."""
    before = network.stats.counter("messages.repair").value
    node = network.mark_recovered(node_id)
    # The node's whole state is stale: anything that died while it was
    # down must be scrubbed now (one unanswered probe each), or its
    # routing table would carry confirmed corpses until lazy repair
    # happened to trip over them.
    for known in sorted(node.state.known_nodes()):
        if not network.is_live(known):
            network.count_message("repair", kind="repair-probe", node=node_id)
            node.state.forget(known)
    last_known = sorted(node.state.leaf_set.members())
    # Drop stale members; refresh from the live ones.
    for member in last_known:
        if not network.is_live(member):
            node.state.forget(member)
            continue
        network.count_message("repair", 2, node=node_id)  # request + reply
        donor = network.nodes[member]
        for known in donor.state.leaf_set.members() | {member}:
            if known != node.node_id and network.is_live(known):
                node.state.learn(known)
    # Announce presence so neighbours re-admit the node.
    for member in sorted(node.state.leaf_set.members()):
        if network.is_live(member):
            network.count_message("repair", kind="repair-probe", node=node_id)
            network.nodes[member].learn(node.node_id)
    return network.stats.counter("messages.repair").value - before


class KeepAliveProtocol:
    """Event-driven failure detection over leaf sets.

    Every node pings its leaf-set neighbours every *interval*; a
    neighbour that has not answered for *timeout* is presumed failed and
    the leaf-set repair runs.  Built on the discrete-event engine so the
    detection latency distribution can be studied (benchmark E7 uses the
    synchronous path; the integration tests exercise this one).
    """

    def __init__(
        self,
        network: "PastryNetwork",
        engine: SimulationEngine,
        interval: float = 10.0,
        timeout: float = 30.0,
    ) -> None:
        if timeout < interval:
            raise ValueError("timeout shorter than the probe interval cannot work")
        self.network = network
        self.engine = engine
        self.interval = interval
        self.timeout = timeout
        self._last_heard: dict = {}
        self._handles = []

    def start(self) -> None:
        """Arm periodic probing for every currently live node."""
        for node_id in self.network.live_ids():
            handle = self.engine.schedule_periodic(
                self.interval,
                lambda nid=node_id: self._probe_round(nid),
                label=f"keepalive-{node_id}",
            )
            self._handles.append(handle)

    def stop(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    def _probe_round(self, node_id: int) -> None:
        if not self.network.is_live(node_id):
            return
        node = self.network.nodes[node_id]
        now = self.engine.now
        for neighbour_id in node.state.leaf_set.members():
            self.network.count_message("keepalive", node=node_id)
            key = (node_id, neighbour_id)
            if self.network.is_live(neighbour_id):
                self._last_heard[key] = now  # probe answered immediately
                continue
            last = self._last_heard.get(key, now - self.interval)
            if now - last >= self.timeout:
                node.on_dead_entry(neighbour_id)
                self._last_heard.pop(key, None)
