"""Pastry: the location-and-routing substrate PAST is built on.

Implements the scheme sketched in section 2.2 of the PAST paper and
detailed in Rowstron & Druschel, Middleware 2001:

* a circular 128-bit nodeId space, ids treated as digit strings base 2^b
  (:mod:`repro.pastry.nodeid`);
* per-node state: a routing table with ceil(log_2^b N) populated rows of
  2^b - 1 entries, a leaf set of the l nodes numerically closest to the
  node, and a neighborhood set of proximally near nodes
  (:mod:`repro.pastry.routing_table`, :mod:`repro.pastry.leaf_set`,
  :mod:`repro.pastry.neighborhood`);
* prefix routing with the leaf-set short-circuit and the rare-case
  numeric fallback, plus the randomized variant used to route around
  malicious nodes (:mod:`repro.pastry.node`, :mod:`repro.pastry.routing`);
* the node arrival protocol that initialises a new node's state from the
  nodes along the route A -> Z and notifies affected nodes
  (:mod:`repro.pastry.join`);
* keep-alive based failure detection, leaf-set repair and lazy routing
  table repair (:mod:`repro.pastry.failure`).
"""

from repro.pastry.leaf_set import LeafSet
from repro.pastry.neighborhood import NeighborhoodSet
from repro.pastry.network import PastryNetwork, RouteResult
from repro.pastry.node import PastryNode
from repro.pastry.nodeid import IdSpace
from repro.pastry.routing import DeterministicRouting, RandomizedRouting
from repro.pastry.routing_table import RoutingTable

__all__ = [
    "IdSpace",
    "LeafSet",
    "NeighborhoodSet",
    "RoutingTable",
    "PastryNode",
    "PastryNetwork",
    "RouteResult",
    "DeterministicRouting",
    "RandomizedRouting",
]
