"""Monotonic version stamps for cache invalidation.

The per-node structures (routing table, leaf set, neighborhood set) each
carry a ``version`` stamp that changes on every mutation; derived caches
(:meth:`repro.pastry.state.NodeState.known_nodes`, the leaf set's sorted
ring) record the stamps they were built against and rebuild lazily when
they no longer match.

Stamps are drawn from one process-wide counter rather than per-structure
counters so that *replacing* a structure wholesale (as the oracle
bootstrap does) can never reproduce a previously observed stamp: a fresh
structure's stamp differs from every stamp any earlier instance ever had.
"""

from __future__ import annotations

import itertools

_counter = itertools.count()

# A process-wide unique, monotonically increasing stamp.  Bound directly
# to the counter's __next__ slot: this is called on every structure
# mutation, so the indirection of a wrapper function is measurable.
next_version = _counter.__next__
