"""Node arrival: initialising a new node's state.

The protocol of section 2.2: an arriving node X contacts a nearby node A
(by the proximity metric) and asks A to route a special join message to
the existing node Z whose id is numerically closest to X's.  X then takes

* the *neighborhood set* from A -- A is proximally near X, so A's
  proximal neighbours are good candidates for X's;
* the *leaf set* from Z -- Z is numerically closest to X, so Z's leaf set
  members are exactly the candidates for X's;
* *row i of the routing table* from the i-th node along the route from A
  to Z -- that node shares the first i digits with X (the route's shared
  prefix grows by at least one digit per hop), so its row i entries are
  valid for X, and they are proximally reasonable because the route's
  early hops stay near A (and hence near X).

Finally X notifies every node that appears in its new state, and each of
those nodes folds X into its own state, restoring all invariants.  The
message cost, measured under the ``messages.join`` counter, is
O(log_2^b N) -- claim C3, benchmark E4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import NodeJoined
from repro.pastry.node import PastryNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pastry.network import PastryNetwork


def join_network(
    network: "PastryNetwork",
    new_node: PastryNode,
    contact_id: int,
    trace: bool = False,
) -> int:
    """Run the arrival protocol for *new_node* via *contact_id*.

    Returns the number of messages the join generated.  The new node must
    already be registered with the network (``add_node``) but have empty
    state; the contact must be a live node.  With ``trace=True`` (and an
    observer installed) a ``join`` span -- with the join route's span tree
    under it -- is recorded on the observer.
    """
    if not network.is_live(contact_id):
        raise ValueError("join contact is not alive")
    if contact_id == new_node.node_id:
        raise ValueError("a node cannot use itself as a join contact")
    obs = network.obs
    span = None
    if trace and obs.enabled:
        span = obs.span("join", node_id=new_node.node_id, contact_id=contact_id)
    before = network.stats.counter("messages.join").value

    # X -> A: the initial contact message.
    network.count_message("join", kind="join-contact", node=new_node.node_id)

    # A routes the join message towards X's id; the nodes encountered are
    # exactly the ones whose state X copies from.  The arriving node is
    # not live for routing purposes yet (its id is excluded as a hop
    # because it holds no state), so we route with A's view.
    result = network.route(
        new_node.node_id, origin=contact_id, category="join", trace=span is not None
    )
    if not result.delivered:
        raise RuntimeError(f"join route failed: {result.reason}")
    path = result.path
    node_a = network.nodes[path[0]]
    node_z = network.nodes[path[-1]]

    # Neighborhood set from A (one state-transfer message).
    network.count_message("join", kind="join-neighborhood", node=node_a.node_id)
    new_node.learn(node_a.node_id)
    for member in node_a.state.neighborhood.ordered_members():
        new_node.learn(member)

    # Leaf set from Z (one state-transfer message).
    network.count_message("join", kind="join-leafset", node=node_z.node_id)
    new_node.learn(node_z.node_id)
    for member in node_z.state.leaf_set.members():
        new_node.learn(member)

    # Row i of the routing table from the i-th route node (one message
    # per node on the path).
    for row_index, hop_id in enumerate(path):
        if row_index >= network.space.digits:
            break
        network.count_message("join", kind="join-row", node=hop_id)
        hop = network.nodes[hop_id]
        new_node.learn(hop_id)
        new_node.state.routing_table.install_row(
            row_index, hop.state.routing_table.row(row_index), new_node.proximity
        )

    # Announce X to every node in its resulting state; each one absorbs X.
    for known_id in sorted(new_node.state.known_nodes()):
        if not network.is_live(known_id):
            continue
        network.count_message("join", kind="join-announce", node=new_node.node_id)
        network.nodes[known_id].learn(new_node.node_id)

    messages = network.stats.counter("messages.join").value - before
    if obs.enabled:
        obs.metrics.histogram("join.messages").add(messages)
        obs.emit(
            NodeJoined(
                node_id=new_node.node_id,
                contact_id=contact_id,
                messages=messages,
                route_hops=result.hops,
            )
        )
    if span is not None:
        span.set(messages=messages, route_hops=result.hops)
        if result.span is not None:
            span.adopt(result.span)
        obs.record_span(span)
    return messages


def refine_node_state(network: "PastryNetwork", node: PastryNode) -> int:
    """The optional second-stage state improvement.

    The Pastry companion paper notes that after the basic arrival
    protocol a node's routing table is proximally good but not optimal,
    and describes an improvement round: the node asks each of the nodes
    in its routing table and neighborhood set for *their* state, and
    adopts any candidate that is proximally closer than the incumbent
    for its slot.  Run periodically (or once, after joining), this is
    what keeps table quality high as the network evolves.

    Returns the number of messages used (two per queried node).
    """
    before = network.stats.counter("messages.refine").value
    queried = set(node.state.routing_table.entries())
    queried |= node.state.neighborhood.members()
    for peer_id in sorted(queried):
        if not network.is_live(peer_id):
            node.state.forget(peer_id)
            continue
        network.count_message("refine", 2)  # state request + reply
        peer = network.nodes[peer_id]
        for candidate in peer.state.known_nodes() | {peer_id}:
            if candidate != node.node_id and network.is_live(candidate):
                node.state.learn(candidate)
    return network.stats.counter("messages.refine").value - before
