"""A Pastry node: per-node state plus the local routing decision.

A node knows only its own state (routing table, leaf set, neighborhood
set); the :class:`repro.pastry.network.PastryNetwork` walks messages from
node to node by repeatedly asking the current node for its next hop.
Keeping the decision strictly local is what makes the simulation faithful
-- there is no global-knowledge shortcut anywhere on the routing path.

Applications (the PAST storage layer) attach themselves to nodes via the
:class:`Application` hook interface: ``on_forward`` fires at every
intermediate node (where PAST's caching inspects passing files) and
``on_deliver`` fires at the node whose id is numerically closest to the
message key (where PAST's root-node logic runs).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.pastry.nodeid import IdSpace
from repro.pastry.routing import DeterministicRouting
from repro.pastry.state import NodeState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pastry.network import PastryNetwork


class Application:
    """Hook interface for the layer above Pastry (PAST implements this)."""

    def on_deliver(self, node: "PastryNode", key: int, message: object) -> object:
        """Called at the destination node; the return value is handed back
        to the caller of ``PastryNetwork.route``."""
        return None

    def on_forward(self, node: "PastryNode", key: int, message: object) -> object:
        """Called at every node a message passes through (including the
        origin).  Returning a non-None value satisfies the message at
        this node -- PAST serves lookups from en-route replicas and
        cached copies this way."""
        return None


class PastryNode:
    """One overlay node."""

    __slots__ = (
        "network",
        "node_id",
        "_proximity",
        "alive",
        "malicious",
        "application",
        "state",
    )

    def __init__(
        self,
        network: "PastryNetwork",
        node_id: int,
        leaf_capacity: int,
        neighborhood_capacity: int,
    ) -> None:
        self.network = network
        self.node_id = network.space.validate(node_id)
        # Bound once: the topology never changes (and endpoints are never
        # re-registered) for the network's lifetime, and proximity() runs
        # inside table-admission loops -- so the origin's position is
        # hoisted into a unary closure up front.
        self._proximity = network.topology.unary_distance(node_id)
        self.alive = True
        # A malicious node accepts messages but does not forward them
        # (the attack model of section 2.2, "Fault-tolerance").
        self.malicious = False
        self.application: Optional[Application] = None
        self.state = NodeState(
            space=network.space,
            node_id=node_id,
            leaf_capacity=leaf_capacity,
            neighborhood_capacity=neighborhood_capacity,
            proximity=self._proximity,
        )

    @property
    def space(self) -> IdSpace:
        return self.network.space

    def proximity(self, other_id: int) -> float:
        """Scalar network distance from this node to another (the metric
        used when choosing among routing-table candidates)."""
        return self._proximity(other_id)

    def next_hop(self, key: int, policy=None, rng: Optional[random.Random] = None) -> Optional[int]:
        """This node's local routing decision for *key*.

        Dead entries are pruned and repaired on the fly (Pastry's lazy
        repair): if the chosen hop is dead, the node removes it from its
        state, asks row-mates for a replacement, and re-decides.
        """
        if policy is None:
            policy = DeterministicRouting()
        attempts = 0
        # Bounded retry: each iteration removes at least one dead entry
        # from this node's state, so termination is guaranteed.
        while True:
            hop = policy.next_hop(self.state, key, rng)
            if hop is None:
                return None
            if self.network.is_live(hop):
                return hop
            self.on_dead_entry(hop)
            attempts += 1
            if attempts > len(self.state.known_nodes()) + 4:
                return None

    def next_hop_explained(
        self, key: int, policy=None, rng: Optional[random.Random] = None
    ):
        """``(next_hop, rule)``: the decision of :meth:`next_hop` plus the
        routing rule that produced it (span tracing; same lazy repair of
        dead entries).  Policies without ``next_hop_explained`` fall back
        to the plain decision with an unlabelled rule."""
        from repro.pastry.routing import RULE_DELIVER_SELF

        if policy is None:
            policy = DeterministicRouting()
        explained = getattr(policy, "next_hop_explained", None)
        attempts = 0
        while True:
            if explained is not None:
                hop, rule = explained(self.state, key, rng)
            else:
                hop = policy.next_hop(self.state, key, rng)
                rule = RULE_DELIVER_SELF if hop is None else "policy (unlabelled)"
            if hop is None:
                return None, rule
            if self.network.is_live(hop):
                return hop, rule
            self.on_dead_entry(hop)
            attempts += 1
            if attempts > len(self.state.known_nodes()) + 4:
                return None, RULE_DELIVER_SELF

    def on_dead_entry(self, dead_id: int) -> None:
        """React to discovering that a referenced node is dead: forget it
        and trigger the appropriate repair protocol."""
        from repro.pastry import failure  # local import: cycle guard

        in_leaf = dead_id in self.state.leaf_set
        slot = self.state.routing_table.slot_for(dead_id)
        in_table = dead_id in self.state.routing_table
        self.state.forget(dead_id)
        if in_leaf:
            failure.repair_leaf_set(self.network, self, dead_id)
        if in_table and slot is not None:
            failure.repair_routing_entry(self.network, self, *slot)

    def learn(self, node_id: int) -> None:
        """Absorb knowledge of another node into all local structures."""
        if self.network.is_live(node_id):
            self.state.learn(node_id)

    def deliver(self, key: int, message: object) -> object:
        """Run the application deliver hook (no-op without an app)."""
        if self.application is not None:
            return self.application.on_deliver(self, key, message)
        return None

    def forward(self, key: int, message: object) -> object:
        """Run the application forward hook; a non-None return satisfies
        the message here (no-op without an app)."""
        if self.application is not None:
            return self.application.on_forward(self, key, message)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "live" if self.alive else "dead"
        return f"PastryNode({self.space.format_id(self.node_id)}, {status})"
