"""Next-hop selection: the Pastry routing procedure.

Deterministic routing (section 2.2 of the paper):

1. If the key falls within the leaf set's range, forward directly to the
   leaf-set member (possibly the present node) numerically closest to it.
2. Otherwise use the routing table: forward to the entry whose nodeId
   shares a prefix with the key at least one digit longer than the
   present node's.
3. Rare case (vacant table slot or unreachable entry): forward to any
   known node whose id shares a prefix with the key at least as long as
   the present node's and is numerically closer to the key.

Randomized routing (section 2.2, "Fault-tolerance"): the choice among
*all* suitable next hops (those satisfying the loop-freedom condition:
prefix at least as long, numerically strictly closer) is random, with the
probability distribution heavily biased towards the best choice, so that
a retried query eventually takes a route that avoids a malicious node.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.pastry.state import NodeState

# The routing-rule taxonomy.  Every hop decision is one of these; the
# policies report the rule *at decision time* through
# ``next_hop_explained`` (span tracing), and the after-the-fact route
# explainer in :mod:`repro.obs.spans` re-derives the same labels.
RULE_DELIVER_SELF = "deliver (numerically closest)"
RULE_LEAF = "leaf set (numeric jump to closest member)"
RULE_TABLE = "routing table (prefix +1 digit)"
RULE_RARE = "rare case (numeric fallback)"
RULE_EN_ROUTE = "served en route (application)"
RULE_REPLICA = "replica set (proximally nearest of k)"
RULE_RANDOMIZED = "randomized (biased choice)"


class DeterministicRouting:
    """The paper's standard routing procedure."""

    name = "deterministic"

    def next_hop(
        self, state: NodeState, key: int, rng: Optional[random.Random] = None
    ) -> Optional[int]:
        """The next node to forward to, or None to deliver locally."""
        if key == state.node_id:
            return None
        if state.leaf_set.covers(key):
            closest = state.leaf_set.closest_to(key, include_owner=True)
            return None if closest == state.node_id else closest
        entry = state.routing_table.next_hop_for(key)
        if entry is not None:
            return entry
        return self._rare_case(state, key)

    def next_hop_explained(
        self, state: NodeState, key: int, rng: Optional[random.Random] = None
    ) -> Tuple[Optional[int], str]:
        """``(next_hop, rule)``: the same decision as :meth:`next_hop`,
        annotated with which routing rule fired.  Used only on the traced
        path, so :meth:`next_hop` stays tuple-free; the two must take the
        same decision for identical state."""
        if key == state.node_id:
            return None, RULE_DELIVER_SELF
        if state.leaf_set.covers(key):
            closest = state.leaf_set.closest_to(key, include_owner=True)
            if closest == state.node_id:
                return None, RULE_DELIVER_SELF
            return closest, RULE_LEAF
        entry = state.routing_table.next_hop_for(key)
        if entry is not None:
            return entry, RULE_TABLE
        hop = self._rare_case(state, key)
        if hop is None:
            return None, RULE_DELIVER_SELF
        return hop, RULE_RARE

    def _rare_case(self, state: NodeState, key: int) -> Optional[int]:
        """Fall back to any known node with >= prefix and < distance;
        failing that, to a leaf-set member that is numerically closer.

        The second fallback covers the digit-boundary wrap: the true root
        can share a *shorter* prefix with the key than the present node
        does (e.g. key 0x70.., present 0x75.., root 0x6f..) while being
        numerically closer.  The leaf-set rule is purely numeric in the
        paper, so following a strictly closer leaf member is legitimate
        and preserves progress (circular distance strictly decreases).

        If neither fallback yields a node, the present node is (to its
        knowledge) the numerically closest live node, so the message is
        delivered here -- correct unless floor(l/2) adjacent nodes failed
        simultaneously (claim C6).
        """
        space = state.space
        shared_prefix_length = space.shared_prefix_length
        circular_distance = space.distance
        own_prefix = shared_prefix_length(state.node_id, key)
        own_distance = circular_distance(state.node_id, key)
        best: Optional[int] = None
        best_key: Optional[Tuple[int, int, int]] = None
        for candidate in state.known_nodes():
            prefix = shared_prefix_length(candidate, key)
            if prefix < own_prefix:
                continue
            distance = circular_distance(candidate, key)
            if distance >= own_distance:
                continue
            order = (-prefix, distance, -candidate)
            if best_key is None or order < best_key:
                best_key = order
                best = candidate
        if best is not None:
            return best
        closest_leaf = state.leaf_set.closest_to(key, include_owner=True)
        if closest_leaf != state.node_id:
            return closest_leaf
        return None


class ReplicaAwareRouting(DeterministicRouting):
    """'Locating the nearest among the k nodes' heuristic.

    PAST stores a file on the k nodes numerically closest to the fileId.
    Plain routing always terminates at the single numerically closest
    node (the root), so lookups would mostly be served by the root even
    when another replica is physically nearer the client.  This policy
    implements the heuristic evaluated in the Pastry companion paper
    (the source of the "nearest copy in 76% of lookups" claim C5): once
    the key falls within the leaf set's range, the node computes the
    likely replica set -- the k members (including itself) numerically
    closest to the key, exactly how the root placed the replicas -- and
    forwards to the *proximally* nearest of them instead.

    Because Pastry's earlier hops have already kept the message near the
    client (locality, claim C4), "proximally nearest to the forwarding
    node" approximates "proximally nearest to the client", and the
    message lands on a nearby replica, which serves it en route.
    """

    name = "replica-aware"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("replication factor must be >= 1")
        self.k = k

    def next_hop(
        self, state: NodeState, key: int, rng: Optional[random.Random] = None
    ) -> Optional[int]:
        if key == state.node_id:
            return None
        if state.leaf_set.covers(key):
            try:
                candidates = state.leaf_set.replica_candidates(key, self.k)
            except ValueError:
                # k exceeds what this leaf set can estimate; plain routing.
                return super().next_hop(state, key, rng)
            best = min(
                candidates,
                key=lambda c: (
                    0.0 if c == state.node_id else state.proximity(c),
                    c,
                ),
            )
            return None if best == state.node_id else best
        return super().next_hop(state, key, rng)

    def next_hop_explained(
        self, state: NodeState, key: int, rng: Optional[random.Random] = None
    ) -> Tuple[Optional[int], str]:
        if key == state.node_id:
            return None, RULE_DELIVER_SELF
        if state.leaf_set.covers(key):
            try:
                candidates = state.leaf_set.replica_candidates(key, self.k)
            except ValueError:
                return super().next_hop_explained(state, key, rng)
            best = min(
                candidates,
                key=lambda c: (
                    0.0 if c == state.node_id else state.proximity(c),
                    c,
                ),
            )
            if best == state.node_id:
                return None, RULE_DELIVER_SELF
            return best, RULE_REPLICA
        return super().next_hop_explained(state, key, rng)


class RandomizedRouting:
    """Randomized next-hop choice for routing around bad nodes.

    Every known node satisfying the loop-freedom condition is a
    candidate.  Candidates are ranked best-first (longest shared prefix,
    then numerically closest), and candidate *i* is selected with
    probability proportional to ``bias^i`` -- heavily biased towards the
    best choice (low average delay) while leaving every suitable route
    reachable with positive probability, so repeated retries route
    around a malicious node (claim C7).
    """

    name = "randomized"

    def __init__(self, bias: float = 0.25) -> None:
        if not 0.0 < bias < 1.0:
            raise ValueError("bias must be in (0, 1)")
        self.bias = bias

    def candidates(self, state: NodeState, key: int) -> List[int]:
        """All loop-free next hops, ranked best-first."""
        space = state.space
        shared_prefix_length = space.shared_prefix_length
        circular_distance = space.distance
        own_prefix = shared_prefix_length(state.node_id, key)
        own_distance = circular_distance(state.node_id, key)
        suitable = []
        for candidate in state.known_nodes():
            prefix = shared_prefix_length(candidate, key)
            if prefix < own_prefix:
                continue
            distance = circular_distance(candidate, key)
            if distance >= own_distance:
                continue
            suitable.append((-prefix, distance, -candidate, candidate))
        suitable.sort()
        return [entry[3] for entry in suitable]

    def next_hop(
        self, state: NodeState, key: int, rng: Optional[random.Random] = None
    ) -> Optional[int]:
        """Pick a suitable hop at random (biased to the best), or None to
        deliver locally."""
        if key == state.node_id:
            return None
        if rng is None:
            raise ValueError("randomized routing requires an rng")
        ranked = self.candidates(state, key)
        # Delivery condition mirrors the deterministic policy: if the key
        # is in the leaf set range and we are the closest member, deliver.
        # Otherwise the closest leaf member is always a valid hop, even
        # when a digit-boundary wrap gives it a *shorter* shared prefix
        # (the leaf-set rule is purely numeric), so make sure it is a
        # candidate -- and the preferred one, since it terminates the route.
        if state.leaf_set.covers(key):
            closest = state.leaf_set.closest_to(key, include_owner=True)
            if closest == state.node_id:
                return None
            if closest in ranked:
                ranked.remove(closest)
            ranked.insert(0, closest)
        if not ranked:
            # Same digit-boundary fallback as the deterministic policy: a
            # leaf member that is numerically strictly closer is a valid
            # terminal hop even with a shorter shared prefix.
            closest = state.leaf_set.closest_to(key, include_owner=True)
            return None if closest == state.node_id else closest
        # Geometric selection: P(i) proportional to bias^i.
        index = 0
        while index < len(ranked) - 1 and rng.random() < self.bias:
            index += 1
        return ranked[index]

    def next_hop_explained(
        self, state: NodeState, key: int, rng: Optional[random.Random] = None
    ) -> Tuple[Optional[int], str]:
        """The randomized decision is a single rule; tracing it labels the
        hop rather than distinguishing which candidate rank won."""
        hop = self.next_hop(state, key, rng)
        if hop is None:
            return None, RULE_DELIVER_SELF
        return hop, RULE_RANDOMIZED
