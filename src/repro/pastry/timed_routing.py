"""Latency-aware routing: what locality buys in wall-clock terms.

The hop-count experiments treat every hop as equal; this module walks
the same local routing decisions but accumulates *delay* from a latency
model, so experiments can report end-to-end lookup latency -- the
quantity Pastry's locality heuristics (proximity-chosen table entries,
bias towards the best randomized candidate) actually optimise.

``timed_route`` is deliberately a thin wrapper over the node-local
``next_hop`` decisions: the routing behaviour is byte-identical to
``PastryNetwork.route``; only the accounting differs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.netsim.latency import LatencyModel, ProximityLatency
from repro.pastry.network import PastryNetwork


@dataclass
class TimedRouteResult:
    """A route plus its accumulated one-way delay."""

    key: int
    path: List[int]
    delivered: bool
    latency: float
    per_hop_delays: List[float] = field(default_factory=list)

    @property
    def hops(self) -> int:
        return max(len(self.path) - 1, 0)

    @property
    def destination(self) -> Optional[int]:
        return self.path[-1] if self.delivered else None


def timed_route(
    network: PastryNetwork,
    key: int,
    origin: int,
    latency: Optional[LatencyModel] = None,
    policy=None,
    rng: Optional[random.Random] = None,
    max_hops: Optional[int] = None,
) -> TimedRouteResult:
    """Route *key* from *origin*, accumulating per-hop delays.

    Defaults to a :class:`ProximityLatency` over the network's own
    topology, so the delay of each hop reflects the proximity metric the
    routing tables were built against.
    """
    if latency is None:
        latency = ProximityLatency(network.topology)
    if max_hops is None:
        max_hops = 4 * network.space.digits + network.leaf_capacity
    current = network.nodes[origin]
    if not current.alive:
        raise ValueError("route origin is not alive")
    path = [origin]
    delays: List[float] = []
    visited = {origin}
    while True:
        hop = current.next_hop(key, policy, rng)
        if hop is None or hop in visited:
            return TimedRouteResult(
                key=key, path=path, delivered=True,
                latency=sum(delays), per_hop_delays=delays,
            )
        delays.append(latency.delay(current.node_id, hop))
        path.append(hop)
        visited.add(hop)
        if len(path) - 1 > max_hops:
            return TimedRouteResult(
                key=key, path=path, delivered=False,
                latency=sum(delays), per_hop_delays=delays,
            )
        current = network.nodes[hop]
