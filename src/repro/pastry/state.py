"""The bundle of per-node Pastry state, with invariant checks.

Groups the three structures every Pastry node maintains -- routing table,
leaf set, neighborhood set -- and offers whole-state operations: the total
entry count (claim C2 measures this), discovery of every node id the
state references, and consistency checks the test suite runs after joins
and failures.
"""

from __future__ import annotations

from typing import Callable, Optional, Set, Tuple

from repro.pastry.leaf_set import LeafSet
from repro.pastry.neighborhood import NeighborhoodSet
from repro.pastry.nodeid import IdSpace
from repro.pastry.routing_table import RoutingTable


class NodeState:
    """All routing state owned by one Pastry node."""

    __slots__ = (
        "space",
        "node_id",
        "proximity",
        "routing_table",
        "leaf_set",
        "neighborhood",
        "_known_cache",
        "_known_versions",
    )

    def __init__(
        self,
        space: IdSpace,
        node_id: int,
        leaf_capacity: int,
        neighborhood_capacity: int,
        proximity: Callable[[int], float],
    ) -> None:
        self.space = space
        self.node_id = space.validate(node_id)
        self.proximity = proximity
        self.routing_table = RoutingTable(space, node_id)
        self.leaf_set = LeafSet(space, node_id, leaf_capacity)
        self.neighborhood = NeighborhoodSet(node_id, proximity, neighborhood_capacity)
        self._known_cache: Optional[frozenset] = None
        self._known_versions: Optional[Tuple[int, int, int]] = None

    def learn(self, node_id: int, use_proximity: bool = True) -> None:
        """Offer a newly discovered node to every structure it may belong
        in.  This is the single entry point through which nodes absorb
        knowledge of each other, so all structures stay consistent."""
        if node_id == self.node_id:
            return
        self.routing_table.add(node_id, self.proximity if use_proximity else None)
        self.leaf_set.add(node_id)
        self.neighborhood.add(node_id)

    def reseed_neighborhood(self, distances: Optional[Callable] = None) -> None:
        """Rebuild the neighborhood set from the current leaf set and
        routing table.

        This is the oracle's neighborhood invariant: M is always exactly
        what a fresh proximity-ranked pass over leaf-set members and
        routing-table entries would admit.  The incremental maintainer
        calls this for every node whose leaf set or table changed; the
        full rebuild uses the same pass, so the two stay byte-identical.
        Candidates are ranked by ``(distance, id)`` in bulk and loaded
        directly -- identical to offering them through ``add`` in
        ascending-id order (the set is always the best-|M| by that key,
        with distance ties resolved towards the smaller id on both
        paths), without a binary search per candidate.  *distances*, when
        given, is a batch proximity evaluator for this node
        (:meth:`Topology.batch_distance`) used in place of the per-member
        unary calls.
        """
        self.neighborhood = NeighborhoodSet(
            self.node_id, self.proximity, self.neighborhood.capacity
        )
        pool = set(self.routing_table.entries())
        pool |= self.leaf_set.members()
        pool.discard(self.node_id)
        if distances is None:
            proximity = self.proximity
            pairs = sorted((proximity(known), known) for known in pool)
        else:
            members = sorted(pool)
            pairs = sorted(zip(distances(members), members))
        self.neighborhood.bulk_load(pairs)

    def forget(self, node_id: int) -> bool:
        """Remove a failed node from every structure; True if any held it."""
        removed = self.routing_table.remove(node_id)
        removed |= self.leaf_set.remove(node_id)
        removed |= self.neighborhood.remove(node_id)
        return removed

    def known_nodes(self) -> Set[int]:
        """Every node id this state references anywhere.

        Cached against the three structures' version stamps: the rare-case
        and randomized routing paths call this once per hop, so in a
        quiescent network the union is built once per node, not per hop.
        The returned frozenset is a snapshot -- do not mutate it.
        """
        versions = (
            self.routing_table.version,
            self.leaf_set.version,
            self.neighborhood.version,
        )
        if self._known_cache is None or self._known_versions != versions:
            known = set(self.routing_table.entries())
            known |= self.leaf_set.members()
            known |= self.neighborhood.members()
            known.discard(self.node_id)
            self._known_cache = frozenset(known)
            self._known_versions = versions
        return self._known_cache

    def total_entries(self) -> int:
        """Total state size in entries, the quantity bounded by
        (2^b - 1) * ceil(log_2^b N) + 2l in claim C2.  Counts the routing
        table and leaf set (the neighborhood set is reported separately by
        the benchmark because the paper's formula excludes it)."""
        return len(self.routing_table) + len(self.leaf_set)

    def check_invariants(self, live_nodes: Optional[Set[int]] = None) -> None:
        """Structural invariants; with *live_nodes*, also checks that no
        structure references a dead node."""
        self.routing_table.check_invariants()
        if live_nodes is not None:
            for referenced in self.known_nodes():
                if referenced not in live_nodes:
                    raise AssertionError(
                        f"node {self.space.format_id(self.node_id)} references "
                        f"dead node {self.space.format_id(referenced)}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeState(id={self.space.format_id(self.node_id)}, "
            f"rt={len(self.routing_table)}, ls={len(self.leaf_set)}, "
            f"nh={len(self.neighborhood)})"
        )
