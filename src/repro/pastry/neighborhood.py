"""The neighborhood set: proximally nearest nodes.

The neighborhood set M contains the |M| nodes closest to the owner
according to the *proximity* metric (not the nodeId space).  It is not
normally used in routing; its role is locality maintenance -- seeding the
routing tables of arriving nodes (the join protocol hands the new node
the neighborhood set of the nearby contact node A) and supplying
proximally good candidates during repair.
"""

from __future__ import annotations

from typing import Callable, List, Set


class NeighborhoodSet:
    """Neighborhood set of one node, ordered by proximity."""

    def __init__(self, owner: int, proximity: Callable[[int], float], capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("neighborhood capacity must be >= 1")
        self.owner = owner
        self.capacity = capacity
        self._proximity = proximity
        self._members: List[int] = []  # sorted nearest-first

    def add(self, node_id: int) -> bool:
        """Consider a node for membership; True if admitted/already in."""
        if node_id == self.owner:
            return False
        if node_id in self._members:
            return True
        distance = self._proximity(node_id)
        position = 0
        while position < len(self._members) and self._proximity(self._members[position]) <= distance:
            position += 1
        self._members.insert(position, node_id)
        if len(self._members) > self.capacity:
            evicted = self._members.pop()
            return evicted != node_id
        return True

    def remove(self, node_id: int) -> bool:
        """Drop a (failed) node; True if it was present."""
        if node_id in self._members:
            self._members.remove(node_id)
            return True
        return False

    def members(self) -> Set[int]:
        return set(self._members)

    def ordered_members(self) -> List[int]:
        """Members nearest-first (copy)."""
        return list(self._members)

    def nearest(self) -> int:
        """The proximally nearest known node."""
        if not self._members:
            raise ValueError("neighborhood set is empty")
        return self._members[0]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborhoodSet(owner={self.owner}, size={len(self._members)})"
