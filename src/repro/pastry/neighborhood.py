"""The neighborhood set: proximally nearest nodes.

The neighborhood set M contains the |M| nodes closest to the owner
according to the *proximity* metric (not the nodeId space).  It is not
normally used in routing; its role is locality maintenance -- seeding the
routing tables of arriving nodes (the join protocol hands the new node
the neighborhood set of the nearby contact node A) and supplying
proximally good candidates during repair.

Each member's distance from the owner is computed once, on admission,
and kept in a sorted parallel list; admission is then a binary search
instead of a scan that re-evaluates the proximity function per slot
(the proximity metric is immutable for a given pair, so the cached
ordering can never go stale).
"""

from __future__ import annotations

import bisect
from array import array
from typing import Callable, List, Optional, Set

from repro.pastry.versioning import next_version


class NeighborhoodSet:
    """Neighborhood set of one node, ordered by proximity."""

    __slots__ = (
        "owner",
        "capacity",
        "_proximity",
        "_members",
        "_distances",
        "_present",
        "version",
        "_members_cache",
    )

    def __init__(self, owner: int, proximity: Callable[[int], float], capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("neighborhood capacity must be >= 1")
        self.owner = owner
        self.capacity = capacity
        self._proximity = proximity
        self._members: List[int] = []  # sorted nearest-first
        # Parallel to _members; an array of C doubles rather than a list
        # of boxed floats (the distances are only ever compared).
        self._distances = array("d")
        self._present: set = set()  # O(1) membership alongside the lists
        self.version = next_version()
        self._members_cache: Optional[frozenset] = None

    def _invalidate(self) -> None:
        self.version = next_version()
        self._members_cache = None

    def add(self, node_id: int) -> bool:
        """Consider a node for membership; True if admitted/already in."""
        if node_id == self.owner:
            return False
        if node_id in self._present:
            return True
        distance = self._proximity(node_id)
        # After all members at <= distance, as the original scan did.
        position = bisect.bisect_right(self._distances, distance)
        if position >= self.capacity:
            # Would land past the capacity boundary and be evicted at
            # once: reject without touching the lists.
            return False
        self._members.insert(position, node_id)
        self._distances.insert(position, distance)
        self._present.add(node_id)
        self._invalidate()
        if len(self._members) > self.capacity:
            evicted = self._members.pop()
            self._distances.pop()
            self._present.discard(evicted)
        return True

    def bulk_load(self, pairs: List[tuple]) -> None:
        """Replace the membership with pre-ranked ``(distance, id)`` pairs.

        *pairs* must be sorted ascending and contain no duplicates or the
        owner.  Equivalent to offering the ids through :meth:`add` in
        ascending-id order (ties on distance then resolve towards the
        smaller id on both paths), without the per-candidate binary
        search -- the oracle reseed path, which ranks candidates in bulk
        anyway, loads the result directly.
        """
        del pairs[self.capacity :]
        self._members = [node_id for _, node_id in pairs]
        self._distances = array("d", [distance for distance, _ in pairs])
        self._present = set(self._members)
        self._invalidate()

    def remove(self, node_id: int) -> bool:
        """Drop a (failed) node; True if it was present."""
        if node_id in self._present:
            index = self._members.index(node_id)
            self._members.pop(index)
            self._distances.pop(index)
            self._present.discard(node_id)
            self._invalidate()
            return True
        return False

    def members(self) -> Set[int]:
        if self._members_cache is None:
            self._members_cache = frozenset(self._members)
        return self._members_cache

    def ordered_members(self) -> List[int]:
        """Members nearest-first (copy)."""
        return list(self._members)

    def nearest(self) -> int:
        """The proximally nearest known node."""
        if not self._members:
            raise ValueError("neighborhood set is empty")
        return self._members[0]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._present

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborhoodSet(owner={self.owner}, size={len(self._members)})"
