"""Discrete-event simulation substrate.

This package provides the three services every other subsystem builds on:

* :mod:`repro.sim.rng` -- named, seeded random-number streams so that every
  experiment is reproducible bit-for-bit regardless of the order in which
  components draw randomness.
* :mod:`repro.sim.engine` -- a classic discrete-event engine (priority queue
  of timestamped events) used by the protocols that need a notion of time:
  keep-alives, failure detection, audits.
* :mod:`repro.sim.trace` -- lightweight counters and histograms used to
  collect the statistics the benchmarks report.
"""

from repro.sim.engine import Event, SimulationEngine
from repro.sim.rng import RngRegistry, stable_seed
from repro.sim.trace import Counter, Histogram, StatsRegistry

__all__ = [
    "Event",
    "SimulationEngine",
    "RngRegistry",
    "stable_seed",
    "Counter",
    "Histogram",
    "StatsRegistry",
]
