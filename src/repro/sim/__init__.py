"""Discrete-event simulation substrate.

This package provides the three services every other subsystem builds on:

* :mod:`repro.sim.rng` -- named, seeded random-number streams so that every
  experiment is reproducible bit-for-bit regardless of the order in which
  components draw randomness.
* :mod:`repro.sim.engine` -- a classic discrete-event engine (priority queue
  of timestamped events) used by the protocols that need a notion of time:
  keep-alives, failure detection, audits.
The counters and histograms that used to live in ``repro.sim.trace``
moved to :mod:`repro.obs.metrics` (the shim module has since been
deleted); the legacy names are still re-exported here.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.sim.engine import Event, SimulationEngine
from repro.sim.rng import RngRegistry, stable_seed

# Deprecated alias, kept for backward compatibility.
StatsRegistry = MetricsRegistry

__all__ = [
    "Event",
    "SimulationEngine",
    "RngRegistry",
    "stable_seed",
    "Counter",
    "Histogram",
    "StatsRegistry",
]
