"""A minimal discrete-event simulation engine.

The engine is a priority queue of ``(time, sequence, Event)`` triples.  The
sequence number breaks ties deterministically (FIFO among events scheduled
for the same instant), which keeps whole-simulation runs reproducible.

Protocols that need wall-clock behaviour -- Pastry keep-alives, failure
detection timeouts, periodic storage audits -- schedule callbacks here.
Protocols that are purely message-hop-counted (routing experiments) bypass
the engine and walk messages synchronously for speed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=False)
class Event:
    """A scheduled callback.

    ``cancelled`` supports O(1) cancellation: the event stays in the heap
    but is skipped when popped.  This is the standard "lazy deletion"
    technique and avoids O(n) heap surgery.
    """

    time: float
    action: Callable[[], None]
    label: str = ""
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True


class SimulationEngine:
    """Run events in timestamp order.

    >>> eng = SimulationEngine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append("b"))
    >>> _ = eng.schedule(1.0, lambda: fired.append("a"))
    >>> eng.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule *action* to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self.now + delay, action=action, label=label)
        heapq.heappush(self._heap, (event.time, next(self._sequence), event))
        return event

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule *action* at an absolute simulation time."""
        return self.schedule(time - self.now, action, label)

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        label: str = "",
        jitter: Optional[Callable[[], float]] = None,
    ) -> Event:
        """Schedule *action* to repeat every *interval* until cancelled.

        ``jitter()`` (if given) is added to each interval, modelling the
        slightly desynchronised timers of real nodes.  Cancelling the
        *returned* event stops the very first firing; the repetition chain
        is stopped by cancelling ``handle.cancelled`` through the returned
        :class:`PeriodicHandle`-like event (we reuse a single Event object
        whose ``cancelled`` flag is checked before each re-arm).
        """
        if interval <= 0:
            raise ValueError(f"periodic interval must be positive (got {interval})")
        handle = Event(time=self.now, action=action, label=label)

        def fire() -> None:
            if handle.cancelled:
                return
            action()
            extra = jitter() if jitter is not None else 0.0
            self.schedule(max(interval + extra, 0.0), fire, label)

        self.schedule(interval + (jitter() if jitter is not None else 0.0), fire, label)
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, *until* passes, or
        *max_events* have fired.  Returns the number of events processed."""
        processed = 0
        while self._heap:
            time, _, event = self._heap[0]
            if until is not None and time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = time
            event.action()
            processed += 1
        if until is not None and self.now < until:
            self.now = until
        self.events_processed += processed
        return processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationEngine(now={self.now:.3f}, pending={self.pending()})"
