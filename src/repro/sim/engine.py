"""A minimal discrete-event simulation engine.

The engine is a priority queue of ``(time, sequence, Event)`` triples.  The
sequence number breaks ties deterministically (FIFO among events scheduled
for the same instant), which keeps whole-simulation runs reproducible.

Protocols that need wall-clock behaviour -- Pastry keep-alives, failure
detection timeouts, periodic storage audits -- schedule callbacks here.
Protocols that are purely message-hop-counted (routing experiments) bypass
the engine and walk messages synchronously for speed.

Scale notes (the million-event regime of the 100k-node churn runs):

* ``run`` drains whole runs of same-timestamp events per outer
  iteration, so the peek/bound bookkeeping is paid once per *timestamp*
  rather than once per event;
* ``schedule_many`` bulk-loads a pre-computed schedule (Poisson churn,
  fault plans) with one O(n) heapify instead of n O(log n) pushes;
* ``pending()`` is O(1): a live counter is maintained on schedule,
  cancel and pop (lazy-deleted cancelled events are uncounted the moment
  they are cancelled, not when their heap entry surfaces).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple


@dataclass(order=False, slots=True)
class Event:
    """A scheduled callback.

    ``cancelled`` supports O(1) cancellation: the event stays in the heap
    but is skipped when popped.  This is the standard "lazy deletion"
    technique and avoids O(n) heap surgery.  ``_engine`` back-references
    the engine while the event is queued so cancellation can keep the
    live-event counter exact; it is dropped when the event leaves the
    heap (fired or discarded).
    """

    time: float
    action: Callable[[], None]
    label: str = ""
    cancelled: bool = field(default=False, compare=False)
    _engine: Optional["SimulationEngine"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            self._engine = None
            engine._pending -= 1


class SimulationEngine:
    """Run events in timestamp order.

    >>> eng = SimulationEngine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append("b"))
    >>> _ = eng.schedule(1.0, lambda: fired.append("a"))
    >>> eng.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._pending = 0
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule *action* to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self.now + delay, action=action, label=label)
        event._engine = self
        heapq.heappush(self._heap, (event.time, next(self._sequence), event))
        self._pending += 1
        return event

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule *action* at an absolute simulation time."""
        return self.schedule(time - self.now, action, label)

    def schedule_many(
        self,
        items: Iterable[Tuple[float, Callable[[], None]]],
        label: str = "",
    ) -> List[Event]:
        """Bulk-schedule ``(delay, action)`` pairs relative to now.

        One heapify over the combined queue instead of one sift per
        event; the per-item sequence numbers still preserve FIFO order
        among equal timestamps, exactly as repeated ``schedule`` calls
        would."""
        now = self.now
        return self.schedule_many_at(
            ((now + delay, action) for delay, action in items), label
        )

    def schedule_many_at(
        self,
        items: Iterable[Tuple[float, Callable[[], None]]],
        label: str = "",
    ) -> List[Event]:
        """Bulk-schedule ``(time, action)`` pairs at absolute times."""
        heap = self._heap
        sequence = self._sequence
        now = self.now
        events: List[Event] = []
        for time, action in items:
            if time < now:
                raise ValueError(f"cannot schedule into the past (time={time})")
            event = Event(time=time, action=action, label=label)
            event._engine = self
            events.append(event)
            heap.append((time, next(sequence), event))
        if events:
            heapq.heapify(heap)
            self._pending += len(events)
        return events

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        label: str = "",
        jitter: Optional[Callable[[], float]] = None,
    ) -> Event:
        """Schedule *action* to repeat every *interval* until cancelled.

        ``jitter()`` (if given) is added to each interval, modelling the
        slightly desynchronised timers of real nodes.  Cancelling the
        *returned* event stops the very first firing; the repetition chain
        is stopped by cancelling ``handle.cancelled`` through the returned
        :class:`PeriodicHandle`-like event (we reuse a single Event object
        whose ``cancelled`` flag is checked before each re-arm).
        """
        if interval <= 0:
            raise ValueError(f"periodic interval must be positive (got {interval})")
        handle = Event(time=self.now, action=action, label=label)

        def fire() -> None:
            if handle.cancelled:
                return
            action()
            extra = jitter() if jitter is not None else 0.0
            self.schedule(max(interval + extra, 0.0), fire, label)

        self.schedule(interval + (jitter() if jitter is not None else 0.0), fire, label)
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, *until* passes, or
        *max_events* have fired.  Returns the number of events processed.

        Events sharing a timestamp are drained from the heap in one pass
        and executed as a batch (in sequence order); events an action
        schedules *at the current instant* join the tail of the run, and
        events an action cancels are skipped even when already drained --
        both exactly as the one-pop-per-iteration loop behaved.
        """
        processed = 0
        heap = self._heap
        batch: List[Event] = []
        while heap:
            time = heap[0][0]
            if until is not None and time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            # Drain the run of events stamped *time*, capped so the batch
            # cannot overshoot max_events.  Cancelled entries are
            # discarded here without counting.
            del batch[:]
            while heap and heap[0][0] == time:
                event = heapq.heappop(heap)[2]
                if event._engine is not None:
                    event._engine = None
                    self._pending -= 1
                if not event.cancelled:
                    batch.append(event)
                    if max_events is not None and processed + len(batch) >= max_events:
                        break
            if not batch:
                continue
            self.now = time
            for event in batch:
                if event.cancelled:
                    continue  # cancelled by an earlier event in the batch
                event.action()
                processed += 1
        if until is not None and self.now < until:
            self.now = until
        self.events_processed += processed
        return processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationEngine(now={self.now:.3f}, pending={self.pending()})"
