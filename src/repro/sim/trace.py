"""Counters and histograms for experiment statistics.

Benchmarks in this repository print the same rows the paper reports:
average hop counts, utilization percentages, hit rates.  The classes here
collect those statistics with no third-party dependencies so the core
library stays import-light; the heavier analysis (confidence intervals)
lives in :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Tuple


class Counter:
    """A named monotonic counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A streaming histogram over numeric samples.

    Keeps every sample (experiments here are small enough) so exact
    percentiles are available; also maintains running sum/sum-of-squares
    for O(1) mean and variance.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[float] = []
        self._sum = 0.0
        self._sum_sq = 0.0

    def add(self, value: float) -> None:
        self.samples.append(value)
        self._sum += value
        self._sum_sq += value * value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self._sum / len(self.samples)

    @property
    def variance(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self._sum / n
        return max((self._sum_sq - n * mean * mean) / (n - 1), 0.0)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile with linear interpolation; q in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] + weight * (ordered[high] - ordered[low])

    def bucketize(self, bucket_width: float) -> Dict[float, int]:
        """Group samples into fixed-width buckets keyed by bucket start."""
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        buckets: Dict[float, int] = defaultdict(int)
        for sample in self.samples:
            buckets[math.floor(sample / bucket_width) * bucket_width] += 1
        return dict(buckets)

    def frequency(self) -> Dict[float, int]:
        """Exact value -> count map (useful for integer samples like hops)."""
        freq: Dict[float, int] = defaultdict(int)
        for sample in self.samples:
            freq[sample] += 1
        return dict(freq)

    def summary(self) -> Dict[str, float]:
        """A dict of the headline statistics, ready for table rendering."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3f})"


class StatsRegistry:
    """A named collection of counters and histograms.

    One registry typically belongs to one simulation run; components look
    up their instruments by name so the benchmark can read them afterwards.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self._histograms[name] = histogram
        return histogram

    def counters(self) -> List[Tuple[str, int]]:
        return [(name, c.value) for name, c in sorted(self._counters.items())]

    def histograms(self) -> List[Tuple[str, Histogram]]:
        return sorted(self._histograms.items())

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()
