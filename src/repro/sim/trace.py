"""Deprecated shim: these classes moved to :mod:`repro.obs.metrics`.

The experiment statistics classes (``Counter``, ``Histogram``, and the
registry) grew labels, gauges, deterministic snapshots and a Prometheus
exposition, and now live in the unified observability layer under
``repro.obs``.  This module re-exports them so existing imports keep
working; new code should import from :mod:`repro.obs` directly.

``StatsRegistry`` is an alias of :class:`repro.obs.metrics.MetricsRegistry`
-- label-free usage (``registry.counter("messages.join")``) behaves
exactly as before.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

warnings.warn(
    "repro.sim.trace is a deprecated shim; import these classes from "
    "repro.obs.metrics (StatsRegistry is now MetricsRegistry)",
    DeprecationWarning,
    stacklevel=2,
)

# Deprecated alias, kept for backward compatibility.
StatsRegistry = MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "StatsRegistry"]
