"""Deterministic, named random-number streams.

Large simulations are only debuggable if they are reproducible.  A single
shared ``random.Random`` makes reproducibility fragile: adding one draw in
one component perturbs every draw that follows it everywhere else.  The
registry below gives each component its *own* stream, derived from a master
seed and the stream's name, so streams are mutually independent and adding
draws to one never disturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed deterministically from arbitrary parts.

    Unlike ``hash()``, this is stable across processes and Python versions
    (``PYTHONHASHSEED`` does not affect it), which is what experiment
    reproducibility requires.
    """
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A family of independent ``random.Random`` streams under one master seed.

    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("workload")
    >>> b = rngs.stream("topology")
    >>> a is rngs.stream("workload")
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(stable_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed depends on *name*.

        Useful to give each simulated node its own registry without the
        per-node streams colliding.
        """
        return RngRegistry(stable_seed(self.master_seed, "fork", name))

    def reset(self) -> None:
        """Drop all streams so the next access re-creates them from scratch."""
        self._streams.clear()

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(master_seed={self.master_seed}, streams={len(self._streams)})"
