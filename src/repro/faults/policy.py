"""Retry with exponential backoff and jitter.

The live layer's original behaviour was a single ``asyncio.wait_for``
per operation: one lost message stranded the caller until the (10 s)
timeout and then failed outright.  :class:`RetryPolicy` replaces that
with the standard production discipline -- bounded attempts, each with a
per-attempt budget, separated by exponentially growing, jittered sleeps.
Jitter comes from a caller-supplied :mod:`random.Random` (usually a
:class:`~repro.sim.rng.RngRegistry` stream), so a seeded deployment
produces a deterministic backoff sequence -- the property the retry
regression tests pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry: ``attempts`` tries, exponential backoff between.

    ``backoff(n)`` is the sleep before attempt *n+1* (n >= 1):
    ``min(base_delay * factor**(n-1), max_delay)`` plus, when an rng is
    supplied, a uniform jitter of up to ``jitter`` times the raw delay
    (decorrelates retry storms from many concurrent callers).

    Determinism contract (lint rule DET001's concern): this class never
    constructs an RNG of its own.  Jitter happens only when the caller
    passes a seeded ``random.Random``; with ``rng=None`` the sequence is
    the pure exponential schedule, and the process-global ``random``
    module is never consulted either way.
    """

    attempts: int = 4
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor below 1 would shrink the backoff")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbering is 1-based")
        raw = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
        if rng is not None and self.jitter > 0:
            raw += rng.uniform(0.0, self.jitter * raw)
        return raw

    def delays(self, rng: Optional[random.Random] = None) -> List[float]:
        """The full backoff sequence (``attempts - 1`` sleeps)."""
        return [self.backoff(n, rng) for n in range(1, self.attempts)]
