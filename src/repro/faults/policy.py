"""Retry with exponential backoff and jitter.

The live layer's original behaviour was a single ``asyncio.wait_for``
per operation: one lost message stranded the caller until the (10 s)
timeout and then failed outright.  :class:`RetryPolicy` replaces that
with the standard production discipline -- bounded attempts, each with a
per-attempt budget, separated by exponentially growing, jittered sleeps.
Jitter comes from a caller-supplied :mod:`random.Random` (usually a
:class:`~repro.sim.rng.RngRegistry` stream), so a seeded deployment
produces a deterministic backoff sequence -- the property the retry
regression tests pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of a retried live operation, as it happened.

    ``span_id`` ties the attempt back to its span in the operation's
    trace (the hop-by-hop record lives there); ``delay`` is the backoff
    slept *before* this attempt; ``randomized``/``reroute_seed`` say
    whether the attempt rerouted via the randomized policy (claim C7)
    and under which derived seed.
    """

    attempt: int
    span_id: str = ""
    delay: float = 0.0
    randomized: bool = False
    reroute_seed: Optional[int] = None

    def describe(self) -> str:
        parts = [f"attempt {self.attempt}"]
        if self.delay > 0:
            parts.append(f"after {self.delay:.3f}s backoff")
        if self.randomized:
            parts.append(f"rerouted (seed {self.reroute_seed})")
        if self.span_id:
            parts.append(f"span {self.span_id}")
        return ", ".join(parts)


@dataclass
class AttemptLog:
    """The attempt history one retried operation accumulates.

    The live layer appends a record per attempt; when the budget is
    exhausted the log rides inside
    :class:`~repro.core.errors.DegradedError`, so a degraded operation
    carries its full history (which trace, which spans, what backoff,
    where it rerouted) instead of just a count.
    """

    trace_id: str = ""
    records: List[AttemptRecord] = field(default_factory=list)

    def add(
        self,
        attempt: int,
        span_id: str = "",
        delay: float = 0.0,
        randomized: bool = False,
        reroute_seed: Optional[int] = None,
    ) -> AttemptRecord:
        record = AttemptRecord(
            attempt=attempt,
            span_id=span_id,
            delay=delay,
            randomized=randomized,
            reroute_seed=reroute_seed,
        )
        self.records.append(record)
        return record

    def as_tuple(self) -> Tuple[AttemptRecord, ...]:
        return tuple(self.records)

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry: ``attempts`` tries, exponential backoff between.

    ``backoff(n)`` is the sleep before attempt *n+1* (n >= 1):
    ``min(base_delay * factor**(n-1), max_delay)`` plus, when an rng is
    supplied, a uniform jitter of up to ``jitter`` times the raw delay
    (decorrelates retry storms from many concurrent callers).

    Determinism contract (lint rule DET001's concern): this class never
    constructs an RNG of its own.  Jitter happens only when the caller
    passes a seeded ``random.Random``; with ``rng=None`` the sequence is
    the pure exponential schedule, and the process-global ``random``
    module is never consulted either way.
    """

    attempts: int = 4
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor below 1 would shrink the backoff")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbering is 1-based")
        raw = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
        if rng is not None and self.jitter > 0:
            raw += rng.uniform(0.0, self.jitter * raw)
        return raw

    def delays(self, rng: Optional[random.Random] = None) -> List[float]:
        """The full backoff sequence (``attempts - 1`` sleeps)."""
        return [self.backoff(n, rng) for n in range(1, self.attempts)]
