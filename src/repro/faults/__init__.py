"""Deterministic fault injection, retry discipline, and invariants."""

from repro.faults.chaos import run_chaos
from repro.faults.invariants import InvariantChecker, Violation
from repro.faults.plan import (
    ADJACENT_FAILURE,
    CRASH,
    RESTART,
    SLOW_NODE,
    FaultEvent,
    FaultPlan,
    MessageFault,
    build_schedule,
)
from repro.faults.policy import RetryPolicy

__all__ = [
    "ADJACENT_FAILURE",
    "CRASH",
    "RESTART",
    "SLOW_NODE",
    "FaultEvent",
    "FaultPlan",
    "InvariantChecker",
    "MessageFault",
    "RetryPolicy",
    "Violation",
    "build_schedule",
    "run_chaos",
]
