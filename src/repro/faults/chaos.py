"""The chaos driver: one deterministic fault-injected run, end to end.

Builds a full PAST deployment, inserts a file population, then lets a
seeded :class:`~repro.faults.plan.FaultPlan` crash, restart, slow, and
coordinately fail nodes while the churn engine keeps an ongoing lookup
workload running.  The :class:`~repro.faults.invariants.InvariantChecker`
sweeps the deployment after every injected fault; everything lands on
the observability bus so the run leaves a JSONL artifact CI can grep
for ``invariant-violated`` events.

Two runs with the same seed produce byte-identical reports -- every
random decision (topology, node ids, fault schedule, victims, workload)
comes from named streams under the one seed.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan, build_schedule
from repro.obs.claims import POINT_CLAIMS, record_deployment_census

# Leaf capacity for chaos runs: l=8 means floor(l/2)=4, so the C6
# boundary (4 adjacent failures) stays a tractable event in a ~30 node
# deployment while leaving enough survivors to keep routing.
CHAOS_LEAF_CAPACITY = 8


def run_chaos(
    seed: int = 0,
    nodes: int = 30,
    files: int = 12,
    duration: float = 200.0,
    replication_factor: int = 3,
    events_path: Optional[str] = None,
    traces_path: Optional[str] = None,
) -> dict:
    """One chaos run; returns a deterministic report dict.

    When *events_path* is given, the full observability event log is
    written there as JSONL (schema-validated records, one per line);
    *traces_path* likewise exports the collected span records.  The
    report embeds the final metrics snapshot and the deployment
    parameters, so the claim observatory (``python -m repro.obs.report``)
    can re-evaluate every claim verdict from the artifact alone.
    """
    # Local imports: the churn simulation itself consumes fault plans,
    # so importing it at module scope would close an import cycle
    # through the package __init__.
    from repro.core.churn_sim import ChurnSimulation
    from repro.core.files import SyntheticData
    from repro.core.network import PastNetwork
    from repro.obs.recorder import Observer
    from repro.obs.slo import evaluate_chaos_slo
    from repro.obs.timeseries import TimeSeriesRecorder
    from repro.sim.rng import RngRegistry

    observer = Observer()
    # Windowed series sampled under the sim clock: one 20-unit window
    # per sample, so two same-seed runs emit byte-identical series.
    timeseries = TimeSeriesRecorder(window=20.0)
    observer.timeseries = timeseries
    network = PastNetwork(
        rngs=RngRegistry(seed),
        observer=observer,
        leaf_capacity=CHAOS_LEAF_CAPACITY,
    )
    network.build(nodes, method="join", capacity_fn=lambda r: 1 << 22)
    client = network.create_client(usage_quota=1 << 40)
    handles = [
        client.insert(f"chaos-{i}", SyntheticData(i, 1500),
                      replication_factor=replication_factor)
        for i in range(files)
    ]
    checker = InvariantChecker(network, clients=[client], observer=observer)
    plan = FaultPlan(
        seed=seed,
        events=build_schedule(seed, duration, half_leaf=CHAOS_LEAF_CAPACITY // 2),
    )
    simulation = ChurnSimulation(
        network,
        handles,
        arrival_rate=0.0,
        departure_rate=0.0,
        maintenance_interval=40.0,
        lookup_interval=2.0,
        fault_plan=plan,
        checker=checker,
        sampler=lambda at: timeseries.sample(observer.metrics, at=at),
        sample_interval=20.0,
    )
    checker.check_all()  # clean baseline before any chaos
    report = simulation.run(duration)
    checker.check_all()  # final sweep after the last event settles
    record_deployment_census(network)

    result = {
        "seed": seed,
        "nodes": nodes,
        "files": files,
        "duration": duration,
        "params": {
            "final_node_count": report.final_node_count,
            "bits_per_digit": network.space.b,
            "leaf_capacity": network.pastry.leaf_capacity,
            "neighborhood_capacity": network.pastry.neighborhood_capacity,
            "replication_factor": replication_factor,
        },
        "faults_injected": dict(sorted(plan.injected.items())),
        "schedule": plan.describe()["events"],
        "invariant_checks": checker.checks_run,
        "violations": [
            {"invariant": v.invariant, "node_id": v.node_id, "detail": v.detail}
            for v in checker.violations
        ],
        "availability": round(report.availability, 4),
        "lookups_attempted": report.lookups_attempted,
        "files_lost": report.files_lost,
        "replicas_restored": report.replicas_restored,
        "final_node_count": report.final_node_count,
        "metrics": observer.metrics.snapshot(),
        # What the run *spent*: every message charged to its activity
        # category under the wire-size model (obs/cost_model).  The
        # sim-time windows cover the churned portion of the run.
        "ledger": observer.ledger.snapshot(),
        # The windowed time-series and the SLO verdict over it: both are
        # functions of the seeded schedule only, so they are part of the
        # byte-deterministic artifact contract.
        "timeseries": timeseries.snapshot(),
        "slo": evaluate_chaos_slo(
            report.availability,
            report.files_lost,
            observer.ledger.unpriced_total(),
            series_snapshot=timeseries.snapshot(),
        ),
        # Which claims this artifact can answer (repro.obs.report).
        "claims": list(POINT_CLAIMS),
    }
    if events_path is not None:
        result["events_written"] = observer.bus.write_jsonl(events_path)
    if traces_path is not None:
        result["traces_written"] = observer.traces.write_jsonl(traces_path)
    return result
