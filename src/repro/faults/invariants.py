"""The cross-layer invariant checker.

After every injected fault the chaos driver sweeps the whole deployment
and asserts the properties PAST's claims rest on:

* **leaf-set symmetry** (C3): if node A holds live node B in its leaf
  set, B must hold A -- unless B's corresponding side is full of
  strictly closer members (A genuinely does not belong).
* **leaf-set liveness** (C3/C6): once a failure has been *detected*
  (confirmed dead), no live node's leaf set may still reference it --
  the repair protocol must have scrubbed it.
* **routing-table liveness** (C3/C7): same scrub requirement for
  routing tables; lazy repair plus the detection sweep
  (:func:`repro.pastry.failure.purge_failed`) must leave no confirmed
  corpse in any table.
* **replication** (C6/storage): every tracked, unreclaimed file keeps
  at least ``k - confirmed_dead_holders`` live replicas -- replicas may
  only go missing through a detected death, never silently.
* **quota conservation** (C12): every registered client's card charge
  stays within bounds, and the total charged across clients equals the
  total ``size x k`` of their unreclaimed files (inserts charge,
  rejections refund, reclaims credit -- nothing leaks).

Undetected (silent) failures are deliberately tolerated: Pastry repairs
on *detection*, so the checker tracks a ``confirmed_dead`` set that the
driver updates as its failure-detection stand-ins run.

Violations are frozen records, emitted through the observability event
bus (:class:`~repro.obs.events.InvariantViolated`), so the chaos run's
JSONL artifact carries them and CI can fail on their presence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Set

from repro.obs.events import InvariantChecked, InvariantViolated

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.client import PastClient
    from repro.pastry.leaf_set import LeafSet


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributable and explainable."""

    invariant: str
    node_id: Optional[int]
    detail: str


def _admittable(leaf: "LeafSet", node_id: int) -> bool:
    """Would ``leaf.add(node_id)`` admit this node?  Read-only mirror of
    the leaf set's admission rule: a side that is not full always admits;
    a full side admits anything strictly closer than its furthest member.
    """
    size = leaf.space.size
    clockwise = (node_id - leaf.owner) % size
    larger = leaf.larger_side()
    if len(larger) < leaf.half:
        return True
    if clockwise < (larger[-1] - leaf.owner) % size:
        return True
    smaller = leaf.smaller_side()
    if len(smaller) < leaf.half:
        return True
    return (size - clockwise) < (leaf.owner - smaller[-1]) % size


class InvariantChecker:
    """Sweeps a deployment (or bare overlay) for invariant violations.

    *network* is either a :class:`~repro.core.network.PastNetwork`
    (storage invariants included) or a bare
    :class:`~repro.pastry.network.PastryNetwork` (overlay invariants
    only).  *clients* are the writer clients whose quota ledgers the
    conservation check covers -- register every client that inserts.
    """

    def __init__(self, network, clients: Iterable["PastClient"] = (), observer=None) -> None:
        if hasattr(network, "pastry"):
            self.past = network
            self.pastry = network.pastry
        else:
            self.past = None
            self.pastry = network
        self.clients = list(clients)
        self.obs = observer if observer is not None else self.pastry.obs
        self.confirmed_dead: Set[int] = set()
        # file_id -> confirmed holder deaths not yet compensated by
        # maintenance.  Tracked here because restore_replication rewrites
        # record.holders to the live survivors, erasing the very deaths
        # the replication allowance (k - confirmed dead) must account for.
        self._dead_holder_debt: dict = {}
        self.checks_run = 0
        self.violations: List[Violation] = []

    # ------------------------------------------------------------------ #
    # failure-detection bookkeeping
    # ------------------------------------------------------------------ #

    def confirm_dead(self, node_id: int) -> None:
        """The failure of *node_id* has been detected (repairs ran).

        Must be called while the registry still lists the node as a
        holder (i.e. before a maintenance pass rewrites the record), so
        the per-file death debt is charged correctly.
        """
        if node_id in self.confirmed_dead:
            return
        self.confirmed_dead.add(node_id)
        if self.past is not None:
            for record in self.past.files.values():
                if not record.reclaimed and node_id in record.holders:
                    file_id = record.certificate.file_id
                    self._dead_holder_debt[file_id] = (
                        self._dead_holder_debt.get(file_id, 0) + 1
                    )

    def confirm_alive(self, node_id: int) -> None:
        """*node_id* recovered; references to it are legitimate again.

        A revived node repays a file's death debt only while the registry
        still lists it as a holder: then its copy counts as a live
        replica again.  If maintenance already wrote the node off, the
        stale copy is invisible to the replica count, so the debt (and
        the loss it excuses) must stand.
        """
        self.confirmed_dead.discard(node_id)
        if self.past is not None:
            node = self.past.past_node(node_id)
            if node is None:
                return
            for file_id, debt in list(self._dead_holder_debt.items()):
                record = self.past.files.get(file_id)
                if (
                    debt > 0
                    and record is not None
                    and node_id in record.holders
                    and (file_id in node.store
                         or node.store.pointer(file_id) is not None)
                ):
                    self._dead_holder_debt[file_id] = debt - 1

    # ------------------------------------------------------------------ #
    # individual invariants
    # ------------------------------------------------------------------ #

    def check_leaf_symmetry(self) -> List[Violation]:
        found: List[Violation] = []
        nodes = self.pastry.nodes
        for node_id in self.pastry.live_ids():
            leaf = nodes[node_id].state.leaf_set
            for member in leaf.members():
                peer = nodes.get(member)
                if peer is None or not peer.alive:
                    continue
                peer_leaf = peer.state.leaf_set
                if node_id in peer_leaf:
                    continue
                if _admittable(peer_leaf, node_id):
                    found.append(Violation(
                        invariant="leaf-symmetry",
                        node_id=node_id,
                        detail=(
                            f"{self.pastry.space.format_id(member)} admits "
                            f"{self.pastry.space.format_id(node_id)} but does "
                            "not hold it"
                        ),
                    ))
        return found

    def check_leaf_liveness(self) -> List[Violation]:
        found: List[Violation] = []
        for node_id in self.pastry.live_ids():
            leaf = self.pastry.nodes[node_id].state.leaf_set
            for member in leaf.members():
                if member in self.confirmed_dead:
                    found.append(Violation(
                        invariant="leaf-liveness",
                        node_id=node_id,
                        detail=(
                            "leaf set still references confirmed-dead "
                            f"{self.pastry.space.format_id(member)}"
                        ),
                    ))
        return found

    def check_routing_liveness(self) -> List[Violation]:
        found: List[Violation] = []
        for node_id in self.pastry.live_ids():
            table = self.pastry.nodes[node_id].state.routing_table
            for entry in table.entries():
                if entry in self.confirmed_dead:
                    found.append(Violation(
                        invariant="routing-liveness",
                        node_id=node_id,
                        detail=(
                            "routing table still references confirmed-dead "
                            f"{self.pastry.space.format_id(entry)}"
                        ),
                    ))
        return found

    def check_replication(self) -> List[Violation]:
        found: List[Violation] = []
        if self.past is None:
            return found
        for record in self.past.files.values():
            if record.reclaimed:
                continue
            certificate = record.certificate
            k = certificate.replication_factor
            live = 0
            for holder_id in record.holders:
                if holder_id in self.confirmed_dead:
                    continue
                holder = self.past.past_node(holder_id)
                if (
                    holder is not None
                    and self.past.pastry.is_live(holder_id)
                    and (certificate.file_id in holder.store
                         or holder.store.pointer(certificate.file_id) is not None)
                ):
                    live += 1
            debt = self._dead_holder_debt.get(certificate.file_id, 0)
            if live >= k:
                # Fully replicated again: maintenance repaid the deaths.
                self._dead_holder_debt.pop(certificate.file_id, None)
                debt = 0
            required = k - debt
            if live < required:
                found.append(Violation(
                    invariant="replication",
                    node_id=None,
                    detail=(
                        f"file {certificate.file_id:x} has {live} live "
                        f"replicas, needs {required} "
                        f"(k={k}, confirmed holder deaths={debt})"
                    ),
                ))
        return found

    def check_quota(self) -> List[Violation]:
        found: List[Violation] = []
        if self.past is None or not self.clients:
            return found
        total_used = 0
        for client in self.clients:
            card = client.card
            used = card.quota_used
            total_used += used
            if used < 0 or used > card.usage_quota:
                found.append(Violation(
                    invariant="quota-conservation",
                    node_id=None,
                    detail=(
                        f"card charge {used} outside "
                        f"[0, {card.usage_quota}]"
                    ),
                ))
        total_charged = sum(
            record.certificate.size * record.certificate.replication_factor
            for record in self.past.files.values()
            if not record.reclaimed
        )
        if total_used != total_charged:
            found.append(Violation(
                invariant="quota-conservation",
                node_id=None,
                detail=(
                    f"cards charged {total_used} bytes but unreclaimed "
                    f"files account for {total_charged}"
                ),
            ))
        return found

    # ------------------------------------------------------------------ #
    # the full sweep
    # ------------------------------------------------------------------ #

    def check_all(self) -> List[Violation]:
        """Run every invariant; returns (and records, and emits) the
        violations found in this sweep."""
        found: List[Violation] = []
        found.extend(self.check_leaf_symmetry())
        found.extend(self.check_leaf_liveness())
        found.extend(self.check_routing_liveness())
        found.extend(self.check_replication())
        found.extend(self.check_quota())
        self.checks_run += 1
        self.violations.extend(found)
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("invariants.checks").increment()
            for violation in found:
                metrics.counter(
                    "invariants.violations", invariant=violation.invariant
                ).increment()
                self.obs.emit(InvariantViolated(
                    invariant=violation.invariant,
                    node_id=violation.node_id,
                    detail=violation.detail,
                ))
            self.obs.emit(InvariantChecked(
                checks=self.checks_run, violations=len(found)
            ))
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvariantChecker(checks={self.checks_run}, "
            f"violations={len(self.violations)}, "
            f"confirmed_dead={len(self.confirmed_dead)})"
        )
