"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is the single source of chaos for one run: every
fault it injects -- message drops, delays, duplicates, reorders, node
crashes/restarts, slow nodes, and the coordinated leaf-set-adjacent
failures that probe claim C6's boundary -- is drawn from named RNG
streams under one seed (:mod:`repro.sim.rng`), so two runs with the same
seed inject byte-identical chaos.

The plan is *consumed* by the layers it torments rather than driving
them itself:

* the live :class:`~repro.live.transport.InProcessTransport` asks
  :meth:`FaultPlan.message_fault` before delivering each message;
* latency models wrap themselves in
  :class:`~repro.netsim.latency.FaultyLatency`, which calls
  :meth:`FaultPlan.perturb_delay` (slow nodes, injected delay);
* the churn simulation (:mod:`repro.core.churn_sim`) applies the plan's
  scheduled :class:`FaultEvent` list against the Pastry network and its
  failure-detection machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.rng import RngRegistry, stable_seed

# Node-level fault kinds (the FaultEvent schedule).
CRASH = "crash"
RESTART = "restart"
ADJACENT_FAILURE = "adjacent-failure"
SLOW_NODE = "slow-node"

EVENT_KINDS = (CRASH, RESTART, ADJACENT_FAILURE, SLOW_NODE)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled node-level fault.

    *target* of None means "pick a victim at apply time" from the plan's
    ``targets`` stream -- the plan stays valid for any network size.  For
    :data:`ADJACENT_FAILURE`, *count* nodes with adjacent nodeIds fail
    simultaneously around a key drawn at apply time (the C6 precondition
    holds exactly when ``count >= floor(l/2)``).
    """

    time: float
    kind: str
    target: Optional[int] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.count < 1:
            raise ValueError("fault count must be >= 1")


@dataclass(frozen=True)
class MessageFault:
    """The fate of one message, as decided by the plan."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0  # extra one-way delay, latency-model units
    defer: float = 0.0  # reorder: deliver this much later, without
    #                     blocking the sender (overtakes happen)


class FaultPlan:
    """Seeded fault schedule plus per-message fault decisions."""

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_range: Tuple[float, float] = (0.5, 2.0),
        slow_factor: float = 4.0,
        events: Sequence[FaultEvent] = (),
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
            ("delay_rate", delay_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if delay_range[0] < 0 or delay_range[1] < delay_range[0]:
            raise ValueError("delay_range must be a non-negative (lo, hi)")
        if slow_factor < 1.0:
            raise ValueError("slow_factor below 1 would speed nodes up")
        self.seed = int(seed)
        self.rngs = RngRegistry(stable_seed("fault-plan", seed))
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.delay_rate = delay_rate
        self.delay_range = delay_range
        self.slow_factor = slow_factor
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.kind, e.target or 0, e.count))
        )
        self.slow_nodes: Set[int] = set()
        # Tallies of what actually fired (inspection / chaos report).
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def count(self, kind: str, amount: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + amount

    def set_slow(self, node_id: int) -> None:
        """Mark a node slow: all its traffic is stretched by
        ``slow_factor`` in any :class:`FaultyLatency`-wrapped model."""
        self.slow_nodes.add(node_id)

    def clear_slow(self, node_id: int) -> None:
        self.slow_nodes.discard(node_id)

    # ------------------------------------------------------------------ #
    # message-level faults
    # ------------------------------------------------------------------ #

    def message_fault(self, sender: int, destination: int) -> Optional[MessageFault]:
        """Decide this message's fate; None means deliver untouched.

        Draws come from the plan's ``messages`` stream, so a run that
        replays the same message sequence sees the same faults.
        """
        rng = self.rngs.stream("messages")
        drop = self.drop_rate > 0 and rng.random() < self.drop_rate
        if drop:
            self.count("message-drop")
            return MessageFault(drop=True)
        duplicate = self.duplicate_rate > 0 and rng.random() < self.duplicate_rate
        delay = 0.0
        if self.delay_rate > 0 and rng.random() < self.delay_rate:
            delay = rng.uniform(*self.delay_range)
        defer = 0.0
        if self.reorder_rate > 0 and rng.random() < self.reorder_rate:
            defer = rng.uniform(*self.delay_range)
        if not (duplicate or delay > 0 or defer > 0):
            return None
        if duplicate:
            self.count("message-duplicate")
        if delay > 0:
            self.count("message-delay")
        if defer > 0:
            self.count("message-reorder")
        return MessageFault(duplicate=duplicate, delay=delay, defer=defer)

    def perturb_delay(self, origin: int, destination: int, delay: float) -> float:
        """Latency-model hook: stretch delays touching slow nodes and
        add the planned extra delay share (see FaultyLatency)."""
        if origin in self.slow_nodes or destination in self.slow_nodes:
            delay *= self.slow_factor
        if self.delay_rate > 0:
            rng = self.rngs.stream("latency")
            if rng.random() < self.delay_rate:
                delay += rng.uniform(*self.delay_range)
                self.count("latency-delay")
        return delay

    # ------------------------------------------------------------------ #
    # apply-time target selection
    # ------------------------------------------------------------------ #

    def pick_target(self, candidates: Sequence[int]) -> Optional[int]:
        """Deterministically pick one victim among *candidates*."""
        if not candidates:
            return None
        rng = self.rngs.stream("targets")
        return candidates[rng.randrange(len(candidates))]

    def pick_anchor(self, id_bits: int) -> int:
        """A key around which an adjacent-failure group is centred."""
        return self.rngs.stream("targets").getrandbits(id_bits)

    def describe(self) -> dict:
        """Deterministic summary of the plan's configuration."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "reorder_rate": self.reorder_rate,
            "delay_rate": self.delay_rate,
            "slow_factor": self.slow_factor,
            "events": [
                {"time": e.time, "kind": e.kind, "target": e.target, "count": e.count}
                for e in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, events={len(self.events)}, "
            f"drop={self.drop_rate}, injected={sum(self.injected.values())})"
        )


def build_schedule(
    seed: int,
    duration: float,
    half_leaf: int,
    crashes: int = 4,
    restarts: int = 2,
    adjacent_boundary: int = 1,
    adjacent_safe: int = 1,
    slow: int = 1,
) -> List[FaultEvent]:
    """A deterministic chaos schedule spread over *duration*.

    Includes *adjacent_boundary* coordinated failures of exactly
    ``half_leaf`` adjacent nodeIds (the C6 boundary: loss is permitted)
    and *adjacent_safe* of ``half_leaf - 1`` (the complement: delivery
    must survive).  Crash/restart/slow events fill in around them.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if half_leaf < 2:
        raise ValueError("half_leaf must be >= 2 for a meaningful boundary")
    rng = RngRegistry(stable_seed("fault-schedule", seed)).stream("times")
    events: List[FaultEvent] = []

    def when() -> float:
        # Keep clear of t=0 (build) and the very end (final checks).
        return round(rng.uniform(0.05, 0.9) * duration, 3)

    for _ in range(crashes):
        events.append(FaultEvent(time=when(), kind=CRASH))
    for _ in range(restarts):
        events.append(FaultEvent(time=when(), kind=RESTART))
    for _ in range(adjacent_boundary):
        events.append(FaultEvent(time=when(), kind=ADJACENT_FAILURE, count=half_leaf))
    for _ in range(adjacent_safe):
        events.append(
            FaultEvent(time=when(), kind=ADJACENT_FAILURE, count=half_leaf - 1)
        )
    for _ in range(slow):
        events.append(FaultEvent(time=when(), kind=SLOW_NODE))
    events.sort(key=lambda e: (e.time, e.kind, e.count))
    return events
