"""A PAST node: Pastry node + storage + cache + smartcard.

The node implements the Pastry :class:`~repro.pastry.node.Application`
hooks.  ``on_forward`` lets a lookup be satisfied by the first node along
the route that holds the file (replica, diverted replica via pointer, or
cached copy) -- the mechanism behind the nearest-replica locality result.
``on_deliver`` runs the root-node logic: k-way replication for inserts
(with replica diversion when a chosen node is too full) and fan-out of
reclaims to the replica holders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from repro.core.cache import Cache, make_cache
from repro.core.certificates import FileCertificate, StoreReceipt
from repro.core.files import FileData
from repro.core.messages import (
    InsertOutcome,
    InsertRequest,
    LookupRequest,
    LookupResponse,
    ReclaimOutcome,
    ReclaimRequest,
)
from repro.core.smartcard import SmartCard
from repro.core.storage import FileStore
from repro.core.storage_manager import StoragePolicy, choose_diversion_target
from repro.obs.events import (
    CacheHit,
    InsertCompleted,
    InsertRejected,
    ReclaimCompleted,
    ReplicaDiverted,
)
from repro.pastry.node import Application, PastryNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import PastNetwork


class PastNode(Application):
    """One PAST node (storage node + client access point)."""

    def __init__(
        self,
        network: "PastNetwork",
        pastry_node: PastryNode,
        card: SmartCard,
        capacity: int,
        policy: StoragePolicy,
        cache_policy: str = "gds",
    ) -> None:
        self.network = network
        self.pastry = pastry_node
        self.card = card
        self.store = FileStore(capacity)
        self.cache: Cache = make_cache(cache_policy)
        self.policy = policy
        # A cheating node advertises storage it silently discards content
        # from; random audits are meant to expose it (section 2.1).
        self.cheats_storage = False
        # Query-load accounting (who actually serves lookups -- the
        # quantity caching is supposed to balance, section 2.3).
        self.lookups_served = 0
        self.bytes_served = 0
        pastry_node.application = self
        # The network's observer (the null observer by default); the
        # store reports byte-level gauges through it too.
        self.obs = network.obs
        if self.obs.enabled:
            self.store.bind_observer(self.obs)

    @property
    def node_id(self) -> int:
        return self.pastry.node_id

    # ------------------------------------------------------------------ #
    # Pastry application hooks
    # ------------------------------------------------------------------ #

    def on_forward(self, node: PastryNode, key: int, message: object):
        """Satisfy lookups en route; other requests pass through."""
        if isinstance(message, LookupRequest):
            return self._serve_lookup(message.file_id, chase_pointer=False)
        return None

    def on_deliver(self, node: PastryNode, key: int, message: object):
        """Root-node logic for each request type."""
        if isinstance(message, InsertRequest):
            return self._insert_as_root(message)
        if isinstance(message, LookupRequest):
            return self._serve_lookup(message.file_id, chase_pointer=True)
        if isinstance(message, ReclaimRequest):
            return self._reclaim_as_root(message)
        return None

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def _serve_lookup(self, file_id: int, chase_pointer: bool) -> Optional[LookupResponse]:
        """Serve from a local replica or cached copy; at the root, also
        chase a diversion pointer to the actual holder."""
        replica = self.store.get(file_id)
        if replica is not None and replica.data is not None:
            self.lookups_served += 1
            self.bytes_served += replica.certificate.size
            if self.obs.enabled:
                self.obs.metrics.counter("lookup.served", source="replica").increment()
            return LookupResponse(
                certificate=replica.certificate,
                data=replica.data,
                serving_node=self.node_id,
                source="replica",
            )
        entry = self.cache.get(file_id)
        if entry is not None and entry.data is not None:
            self.lookups_served += 1
            self.bytes_served += entry.certificate.size
            if self.obs.enabled:
                self.obs.metrics.counter("lookup.served", source="cache").increment()
                self.obs.metrics.counter("cache.hits").increment()
                self.obs.emit(
                    CacheHit(
                        file_id=file_id,
                        node_id=self.node_id,
                        size=entry.certificate.size,
                    )
                )
            return LookupResponse(
                certificate=entry.certificate,
                data=entry.data,
                serving_node=self.node_id,
                source="cache",
            )
        if chase_pointer:
            holder_id = self.store.pointer(file_id)
            if holder_id is not None:
                holder = self.network.past_node(holder_id)
                if holder is not None and holder.pastry.alive:
                    self.network.pastry.count_message("lookup")  # indirection hop
                    held = holder.store.get(file_id)
                    if held is not None and held.data is not None:
                        holder.lookups_served += 1
                        holder.bytes_served += held.certificate.size
                        if self.obs.enabled:
                            self.obs.metrics.counter(
                                "lookup.served", source="diverted"
                            ).increment()
                        return LookupResponse(
                            certificate=held.certificate,
                            data=held.data,
                            serving_node=holder_id,
                            source="diverted",
                        )
        return None

    # ------------------------------------------------------------------ #
    # insert (root side)
    # ------------------------------------------------------------------ #

    def _insert_as_root(self, request: InsertRequest) -> InsertOutcome:
        certificate = request.certificate
        key = certificate.storage_key()
        k = certificate.replication_factor
        try:
            replica_ids = self.pastry.state.leaf_set.replica_candidates(key, k)
        except ValueError as exc:
            return self._reject_insert(certificate, "bad-k", f"bad-k: {exc}")
        if len(replica_ids) < k:
            return self._reject_insert(certificate, "too-few-nodes", "too-few-nodes")

        receipts: List[StoreReceipt] = []
        stored_on: List["PastNode"] = []
        diverted = 0
        replica_set: Set[int] = set(replica_ids)
        for replica_id in replica_ids:
            target = self.network.past_node(replica_id)
            if target is None or not target.pastry.alive:
                self._rollback(certificate.file_id, stored_on)
                return self._reject_insert(
                    certificate, "replica-node-dead", "replica-node-dead"
                )
            if target is not self:
                self.network.pastry.count_message("insert")  # store request
            receipt, was_diverted = target.handle_store(request, replica_set)
            if receipt is None:
                self._rollback(certificate.file_id, stored_on)
                return self._reject_insert(certificate, "no-space", "no-space")
            receipts.append(receipt)
            stored_on.append(target)
            diverted += int(was_diverted)
        self.network.record_insert(certificate, replica_ids)
        if self.obs.enabled:
            self.obs.metrics.counter("storage.insert").increment()
            self.obs.emit(
                InsertCompleted(
                    file_id=certificate.file_id,
                    size=certificate.size,
                    replicas=len(receipts),
                    diverted=diverted,
                )
            )
        return InsertOutcome(success=True, receipts=receipts, diverted_replicas=diverted)

    def _reject_insert(
        self, certificate: FileCertificate, reason_label: str, reason: str
    ) -> InsertOutcome:
        """Record one rejected insert attempt (*reason_label* is the short
        metric label; *reason* is the full outcome message)."""
        if self.obs.enabled:
            self.obs.metrics.counter("storage.reject", reason=reason_label).increment()
            self.obs.emit(
                InsertRejected(
                    file_id=certificate.file_id,
                    size=certificate.size,
                    reason=reason_label,
                )
            )
        return InsertOutcome(success=False, reason=reason)

    def _rollback(self, file_id: int, stored_on: List["PastNode"]) -> None:
        """Abort a partially replicated insert: every node that already
        stored a replica (or pointer) releases it."""
        for node in stored_on:
            node.release_replica(file_id)

    def handle_store(self, request: InsertRequest, replica_set: Set[int]):
        """Store one replica of the file (storage-node side).

        Returns ``(receipt, was_diverted)``; ``(None, False)`` on
        rejection.  Verification failures also reject: the storing node
        checks the whole chain before committing any space.
        """
        certificate = request.certificate
        if not self._verify_insert(request):
            return None, False
        file_id = certificate.file_id
        if file_id in self.store or self.store.pointer(file_id) is not None:
            return None, False  # immutability: a fileId is stored once
        size = certificate.size
        if self.policy.accepts(self.store, size, diverted=False):
            self._make_room(size)
            data = None if self.cheats_storage else request.data
            self.store.store(certificate, data, diverted=False)
            return self.card.issue_store_receipt(certificate), False
        if not self.policy.enable_replica_diversion:
            return None, False
        # Replica diversion: find a leaf-set node outside the replica set.
        target = choose_diversion_target(
            self, file_id, size, exclude=replica_set | {self.node_id}, policy=self.policy
        )
        if target is None:
            return None, False
        self.network.pastry.count_message("insert", 2)  # divert request + ack
        target._make_room(size)
        data = None if target.cheats_storage else request.data
        target.store.store(certificate, data, diverted=True)
        self.store.install_pointer(file_id, target.node_id)
        if self.obs.enabled:
            self.obs.metrics.counter("storage.diverted").increment()
            self.obs.emit(
                ReplicaDiverted(
                    file_id=file_id,
                    primary_id=self.node_id,
                    target_id=target.node_id,
                    size=size,
                )
            )
        # The receipt still comes from the *primary* node -- the client
        # checks for k receipts from nodes with adjacent nodeIds.
        return self.card.issue_store_receipt(certificate, diverted=True), True

    def _verify_insert(self, request: InsertRequest) -> bool:
        """The storing-node checks of section 2.1: certificate signature,
        authentic fileId, uncorrupted content, certified owner card."""
        certificate = request.certificate
        if not certificate.verify():
            return False
        if request.data.size != certificate.size:
            return False
        if request.data.content_hash() != certificate.content_hash:
            return False
        card_certificate = request.owner_card_certificate
        if self.network.require_card_certification:
            if card_certificate is None:
                return False
            if not card_certificate.verify(
                self.network.broker.public_key, certificate.owner, now=self.network.now()
            ):
                return False
        return True

    def _make_room(self, size: int) -> None:
        """Evict cached copies if the physical space they occupy is needed
        for a real replica (cache lives in the unused portion only)."""
        overflow = self.cache.used + size - self.store.free_space
        if overflow > 0:
            self.cache.evict_bytes(overflow)

    def release_replica(self, file_id: int) -> int:
        """Release a replica or diversion pointer; returns bytes freed
        locally.  Used by rollback and reclaim."""
        holder_id = self.store.pointer(file_id)
        if holder_id is not None:
            self.store.remove_pointer(file_id)
            holder = self.network.past_node(holder_id)
            if holder is not None:
                self.network.pastry.count_message("reclaim")
                holder.store.remove(file_id)
            return 0
        return self.store.remove(file_id)

    # ------------------------------------------------------------------ #
    # reclaim (root side)
    # ------------------------------------------------------------------ #

    def _reclaim_as_root(self, request: ReclaimRequest) -> ReclaimOutcome:
        certificate = request.file_certificate
        reclaim = request.reclaim_certificate
        key = certificate.storage_key()
        k = certificate.replication_factor
        try:
            replica_ids = self.pastry.state.leaf_set.replica_candidates(key, k)
        except ValueError:
            replica_ids = [self.node_id]
        outcome = ReclaimOutcome()
        for replica_id in replica_ids:
            target = self.network.past_node(replica_id)
            if target is None or not target.pastry.alive:
                continue
            if target is not self:
                self.network.pastry.count_message("reclaim")
            receipt = target.handle_reclaim(request)
            if receipt is not None:
                outcome.receipts.append(receipt)
        if not outcome.receipts:
            # Distinguish "not stored here" from "owner mismatch".
            stored = self.store.get(certificate.file_id)
            if stored is not None and not reclaim.verify_against(stored.certificate):
                outcome.denied = True
                outcome.reason = "owner-mismatch"
            else:
                outcome.reason = "not-found"
        self.network.record_reclaim(certificate.file_id)
        if self.obs.enabled:
            self.obs.metrics.counter("storage.reclaim").increment()
            self.obs.emit(
                ReclaimCompleted(
                    file_id=certificate.file_id, receipts=len(outcome.receipts)
                )
            )
        return outcome

    def handle_reclaim(self, request: ReclaimRequest):
        """Release this node's replica if the reclaim is authorized.

        The node verifies that the reclaim certificate's signer matches
        the signer of the file certificate *it stored* (or, if the local
        copy is a pointer, the certificate included in the request).
        """
        file_id = request.reclaim_certificate.file_id
        stored = self.store.get(file_id)
        reference = stored.certificate if stored is not None else request.file_certificate
        if not request.reclaim_certificate.verify_against(reference):
            return None
        if stored is None and self.store.pointer(file_id) is None:
            return None
        freed = request.file_certificate.size
        self.release_replica(file_id)
        return self.card.issue_reclaim_receipt(request.reclaim_certificate, freed)

    # ------------------------------------------------------------------ #
    # caching and audits
    # ------------------------------------------------------------------ #

    def offer_to_cache(self, certificate: FileCertificate, data: Optional[FileData]) -> bool:
        """Offer a passing file for caching in the unused storage."""
        if data is None:
            return False
        if certificate.file_id in self.store:
            return False
        budget = self.store.free_space
        return self.cache.admit(certificate, data, budget)

    def audit_challenge(self, file_id: int, nonce: int) -> Optional[int]:
        """Answer a random audit: hash of (content, nonce) -- producible
        only if the node actually holds the content (section 2.1)."""
        from repro.crypto.hashing import sha1_id

        replica = self.store.get(file_id)
        if replica is None or replica.data is None:
            return None
        return sha1_id(
            replica.data.prefix_bytes(4096),
            nonce.to_bytes(16, "big"),
            bits=160,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PastNode({self.network.pastry.space.format_id(self.node_id)}, "
            f"store={self.store.used}/{self.store.capacity}, cache={self.cache.used})"
        )
