"""Exception hierarchy for the PAST storage layer.

Every failure mode a client can observe is a distinct exception type, so
applications (and tests) can react precisely.  All inherit from
:class:`PastError`.
"""

from __future__ import annotations


class PastError(Exception):
    """Base class for all PAST storage-layer errors."""


class QuotaExceededError(PastError):
    """The user's smartcard quota cannot cover size x replication factor."""


class DuplicateFileError(PastError):
    """A file with this fileId already exists; files are immutable and a
    fileId cannot be inserted twice (section 1)."""


class InsertRejectedError(PastError):
    """The system could not create k replicas even after replica and file
    diversion; the insert is rejected (section 2.3)."""


class LookupFailedError(PastError):
    """No live node holding the file could be reached."""


class DegradedError(PastError):
    """An operation exhausted its retry budget and degraded instead of
    hanging: the caller gets a typed failure carrying what was attempted,
    so it can surface the outage or fall back (fault-injection layer).

    ``history`` is the full attempt record (a tuple of
    :class:`~repro.faults.policy.AttemptRecord`): per attempt, the span
    id inside the operation's trace, the backoff slept before it, and
    whether/under which seed it rerouted.  ``trace_id`` names the trace
    those spans belong to, so a degraded live operation can be
    reconstructed hop by hop from the trace export."""

    def __init__(
        self,
        operation: str,
        attempts: int,
        detail: str = "",
        history: tuple = (),
        trace_id: str = "",
    ) -> None:
        self.operation = operation
        self.attempts = attempts
        self.detail = detail
        self.history = tuple(history)
        self.trace_id = trace_id
        message = f"{operation} degraded after {attempts} attempt(s)"
        if detail:
            message += f": {detail}"
        if trace_id:
            message += f" [trace {trace_id}]"
        if self.history:
            message += " (" + "; ".join(
                record.describe() for record in self.history
            ) + ")"
        super().__init__(message)


class ReclaimDeniedError(PastError):
    """The reclaim certificate's signer does not match the file's owner;
    only the owner may reclaim a file's storage (section 2.1)."""


class CertificateError(PastError):
    """A certificate or receipt failed verification (bad signature,
    mismatched field, or uncertified smartcard)."""


class AuditFailedError(PastError):
    """A storage node failed a random audit: it could not produce a file
    it is supposed to store (section 2.1, storage quotas)."""
