"""PAST: the storage utility itself (the paper's primary contribution).

Layered on the Pastry substrate:

* identifiers and certificates (sections 1-2): 160-bit fileIds from
  hash(name, owner key, salt); signed file certificates, store receipts,
  reclaim certificates and receipts;
* smartcards and brokers (section 2.1): quota bookkeeping, certified
  nodeIds, unforgeable certificates, random storage audits;
* storage management (section 2.3 / SOSP'01): per-node stores with an
  acceptance policy, replica diversion within the leaf set, file
  diversion by re-salting, and GreedyDual-Size caching along routes;
* the node and network glue: insert / lookup / reclaim with k-way
  replication on the nodes whose nodeIds are numerically closest to the
  fileId, lookups satisfied by the first replica or cached copy on the
  route.
"""

from repro.core.broker import Broker
from repro.core.certificates import (
    FileCertificate,
    ReclaimCertificate,
    ReclaimReceipt,
    StoreReceipt,
)
from repro.core.client import PastClient
from repro.core.errors import (
    CertificateError,
    DuplicateFileError,
    InsertRejectedError,
    LookupFailedError,
    PastError,
    QuotaExceededError,
    ReclaimDeniedError,
)
from repro.core.files import FileData, SyntheticData
from repro.core.ids import make_file_id, storage_key
from repro.core.network import PastNetwork
from repro.core.node import PastNode
from repro.core.smartcard import SmartCard
from repro.core.storage_manager import StoragePolicy

__all__ = [
    "Broker",
    "FileCertificate",
    "StoreReceipt",
    "ReclaimCertificate",
    "ReclaimReceipt",
    "PastClient",
    "PastError",
    "QuotaExceededError",
    "InsertRejectedError",
    "LookupFailedError",
    "DuplicateFileError",
    "ReclaimDeniedError",
    "CertificateError",
    "FileData",
    "SyntheticData",
    "make_file_id",
    "storage_key",
    "PastNetwork",
    "PastNode",
    "SmartCard",
    "StoragePolicy",
]
