"""File content representations.

Storage experiments insert hundreds of thousands of files whose *sizes*
matter but whose *bytes* do not.  Materialising gigabytes of synthetic
content would make the simulation memory-bound, so content is an
abstraction with two implementations:

* :class:`RealData` -- actual bytes; used by the examples and the
  security tests (where content hashes must reflect real content);
* :class:`SyntheticData` -- a (seed, size) pair whose content hash is
  computed from the pair.  Behaviourally identical for every storage
  management experiment: sizes, hashes, and certificates all work; only
  the bytes are virtual.  ``to_bytes`` can still materialise content
  deterministically when a test wants to round-trip it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto.hashing import FILE_ID_BITS, sha1_id


class FileData(ABC):
    """Abstract file content: has a size and a content hash."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Content length in bytes."""

    @abstractmethod
    def content_hash(self) -> int:
        """The 160-bit cryptographic hash carried in the file certificate."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Materialise the content (deterministic)."""

    def prefix_bytes(self, n: int) -> bytes:
        """The first *n* bytes of the content, materialising no more than
        necessary (audit challenges hash a bounded prefix so that auditing
        a multi-gigabyte synthetic file stays cheap)."""
        return self.to_bytes()[:n]


class RealData(FileData):
    """Content backed by actual bytes."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)

    @property
    def size(self) -> int:
        return len(self._data)

    def content_hash(self) -> int:
        return sha1_id(self._data, bits=FILE_ID_BITS)

    def to_bytes(self) -> bytes:
        return self._data

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RealData) and other._data == self._data

    def __hash__(self) -> int:
        return hash(self._data)

    def __repr__(self) -> str:
        return f"RealData({self.size} bytes)"


class SyntheticData(FileData):
    """Virtual content identified by (seed, size).

    Two synthetic files with the same seed and size are the same content;
    different seeds give different hashes with overwhelming probability,
    exactly like real content under a cryptographic hash.
    """

    def __init__(self, seed: int, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.seed = seed
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    def content_hash(self) -> int:
        return sha1_id(
            b"synthetic",
            self.seed.to_bytes(16, "big", signed=False),
            self._size.to_bytes(8, "big"),
            bits=FILE_ID_BITS,
        )

    def to_bytes(self) -> bytes:
        # Deterministic expansion: repeat the seed's digest to the length.
        return self.prefix_bytes(self._size)

    def prefix_bytes(self, n: int) -> bytes:
        import hashlib

        n = min(n, self._size)
        out = bytearray()
        counter = 0
        while len(out) < n:
            block = hashlib.sha256(
                self.seed.to_bytes(16, "big") + counter.to_bytes(8, "big")
            ).digest()
            out.extend(block)
            counter += 1
        return bytes(out[:n])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SyntheticData)
            and other.seed == self.seed
            and other._size == self._size
        )

    def __hash__(self) -> int:
        return hash((self.seed, self._size))

    def __repr__(self) -> str:
        return f"SyntheticData(seed={self.seed}, size={self._size})"
