"""Storage management: acceptance policy and diversion (section 2.3).

The statistical assignment of files to nodes balances the *number* of
files per node, but file sizes and node capacities are heavily skewed, so
explicit load balancing is needed for the system to behave gracefully as
global utilization approaches 100%.  Three mechanisms (from the SOSP'01
companion paper):

* **Acceptance policy.**  A node rejects a replica when
  ``size / free_space > t`` -- large files are refused by nearly-full
  nodes while small files still fit.  The threshold is ``t_pri`` for
  primary replicas and a stricter ``t_div`` for diverted ones (a diverted
  replica also costs an indirection, so it must clear a higher bar).
* **Replica diversion.**  A node among the k closest that cannot accept
  a replica asks a node in its *leaf set* -- one that is not itself among
  the k closest and has the most free space -- to hold the replica, and
  keeps a pointer.  This balances storage within a leaf set.
* **File diversion.**  If the k-closest neighbourhood cannot accommodate
  the file at all, the whole insert aborts, the client generates a fresh
  salt, and the file is diverted to a different region of the id space.
  After ``max_file_diversions`` failed attempts the insert is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core.storage import FileStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import PastNode


@dataclass(frozen=True)
class StoragePolicy:
    """Tunable knobs of the storage-management scheme.

    Defaults follow the SOSP'01 evaluation: t_pri = 0.1, t_div = 0.05,
    up to 3 file diversions (4 attempts total), diversion enabled.
    Setting both ``enable_*`` flags False gives the no-diversion baseline
    of benchmark E9.
    """

    t_pri: float = 0.1
    t_div: float = 0.05
    max_file_diversions: int = 3
    enable_replica_diversion: bool = True
    enable_file_diversion: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.t_pri <= 1.0:
            raise ValueError("t_pri must be in (0, 1]")
        if not 0.0 < self.t_div <= 1.0:
            raise ValueError("t_div must be in (0, 1]")
        if self.t_div > self.t_pri:
            raise ValueError(
                "t_div must not exceed t_pri: diverted replicas carry an "
                "indirection cost and must clear a stricter bar"
            )
        if self.max_file_diversions < 0:
            raise ValueError("max_file_diversions must be non-negative")

    def accepts(self, store: FileStore, size: int, diverted: bool) -> bool:
        """The SD/FN > t acceptance test."""
        free = store.free_space
        if size > free:
            return False
        if free == 0:
            return False
        threshold = self.t_div if diverted else self.t_pri
        return size / free <= threshold


def choose_diversion_target(
    node: "PastNode",
    file_id: int,
    size: int,
    exclude: Iterable[int],
    policy: StoragePolicy,
) -> Optional["PastNode"]:
    """Pick the leaf-set node to divert a replica to.

    Candidates: the diverting node's leaf set, minus the k closest nodes
    (they hold or were asked to hold their own replicas) and minus any
    node already involved.  Among candidates that would accept under
    ``t_div``, the one with most free space wins -- diverting to the
    emptiest neighbour is what balances utilization across the leaf set.
    """
    excluded = set(exclude)
    best: Optional["PastNode"] = None
    best_free = -1
    for member_id in node.pastry.state.leaf_set.members():
        if member_id in excluded:
            continue
        member = node.network.past_node(member_id)
        if member is None or not member.pastry.alive:
            continue
        if file_id in member.store or member.store.pointer(file_id) is not None:
            continue
        if not policy.accepts(member.store, size, diverted=True):
            continue
        if member.store.free_space > best_free:
            best_free = member.store.free_space
            best = member
    return best


def summarize_utilization(nodes: Iterable["PastNode"]) -> dict:
    """Global storage statistics across *nodes* (benchmark E9 reporting)."""
    total_capacity = 0
    total_used = 0
    per_node: List[float] = []
    for node in nodes:
        total_capacity += node.store.capacity
        total_used += node.store.used
        if node.store.capacity > 0:
            per_node.append(node.store.utilization)
    return {
        "total_capacity": total_capacity,
        "total_used": total_used,
        "global_utilization": (total_used / total_capacity) if total_capacity else 0.0,
        "per_node_min": min(per_node) if per_node else 0.0,
        "per_node_max": max(per_node) if per_node else 0.0,
        "node_count": len(per_node),
    }
