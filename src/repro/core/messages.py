"""Application-level messages routed through Pastry by PAST.

Three request types (insert, lookup, reclaim) and their responses.  The
requests travel through ``PastryNetwork.route`` keyed by the 128-bit
storage key of the fileId; responses are returned as route values (the
simulation's stand-in for the reply path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.certificates import (
    FileCertificate,
    ReclaimCertificate,
    ReclaimReceipt,
    StoreReceipt,
)
from repro.core.files import FileData
from repro.core.smartcard import CardCertificate


@dataclass
class InsertRequest:
    """Routed to the root of the fileId; carries everything the storing
    nodes need to verify authorization end-to-end."""

    certificate: FileCertificate
    data: FileData
    owner_card_certificate: Optional[CardCertificate]


@dataclass
class InsertOutcome:
    """Returned by the root after attempting k-way replication."""

    success: bool
    reason: str = "stored"
    receipts: List[StoreReceipt] = field(default_factory=list)
    # Diagnostics for the storage-management experiments:
    diverted_replicas: int = 0


@dataclass
class LookupRequest:
    """Routed towards the fileId's root; satisfied by the *first* node on
    the route holding a replica or cached copy (locality, section 2.2)."""

    file_id: int


@dataclass
class LookupResponse:
    """A successful lookup: the file plus its certificate (which lets the
    client verify content authenticity), and provenance diagnostics."""

    certificate: FileCertificate
    data: FileData
    serving_node: int
    source: str  # "replica" | "diverted" | "cache"


@dataclass
class ReclaimRequest:
    """Routed to the fileId's root; the owner includes the file
    certificate so storage nodes can check the signer match even if their
    local copy was lost."""

    reclaim_certificate: ReclaimCertificate
    file_certificate: FileCertificate


@dataclass
class ReclaimOutcome:
    """Receipts from each node that released storage."""

    receipts: List[ReclaimReceipt] = field(default_factory=list)
    denied: bool = False
    reason: str = ""
