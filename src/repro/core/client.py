"""The client side of PAST: insert, lookup, reclaim.

A client is a user holding a smartcard, attached to an access node (any
PAST node can serve as one).  The client performs the user-side halves of
the protocols:

* **insert** -- obtain a file certificate from the card (debiting the
  quota), route the insert to the fileId's root, and *verify the k store
  receipts* (distinct storing nodes, signatures valid, consistent with
  the certificate).  On failure, re-salt and retry: this is file
  diversion (section 2.3).
* **lookup** -- route towards the fileId, verify the returned certificate
  and content hash (content authenticity, section 2.1), and let nodes on
  the route cache the file on its way back.
* **reclaim** -- obtain a reclaim certificate, route it, and credit the
  returned reclaim receipts against the quota.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.core.certificates import FileCertificate, StoreReceipt
from repro.core.errors import (
    CertificateError,
    InsertRejectedError,
    LookupFailedError,
    ReclaimDeniedError,
)
from repro.core.files import FileData
from repro.core.ids import make_salt, storage_key
from repro.core.messages import (
    InsertOutcome,
    InsertRequest,
    LookupRequest,
    LookupResponse,
    ReclaimOutcome,
    ReclaimRequest,
)
from repro.core.smartcard import SmartCard
from repro.pastry.routing import RandomizedRouting, ReplicaAwareRouting

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import PastNetwork


@dataclass
class FileHandle:
    """What an owner keeps after a successful insert: enough to look the
    file up, share it (distribute the fileId), and reclaim it later."""

    file_id: int
    certificate: FileCertificate
    receipts: List[StoreReceipt] = field(default_factory=list)
    attempts: int = 1  # 1 = no file diversion was needed


@dataclass
class LookupResult:
    """A verified lookup with routing diagnostics."""

    data: FileData
    response: LookupResponse
    hops: int
    path: List[int]


class PastClient:
    """One PAST user."""

    def __init__(self, network: "PastNetwork", card: SmartCard, access_node: int) -> None:
        self.network = network
        self.card = card
        self.access_node = access_node
        # How many randomized re-routes a failed lookup attempts before
        # giving up (section 2.2, fault tolerance).
        self.lookup_retries = 8
        self._rng = network.rngs.stream(f"client-{card.node_id():032x}")

    # ------------------------------------------------------------------ #
    # insert
    # ------------------------------------------------------------------ #

    def insert(self, name: str, data: FileData, replication_factor: int = 3) -> FileHandle:
        """Insert a file, retrying with fresh salts (file diversion) up to
        the policy limit.  Raises :class:`QuotaExceededError` if the card
        refuses, :class:`InsertRejectedError` if the system cannot place
        k replicas anywhere, :class:`DuplicateFileError` on a fileId
        collision (re-inserting identical (name, owner, salt))."""
        policy = self.network.policy
        max_attempts = (
            1 + policy.max_file_diversions if policy.enable_file_diversion else 1
        )
        self.network.inserts_attempted += 1
        last_reason = "unknown"
        for attempt in range(1, max_attempts + 1):
            salt = make_salt(self._rng)
            certificate = self.card.issue_file_certificate(
                name,
                data,
                replication_factor=replication_factor,
                salt=salt,
                insertion_date=self.network.now(),
            )
            request = InsertRequest(
                certificate=certificate,
                data=data,
                owner_card_certificate=self.card.certificate,
            )
            result = self.network.pastry.route(
                certificate.storage_key(),
                origin=self.access_node,
                message=request,
                category="insert",
            )
            outcome = result.value if result.delivered else None
            if isinstance(outcome, InsertOutcome) and outcome.success:
                self._verify_receipts(certificate, outcome.receipts)
                self.network.attach_card_certificate(
                    certificate.file_id, self.card.certificate
                )
                self._cache_along_path(result.path, certificate, data)
                return FileHandle(
                    file_id=certificate.file_id,
                    certificate=certificate,
                    receipts=outcome.receipts,
                    attempts=attempt,
                )
            # Failed attempt: the card refunds the charge, and unless the
            # failure is permanent we re-salt and divert the file.
            self.card.refund_failed_insert(certificate)
            last_reason = outcome.reason if isinstance(outcome, InsertOutcome) else (
                result.reason if not result.delivered else "no-root-response"
            )
        self.network.inserts_rejected += 1
        raise InsertRejectedError(
            f"insert of {data.size} bytes rejected after {max_attempts} attempt(s): {last_reason}"
        )

    def _verify_receipts(self, certificate: FileCertificate, receipts: List[StoreReceipt]) -> None:
        """The client-side check that k diverse replicas really exist."""
        k = certificate.replication_factor
        if len(receipts) != k:
            raise CertificateError(f"expected {k} store receipts, got {len(receipts)}")
        node_ids = set()
        for receipt in receipts:
            if not receipt.verify(certificate):
                raise CertificateError("store receipt failed verification")
            node_ids.add(receipt.node_id)
        if len(node_ids) != k:
            raise CertificateError("store receipts do not come from k distinct nodes")

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def lookup(self, file_id: int, replica_hint: Optional[int] = None) -> FileData:
        """Retrieve and verify a file's content.

        *replica_hint*, when the client knows the file's replication
        factor k, enables the nearest-among-k routing heuristic (claim
        C5): the final hops steer towards the proximally nearest replica
        instead of the numerically closest node.
        """
        return self.lookup_verbose(file_id, replica_hint).data

    def lookup_verbose(self, file_id: int, replica_hint: Optional[int] = None) -> LookupResult:
        """Retrieve a file with provenance and routing diagnostics."""
        policy = ReplicaAwareRouting(replica_hint) if replica_hint else None
        result = self.network.pastry.route(
            storage_key(file_id),
            origin=self.access_node,
            message=LookupRequest(file_id=file_id),
            category="lookup",
            policy=policy,
        )
        response = result.value if result.delivered else None
        if not isinstance(response, LookupResponse) and policy is not None:
            # The heuristic aimed at an estimated replica holder that did
            # not have the file (stale estimate); retry with plain routing
            # to the root before declaring failure.
            result = self.network.pastry.route(
                storage_key(file_id),
                origin=self.access_node,
                message=LookupRequest(file_id=file_id),
                category="lookup",
            )
            response = result.value if result.delivered else None
        if not isinstance(response, LookupResponse):
            # Section 2.2, fault tolerance: "the query may have to be
            # repeated several times by the client, until a route is
            # chosen that avoids the bad node."  Each retry varies the
            # route two ways: a fresh access node (any PAST node serves
            # as one) and alternating policies -- the nearest-among-k
            # heuristic steers the final hop to a *different* replica
            # holder from a different vantage point, and randomized
            # routing explores alternative intermediate hops.  A replica
            # holder encountered anywhere en route answers even when the
            # root itself is malicious or unresponsive.
            k_estimate = replica_hint if replica_hint else 3
            live = self.network.pastry.live_ids()
            for attempt in range(self.lookup_retries):
                origin = self._rng.choice(live)
                if attempt % 2 == 0:
                    retry_policy = ReplicaAwareRouting(k_estimate)
                else:
                    retry_policy = RandomizedRouting(bias=min(0.3 + 0.05 * attempt, 0.6))
                result = self.network.pastry.route(
                    storage_key(file_id),
                    origin=origin,
                    message=LookupRequest(file_id=file_id),
                    category="lookup",
                    policy=retry_policy,
                    rng=self._rng,
                )
                response = result.value if result.delivered else None
                if isinstance(response, LookupResponse):
                    break
        if not isinstance(response, LookupResponse):
            raise LookupFailedError(f"file {file_id:040x} not found ({result.reason})")
        self._verify_lookup(file_id, response)
        obs = self.network.obs
        if obs.enabled:
            # Claim C5 probe: which replica (ranked by network distance
            # from the node that issued the winning route) served this
            # lookup?  Rank 1 = the proximally nearest copy; the paper
            # reports 76% rank-1 / 92% rank-<=2 with the heuristic on.
            record = self.network.files.get(file_id)
            serving = response.serving_node
            if record is not None and serving in record.holders:
                topology = self.network.pastry.topology
                vantage = result.path[0]
                ranked = sorted(
                    record.holders,
                    key=lambda holder: (topology.distance(vantage, holder), holder),
                )
                obs.metrics.counter(
                    "lookup.replica_rank", rank=str(ranked.index(serving) + 1)
                ).increment()
        self._cache_along_path(result.path, response.certificate, response.data,
                               exclude=response.serving_node)
        return LookupResult(
            data=response.data,
            response=response,
            hops=result.hops,
            path=result.path,
        )

    def _verify_lookup(self, file_id: int, response: LookupResponse) -> None:
        """Content authenticity: certificate valid, ids and hashes match."""
        certificate = response.certificate
        if certificate.file_id != file_id:
            raise CertificateError("lookup returned a different fileId")
        if not certificate.verify():
            raise CertificateError("file certificate failed verification")
        if response.data.content_hash() != certificate.content_hash:
            raise CertificateError("content hash mismatch: corrupted or forged data")

    def _cache_along_path(
        self,
        path: List[int],
        certificate: FileCertificate,
        data: FileData,
        exclude: Optional[int] = None,
    ) -> None:
        """Offer the file to the caches of nodes it passed through
        (section 2.3: caching on insert and lookup paths)."""
        for node_id in path:
            if node_id == exclude:
                continue
            node = self.network.past_node(node_id)
            if node is not None and node.pastry.alive:
                node.offer_to_cache(certificate, data)

    # ------------------------------------------------------------------ #
    # reclaim
    # ------------------------------------------------------------------ #

    def reclaim(self, handle: FileHandle) -> int:
        """Reclaim the file's storage; returns the quota credited.

        Weaker-than-delete semantics (section 1): the operation releases
        the owner's claim and the replicas' storage, but cached copies may
        keep the file retrievable for a while.
        """
        reclaim_certificate = self.card.issue_reclaim_certificate(handle.file_id)
        request = ReclaimRequest(
            reclaim_certificate=reclaim_certificate,
            file_certificate=handle.certificate,
        )
        result = self.network.pastry.route(
            handle.certificate.storage_key(),
            origin=self.access_node,
            message=request,
            category="reclaim",
        )
        outcome = result.value if result.delivered else None
        if not isinstance(outcome, ReclaimOutcome):
            raise LookupFailedError("reclaim request could not be routed")
        if outcome.denied:
            raise ReclaimDeniedError(outcome.reason)
        credited = 0
        for receipt in outcome.receipts:
            credited += self.card.credit_reclaim_receipt(receipt, reclaim_certificate)
        return credited

    @property
    def quota_remaining(self) -> int:
        return self.card.quota_remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PastClient(access_node={self.access_node:032x}, quota={self.card.quota_remaining})"
