"""fileId construction and projection onto the nodeId space.

Each file inserted into PAST is assigned a 160-bit fileId: the
cryptographic hash of the file's textual name, the owner's public key and
a random salt (section 2).  Pastry then routes to the node whose 128-bit
nodeId is numerically closest to the 128 *most significant bits* of the
fileId; :func:`storage_key` performs that projection.

The salt is what makes *file diversion* possible (section 2.3 / SOSP'01):
if the nodes near one fileId cannot accommodate the file, the client
generates a fresh salt, obtaining a fileId in a different, hopefully less
loaded, region of the id space.
"""

from __future__ import annotations

import random

from repro.crypto.hashing import FILE_ID_BITS, NODE_ID_BITS, sha1_id
from repro.crypto.keys import PublicKey

SALT_BITS = 64


def make_salt(rng: random.Random) -> int:
    """A fresh random salt (regenerated on each file-diversion retry)."""
    return rng.getrandbits(SALT_BITS)


def make_file_id(name: str, owner: PublicKey, salt: int) -> int:
    """The 160-bit fileId: hash(name, owner public key, salt).

    Because the hash is cryptographic, clients cannot choose fileIds
    with nearby values to exhaust storage at a subset of nodes -- the
    storing nodes re-derive and check the fileId (section 2.1).
    """
    if not 0 <= salt < (1 << SALT_BITS):
        raise ValueError(f"salt must fit in {SALT_BITS} bits")
    return sha1_id(
        name.encode("utf-8"),
        owner.fingerprint(),
        salt.to_bytes(SALT_BITS // 8, "big"),
        bits=FILE_ID_BITS,
    )


def storage_key(file_id: int) -> int:
    """The 128 most significant bits of a fileId: the key Pastry routes
    on, and the value nodeIds are compared against for replica placement."""
    if not 0 <= file_id < (1 << FILE_ID_BITS):
        raise ValueError("fileId out of range")
    return file_id >> (FILE_ID_BITS - NODE_ID_BITS)


def verify_file_id(file_id: int, name: str, owner: PublicKey, salt: int) -> bool:
    """Re-derive and compare: the check each storing node performs to
    defeat chosen-fileId denial-of-service attacks."""
    return file_id == make_file_id(name, owner, salt)
