"""Event-driven churn scenarios.

"Nodes ... may join the system at any time and may silently leave the
system without warning" (abstract), and "the choice of a replication
factor k must take into account the expected rate of transient storage
node failures to ensure sufficient availability" (section 2.1).

:class:`ChurnSimulation` drives a live PAST network on the discrete-event
engine: Poisson node arrivals and silent departures, periodic
failure-recovery (replica restoration) passes, and an ongoing lookup
workload.  Benchmark E15 uses it to regenerate the availability-vs-k
trade-off the paper's replication-factor guidance describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.client import FileHandle
from repro.core.errors import LookupFailedError
from repro.core.maintenance import replication_census, restore_replication
from repro.core.network import PastNetwork
from repro.faults.plan import (
    ADJACENT_FAILURE,
    CRASH,
    RESTART,
    SLOW_NODE,
    FaultEvent,
)
from repro.obs.events import FaultInjected
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_context import TraceContext
from repro.pastry.failure import (
    notify_leafset_of_failure,
    purge_failed,
    recover_node,
    stabilize_leaf_sets,
)
from repro.sim.engine import SimulationEngine
from repro.workloads.churn import ARRIVAL, poisson_churn_schedule


@dataclass
class ChurnReport:
    """What happened over one simulated run."""

    arrivals: int = 0
    departures: int = 0
    maintenance_passes: int = 0
    replicas_restored: int = 0
    lookups_attempted: int = 0
    lookups_succeeded: int = 0
    files_lost: int = 0
    final_node_count: int = 0

    @property
    def availability(self) -> float:
        if self.lookups_attempted == 0:
            return 1.0
        return self.lookups_succeeded / self.lookups_attempted


class ChurnSimulation:
    """One churned run over an existing network and file population."""

    def __init__(
        self,
        network: PastNetwork,
        handles: List[FileHandle],
        rng: Optional[random.Random] = None,
        arrival_rate: float = 0.02,
        departure_rate: float = 0.02,
        maintenance_interval: Optional[float] = 50.0,
        lookup_interval: float = 1.0,
        node_capacity: int = 1 << 22,
        min_live_nodes: int = 8,
        fault_plan=None,
        checker=None,
        sampler=None,
        sample_interval: float = 20.0,
    ) -> None:
        """Rates are events per simulated time unit.  Setting
        ``maintenance_interval`` to None disables failure recovery -- the
        ablation that shows why the recovery procedure matters.

        *fault_plan* is an optional :class:`repro.faults.plan.FaultPlan`
        whose scheduled events (crashes, restarts, coordinated adjacent
        failures, slow nodes) are applied on the engine alongside the
        Poisson churn; *checker* is an optional
        :class:`repro.faults.invariants.InvariantChecker` run after every
        injected event.

        *sampler* is an optional callable invoked with the engine's
        current sim time every *sample_interval* units -- the hook the
        telemetry layer uses to sample metrics into windowed series
        under the injected clock (so two same-seed runs sample at
        byte-identical instants).
        """
        self.network = network
        self.handles = handles
        self._rng = rng if rng is not None else network.rngs.stream("churn-sim")
        self.arrival_rate = arrival_rate
        self.departure_rate = departure_rate
        self.maintenance_interval = maintenance_interval
        self.lookup_interval = lookup_interval
        self.node_capacity = node_capacity
        self.min_live_nodes = min_live_nodes
        self.fault_plan = fault_plan
        self.checker = checker
        self.sampler = sampler
        self.sample_interval = sample_interval
        self.report = ChurnReport()
        # Tallying goes through the metrics registry (the network
        # observer's when one is installed, so churn counters appear in
        # its snapshot; a private one otherwise).  The report dataclass
        # is assembled from these counters at the end of the run.
        self._metrics: MetricsRegistry = (
            network.obs.metrics if network.obs.enabled else MetricsRegistry()
        )
        # Workload lookups are traced with *sim-time* stamps: trace ids
        # come from their own stream (drawing them from the workload rng
        # would perturb victim/file choices), and the engine reference is
        # installed by run() so spans read ``engine.now``.
        self._trace_rng = network.rngs.stream("churn-trace-ids")
        self._engine = None

    # ------------------------------------------------------------------ #
    # event actions
    # ------------------------------------------------------------------ #

    def _arrive(self) -> None:
        self.network.add_storage_node(self.node_capacity, join=True)
        self._metrics.counter("churn.arrivals").increment()

    def _depart(self) -> None:
        live = self.network.pastry.live_ids()
        if len(live) <= self.min_live_nodes:
            return  # refuse to churn the network out of existence
        victim = self._rng.choice(live)
        self.network.pastry.mark_failed(victim)
        # Silent departure: neighbours detect it via their keep-alive
        # machinery; we apply the detection outcome directly.
        notify_leafset_of_failure(self.network.pastry, victim)
        self._metrics.counter("churn.departures").increment()

    def _maintain(self) -> None:
        maintenance = restore_replication(self.network)
        self._metrics.counter("churn.maintenance_passes").increment()
        self._metrics.counter("churn.replicas_restored").increment(
            maintenance.replicas_restored
        )

    def _lookup(self) -> None:
        if not self.handles:
            return
        handle = self._rng.choice(self.handles)
        origin = self._rng.choice(self.network.pastry.live_ids())
        reader = self.network.create_client(usage_quota=0, access_node=origin)
        obs = self.network.obs
        ctx = None
        start = 0.0
        if obs.enabled and self._engine is not None:
            ctx = TraceContext.root(self._trace_rng)
            start = self._engine.now
        try:
            result = reader.lookup_verbose(
                handle.file_id,
                replica_hint=handle.certificate.replication_factor,
            )
            self._metrics.counter("churn.lookups", outcome="ok").increment()
            if ctx is not None:
                obs.traces.record(
                    ctx, "churn.lookup", start=start, end=self._engine.now,
                    file_id=f"{handle.file_id:x}", origin=f"{origin:x}",
                    outcome="ok", hops=result.hops,
                )
        except LookupFailedError:
            self._metrics.counter("churn.lookups", outcome="failed").increment()
            if ctx is not None:
                obs.traces.record(
                    ctx, "churn.lookup", start=start, end=self._engine.now,
                    file_id=f"{handle.file_id:x}", origin=f"{origin:x}",
                    outcome="failed",
                )

    # ------------------------------------------------------------------ #
    # injected faults
    # ------------------------------------------------------------------ #

    def _emit_fault(self, kind: str, target: Optional[int], detail: str) -> None:
        self._metrics.counter("faults.injected", kind=kind).increment()
        obs = self.network.obs
        if obs.enabled:
            obs.emit(FaultInjected(fault=kind, target=target, detail=detail))

    def _crash_one(self, victim: int) -> None:
        """Kill *victim* and run the synchronous detection sweep, so the
        failure is *confirmed*: every survivor repairs, and the checker
        is entitled to demand no dangling references remain."""
        pastry = self.network.pastry
        pastry.mark_failed(victim)
        purge_failed(pastry, victim)
        if self.checker is not None:
            self.checker.confirm_dead(victim)

    def _apply_fault(self, event: FaultEvent) -> None:
        plan = self.fault_plan
        pastry = self.network.pastry
        live = pastry.live_ids()
        if event.kind == CRASH:
            if len(live) <= self.min_live_nodes:
                return
            victim = event.target if event.target is not None else plan.pick_target(live)
            if victim is None or not pastry.is_live(victim):
                return
            self._crash_one(victim)
            # One leaf-maintenance round: repair donors cannot advertise
            # nodes they do not know, so a survivor missing from every
            # donor's coverage must announce itself -- which is what the
            # protocol's periodic leaf-set exchange does.
            stabilize_leaf_sets(pastry)
            plan.count(CRASH)
            self._emit_fault(CRASH, victim, "injected crash")
        elif event.kind == RESTART:
            dead = sorted(
                nid for nid, node in pastry.nodes.items() if not node.alive
            )
            victim = event.target if event.target is not None else plan.pick_target(dead)
            if victim is None or pastry.is_live(victim):
                return
            recover_node(pastry, victim)
            if self.checker is not None:
                self.checker.confirm_alive(victim)
            plan.count(RESTART)
            self._emit_fault(RESTART, victim, "injected restart")
        elif event.kind == ADJACENT_FAILURE:
            if len(live) <= self.min_live_nodes + event.count:
                return
            # Fail *count* nodes with adjacent nodeIds around a seeded
            # anchor key -- simultaneously (all marked dead before any
            # repair runs), which is exactly the C6 precondition when
            # count >= floor(l/2).
            anchor = plan.pick_anchor(pastry.space.bits)
            start = pastry.space.closest(anchor, iter(live))
            index = live.index(start)
            victims = [live[(index + i) % len(live)] for i in range(event.count)]
            for victim in victims:
                pastry.mark_failed(victim)
            for victim in victims:
                purge_failed(pastry, victim)
                if self.checker is not None:
                    self.checker.confirm_dead(victim)
            # Per-victim repair ordering can leave one-directional leaf
            # references after a *coordinated* failure; one maintenance
            # round restores symmetry (see stabilize_leaf_sets).
            stabilize_leaf_sets(pastry)
            plan.count(ADJACENT_FAILURE)
            self._emit_fault(
                ADJACENT_FAILURE,
                None,
                f"{event.count} adjacent nodes around {anchor:x}",
            )
        elif event.kind == SLOW_NODE:
            victim = event.target if event.target is not None else plan.pick_target(live)
            if victim is None:
                return
            plan.set_slow(victim)
            plan.count(SLOW_NODE)
            self._emit_fault(SLOW_NODE, victim, "traffic stretched")
        if self.checker is not None:
            self.checker.check_all()

    def _sample(self) -> None:
        self.sampler(self._engine.now)

    # ------------------------------------------------------------------ #
    # driver
    # ------------------------------------------------------------------ #

    def run(self, duration: float) -> ChurnReport:
        """Run the scenario for *duration* simulated time units."""
        engine = SimulationEngine()
        self._engine = engine
        obs = self.network.obs
        if obs.enabled:
            # Events published during the run carry sim-time timestamps,
            # and the cost ledger bins charges into sim-time windows
            # (bytes/node/sim-second rates).
            obs.clock = lambda: engine.now
            if obs.ledger is not None:
                obs.ledger.clock = lambda: engine.now
        # The churn and fault schedules are fully known up front, so they
        # bulk-load in one heapify pass each (schedule_many_at) instead
        # of one heap-push per event.
        engine.schedule_many_at(
            (
                (event.time, self._arrive if event.kind == ARRIVAL else self._depart)
                for event in poisson_churn_schedule(
                    self._rng, duration, self.arrival_rate, self.departure_rate
                )
            )
        )
        if self.fault_plan is not None:
            engine.schedule_many_at(
                (
                    (fault_event.time, lambda ev=fault_event: self._apply_fault(ev))
                    for fault_event in self.fault_plan.events
                )
            )
        if self.maintenance_interval is not None:
            engine.schedule_periodic(self.maintenance_interval, self._maintain)
        engine.schedule_periodic(self.lookup_interval, self._lookup)
        if self.sampler is not None:
            engine.schedule_periodic(self.sample_interval, self._sample)
        engine.run(until=duration)
        if obs.enabled:
            obs.clock = None
            if obs.ledger is not None:
                obs.ledger.clock = None

        census = replication_census(self.network)
        counter = self._metrics.counter
        ok = counter("churn.lookups", outcome="ok").value
        failed = counter("churn.lookups", outcome="failed").value
        self.report = ChurnReport(
            arrivals=counter("churn.arrivals").value,
            departures=counter("churn.departures").value,
            maintenance_passes=counter("churn.maintenance_passes").value,
            replicas_restored=counter("churn.replicas_restored").value,
            lookups_attempted=ok + failed,
            lookups_succeeded=ok,
            files_lost=census["lost"],
            final_node_count=self.network.pastry.live_count(),
        )
        return self.report
