"""Co-existing PAST systems and broker-less communities (section 2.1).

Two deployment variations the paper sketches at the end of section 2.1:

* "Multiple PAST systems can co-exist in the Internet.  In fact, we
  envision PAST networks run by many competing brokers, where a client
  can access files in the entire system."  :class:`Federation` models
  that: several independent PAST networks (each with its own broker,
  smartcards and overlay), and a :class:`FederatedClient` that inserts
  into its home system but can retrieve from any of them.
* "It is possible to operate isolated PAST systems that serve a mutually
  trusting community without a broker or smartcards."
  :func:`trusted_community_network` builds such a system: nodes and
  users hold plain (uncertified) key pairs, card-certification checks
  are disabled, and everything else -- certificates, receipts, quotas,
  diversion, caching -- still works, because those mechanisms only need
  signatures, not third-party certification.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.client import FileHandle, PastClient
from repro.core.errors import LookupFailedError
from repro.core.files import FileData
from repro.core.network import PastNetwork
from repro.sim.rng import RngRegistry, stable_seed


class Federation:
    """Several independent PAST systems, reachable by one client."""

    def __init__(self) -> None:
        self._systems: Dict[str, PastNetwork] = {}

    def add_system(self, name: str, network: PastNetwork) -> None:
        """Register an independently run PAST network (its own broker)."""
        if name in self._systems:
            raise ValueError(f"system {name!r} already registered")
        self._systems[name] = network

    def system(self, name: str) -> PastNetwork:
        return self._systems[name]

    def system_names(self) -> List[str]:
        return sorted(self._systems)

    def build_system(
        self,
        name: str,
        nodes: int,
        seed: Optional[int] = None,
        capacity_fn: Optional[Callable[[random.Random], int]] = None,
        **network_kwargs,
    ) -> PastNetwork:
        """Convenience: create, build, and register a system."""
        if seed is None:
            seed = stable_seed("federation", name)
        network = PastNetwork(rngs=RngRegistry(seed), **network_kwargs)
        network.build(nodes, method="join", capacity_fn=capacity_fn)
        self.add_system(name, network)
        return network

    def create_client(self, home: str, usage_quota: int) -> "FederatedClient":
        """A client homed in one system with read access to all."""
        return FederatedClient(self, home, usage_quota)


class FederatedClient:
    """A user with a smartcard from one broker and read access to every
    federated system.

    Inserts go to the home system (that is where the quota lives);
    lookups try the home system first and then the others -- brokers
    compete for storage customers, but content is reachable everywhere.
    """

    def __init__(self, federation: Federation, home: str, usage_quota: int) -> None:
        self.federation = federation
        self.home = home
        self._home_client: PastClient = federation.system(home).create_client(
            usage_quota=usage_quota
        )
        # Zero-quota read clients in the other systems, created lazily.
        self._readers: Dict[str, PastClient] = {home: self._home_client}

    def _reader(self, system_name: str) -> PastClient:
        reader = self._readers.get(system_name)
        if reader is None:
            reader = self.federation.system(system_name).create_client(usage_quota=0)
            self._readers[system_name] = reader
        return reader

    def insert(self, name: str, data: FileData, replication_factor: int = 3) -> FileHandle:
        """Store in the home system (quota is debited there)."""
        return self._home_client.insert(name, data, replication_factor)

    def reclaim(self, handle: FileHandle) -> int:
        return self._home_client.reclaim(handle)

    def lookup(self, file_id: int, replica_hint: Optional[int] = None) -> FileData:
        """Try the home system, then every other federated system."""
        order = [self.home] + [
            name for name in self.federation.system_names() if name != self.home
        ]
        last_error: Optional[LookupFailedError] = None
        for system_name in order:
            try:
                return self._reader(system_name).lookup(file_id, replica_hint)
            except LookupFailedError as exc:
                last_error = exc
        raise LookupFailedError(
            f"file {file_id:040x} not found in any of {len(order)} federated systems"
        ) from last_error

    @property
    def quota_remaining(self) -> int:
        return self._home_client.quota_remaining


def trusted_community_network(
    nodes: int,
    seed: int = 0,
    capacity_fn: Optional[Callable[[random.Random], int]] = None,
    **network_kwargs,
) -> PastNetwork:
    """An isolated PAST system for a mutually trusting community.

    No broker certification is required: any key pair can store and
    serve (e.g. the members of one organisation over a VPN).  All other
    machinery -- signatures, receipts, quotas on each member's own card,
    storage management, caching -- operates unchanged.
    """
    network = PastNetwork(
        rngs=RngRegistry(seed),
        require_card_certification=False,
        **network_kwargs,
    )
    network.build(nodes, method="join", capacity_fn=capacity_fn)
    return network
