"""The PAST network façade.

Builds the whole stack -- broker, smartcards, Pastry overlay, PAST nodes
-- and exposes the operations a deployment would: create storage nodes,
create clients, and observe global statistics.  NodeIds are derived from
the nodes' smartcard public keys (section 2.1), so id assignment is
exactly as in the paper: uniform, quasi-random, and unbiasable.

The façade also keeps a *file registry*: ground-truth bookkeeping of
which nodes hold each inserted file.  The registry is never consulted by
the routing or storage logic (which is fully decentralised); it exists
for experiments, tests, and as the driver for the replica-restoration
pass in :mod:`repro.core.maintenance` (standing in for the distributed
failure-recovery procedure of the SOSP'01 companion paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.broker import Broker
from repro.core.certificates import FileCertificate
from repro.core.client import PastClient
from repro.core.node import PastNode
from repro.core.smartcard import CardCertificate
from repro.core.storage_manager import StoragePolicy, summarize_utilization
from repro.netsim.topology import Topology
from repro.pastry.join import join_network
from repro.pastry.network import PastryNetwork
from repro.pastry.nodeid import IdSpace
from repro.sim.rng import RngRegistry

DEFAULT_NODE_CAPACITY = 1 << 30  # 1 GiB


@dataclass
class FileRecord:
    """Registry entry: ground truth about one inserted file."""

    certificate: FileCertificate
    owner_card_certificate: Optional[CardCertificate]
    holders: Set[int] = field(default_factory=set)
    reclaimed: bool = False


class PastNetwork:
    """A complete simulated PAST deployment."""

    def __init__(
        self,
        space: Optional[IdSpace] = None,
        topology: Optional[Topology] = None,
        rngs: Optional[RngRegistry] = None,
        broker: Optional[Broker] = None,
        storage_policy: Optional[StoragePolicy] = None,
        cache_policy: str = "gds",
        key_backend: str = "insecure_fast",
        leaf_capacity: int = 32,
        neighborhood_capacity: int = 32,
        require_card_certification: bool = True,
        table_quality: str = "good",
        observer=None,
    ) -> None:
        """*key_backend* defaults to the fast insecure mode because a
        network of hundreds of nodes mints hundreds of keypairs; pass
        ``"rsa"`` for real signatures (the security tests do)."""
        self.rngs = rngs if rngs is not None else RngRegistry(0)
        self.broker = (
            broker
            if broker is not None
            else Broker(self.rngs.stream("broker"), key_backend=key_backend)
        )
        self.pastry = PastryNetwork(
            space=space,
            topology=topology,
            leaf_capacity=leaf_capacity,
            neighborhood_capacity=neighborhood_capacity,
            rngs=self.rngs,
            table_quality=table_quality,
            observer=observer,
        )
        # One observer serves the whole stack; the storage layer guards
        # its sites the same way the overlay does.
        self.obs = self.pastry.obs
        self.policy = storage_policy if storage_policy is not None else StoragePolicy()
        self.cache_policy = cache_policy
        self.key_backend = key_backend
        self.require_card_certification = require_card_certification
        self.files: Dict[int, FileRecord] = {}
        self._past_nodes: Dict[int, PastNode] = {}
        self._clock = 0
        self.inserts_attempted = 0
        self.inserts_rejected = 0

    @property
    def space(self) -> IdSpace:
        return self.pastry.space

    # ------------------------------------------------------------------ #
    # time (a coarse day counter for card expiry)
    # ------------------------------------------------------------------ #

    def now(self) -> int:
        return self._clock

    def advance_time(self, days: int = 1) -> None:
        if days < 0:
            raise ValueError("time does not run backwards")
        self._clock += days

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def add_storage_node(self, capacity: int, join: bool = True) -> PastNode:
        """Mint a smartcard, derive the nodeId from its key, and bring the
        node into the overlay (via the arrival protocol when *join*)."""
        card = self.broker.issue_card(
            usage_quota=0, contributed_storage=capacity, now=self.now()
        )
        node_id = card.node_id()
        had_nodes = self.pastry.live_count() > 0
        pastry_node = self.pastry.add_node(node_id)
        node = PastNode(
            self,
            pastry_node,
            card,
            capacity=capacity,
            policy=self.policy,
            cache_policy=self.cache_policy,
        )
        self._past_nodes[node_id] = node
        if join and had_nodes:
            contact = self.pastry._nearest_live_contact(pastry_node)
            join_network(self.pastry, pastry_node, contact)
        return node

    def build(
        self,
        n: int,
        capacity_fn: Optional[Callable[[random.Random], int]] = None,
        method: str = "join",
    ) -> List[PastNode]:
        """Create *n* storage nodes.

        *capacity_fn* draws each node's advertised capacity (defaults to a
        constant 1 GiB); *method* is ``join`` (real arrivals) or
        ``oracle`` (direct state construction for large overlays).
        """
        if n < 1:
            raise ValueError("need at least one node")
        rng = self.rngs.stream("capacities")
        nodes = []
        for _ in range(n):
            capacity = capacity_fn(rng) if capacity_fn is not None else DEFAULT_NODE_CAPACITY
            nodes.append(self.add_storage_node(capacity, join=(method == "join")))
        if method == "oracle":
            self.pastry.rebuild_state_oracle()
        elif method != "join":
            raise ValueError(f"unknown build method: {method!r}")
        return nodes

    def past_node(self, node_id: int) -> Optional[PastNode]:
        return self._past_nodes.get(node_id)

    def past_nodes(self) -> List[PastNode]:
        """All PAST nodes, live and dead (copy)."""
        return list(self._past_nodes.values())

    def live_past_nodes(self) -> List[PastNode]:
        return [n for n in self._past_nodes.values() if n.pastry.alive]

    def create_client(
        self,
        usage_quota: int,
        access_node: Optional[int] = None,
        enforce_balance: bool = False,
    ) -> PastClient:
        """Issue a user smartcard and attach the client to an access node
        (a uniformly random live node unless specified)."""
        card = self.broker.issue_card(
            usage_quota=usage_quota,
            contributed_storage=0,
            now=self.now(),
            enforce_balance=enforce_balance,
        )
        if access_node is None:
            rng = self.rngs.stream("client-placement")
            access_node = rng.choice(self.pastry.live_ids())
        return PastClient(self, card, access_node)

    # ------------------------------------------------------------------ #
    # registry bookkeeping (experiments only; see module docstring)
    # ------------------------------------------------------------------ #

    def record_insert(self, certificate: FileCertificate, holders: List[int]) -> None:
        record = self.files.get(certificate.file_id)
        if record is None:
            self.files[certificate.file_id] = FileRecord(
                certificate=certificate,
                owner_card_certificate=None,
                holders=set(holders),
            )
        else:
            record.holders = set(holders)
            record.reclaimed = False

    def attach_card_certificate(
        self, file_id: int, card_certificate: Optional[CardCertificate]
    ) -> None:
        record = self.files.get(file_id)
        if record is not None:
            record.owner_card_certificate = card_certificate

    def record_reclaim(self, file_id: int) -> None:
        record = self.files.get(file_id)
        if record is not None:
            record.reclaimed = True

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def utilization(self) -> dict:
        """Global storage statistics (benchmark E9)."""
        return summarize_utilization(self.live_past_nodes())

    def insert_rejection_rate(self) -> float:
        if self.inserts_attempted == 0:
            return 0.0
        return self.inserts_rejected / self.inserts_attempted

    def files_per_node(self) -> List[int]:
        """Primary replica counts per live node (benchmark E11)."""
        return [node.store.replica_count() for node in self.live_past_nodes()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PastNetwork(nodes={len(self._past_nodes)}, "
            f"files={len(self.files)}, clock={self._clock})"
        )
