"""The broker: a third party that issues smartcards (section 2.1).

The broker is *not* involved in the operation of the PAST network.  Its
knowledge is limited to the number of smartcards it has circulated, their
quotas and expiration dates -- exactly the state this class keeps.  Its
one system-level responsibility is balancing storage supply and demand:
the sum of all client quotas (potential demand) against the total storage
contributed by node cards (supply).
"""

from __future__ import annotations

import random

from repro.core.smartcard import CardCertificate, SmartCard
from repro.crypto.keys import KeyPair, PublicKey, generate_keypair

DEFAULT_CARD_LIFETIME = 365  # days; cards are replaced periodically


class Broker:
    """Issues and certifies smartcards; tracks aggregate supply/demand."""

    def __init__(
        self,
        rng: random.Random,
        key_backend: str = "rsa",
        target_supply_margin: float = 1.0,
    ) -> None:
        """*rng* must be a seeded stream (e.g. ``rngs.stream("broker")``)
        so key generation is reproducible.  *target_supply_margin* is the
        minimum supply/demand ratio the broker tries to maintain; below
        it, :meth:`can_issue_quota` refuses further usage quota until
        more storage is contributed."""
        if target_supply_margin <= 0:
            raise ValueError("supply margin must be positive")
        self._rng = rng
        self._key_backend = key_backend
        self._keypair: KeyPair = generate_keypair(self._rng, backend=key_backend)
        self.target_supply_margin = target_supply_margin
        self.cards_issued = 0
        self.total_quota_issued = 0
        self.total_contribution = 0

    @property
    def public_key(self) -> PublicKey:
        """The key every node uses to verify card certifications."""
        return self._keypair.public

    # ------------------------------------------------------------------ #
    # supply / demand
    # ------------------------------------------------------------------ #

    def supply_demand_ratio(self) -> float:
        """Contributed storage over issued quota (inf when no demand)."""
        if self.total_quota_issued == 0:
            return float("inf")
        return self.total_contribution / self.total_quota_issued

    def can_issue_quota(self, usage_quota: int, contributed_storage: int) -> bool:
        """Would issuing this card keep supply/demand above the margin?

        A card that contributes at least as much as it consumes is always
        issuable ("users are allowed to use as much storage as they
        contribute").
        """
        if usage_quota <= contributed_storage:
            return True
        demand = self.total_quota_issued + usage_quota
        supply = self.total_contribution + contributed_storage
        if demand == 0:
            return True
        return supply / demand >= self.target_supply_margin

    # ------------------------------------------------------------------ #
    # card issuance
    # ------------------------------------------------------------------ #

    def issue_card(
        self,
        usage_quota: int,
        contributed_storage: int = 0,
        now: int = 0,
        lifetime: int = DEFAULT_CARD_LIFETIME,
        enforce_balance: bool = True,
    ) -> SmartCard:
        """Mint and certify a new smartcard.

        The broker records only the aggregate quota/contribution -- it
        learns nothing about the user's identity or files (pseudonymity,
        section 2.1).
        """
        if enforce_balance and not self.can_issue_quota(usage_quota, contributed_storage):
            raise ValueError(
                "issuing this quota would unbalance storage supply and demand "
                f"(ratio would fall below {self.target_supply_margin})"
            )
        keypair = generate_keypair(self._rng, backend=self._key_backend)
        certificate = CardCertificate.issue(
            self._keypair,
            keypair.public,
            usage_quota=usage_quota,
            contributed_storage=contributed_storage,
            expiry=now + lifetime,
        )
        card = SmartCard(
            keypair,
            usage_quota=usage_quota,
            contributed_storage=contributed_storage,
            certificate=certificate,
        )
        self.cards_issued += 1
        self.total_quota_issued += usage_quota
        self.total_contribution += contributed_storage
        return card

    def certify_key(
        self,
        public_key: "PublicKey",
        usage_quota: int,
        contributed_storage: int = 0,
        now: int = 0,
        lifetime: int = DEFAULT_CARD_LIFETIME,
    ) -> CardCertificate:
        """Certify an externally held key (used by the on-line quota
        service, whose signing key lives at the service, not in a card)."""
        return CardCertificate.issue(
            self._keypair,
            public_key,
            usage_quota=usage_quota,
            contributed_storage=contributed_storage,
            expiry=now + lifetime,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Broker(cards={self.cards_issued}, quota={self.total_quota_issued}, "
            f"contribution={self.total_contribution})"
        )
