"""Per-node file storage.

Each PAST node contributes a fixed amount of storage (advertised by its
smartcard).  The :class:`FileStore` accounts for that space and holds:

* **primary replicas** -- files this node stores because its nodeId is
  among the k closest to the fileId;
* **diverted replicas** -- files stored on behalf of another node that
  could not accommodate them (replica diversion, section 2.3);
* **pointers** -- for each replica this node diverted away, a pointer to
  the node actually holding it (negligible space, modelled as free).

Cache space is accounted separately (:mod:`repro.core.cache`) because
cached copies are evictable at any time; the *unused portion* of the
advertised storage is what caching may use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.certificates import FileCertificate
from repro.core.errors import DuplicateFileError, PastError
from repro.core.files import FileData


@dataclass
class StoredReplica:
    """One replica held by a node."""

    certificate: FileCertificate
    data: Optional[FileData]  # None if a cheating node discarded content
    diverted: bool = False  # held on behalf of another node?

    @property
    def size(self) -> int:
        return self.certificate.size


class FileStore:
    """Capacity-accounted replica storage for one node."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.used = 0
        self._replicas: Dict[int, StoredReplica] = {}
        self._pointers: Dict[int, int] = {}  # fileId -> nodeId holding it
        # Optional observer (bound by PastNode when one is installed on
        # the network); None keeps the store allocation-free.
        self._obs = None

    def bind_observer(self, obs) -> None:
        """Report byte-level accounting through *obs* from now on."""
        self._obs = obs

    # ------------------------------------------------------------------ #
    # space accounting
    # ------------------------------------------------------------------ #

    @property
    def free_space(self) -> int:
        """Bytes not occupied by replicas (cache space is evictable and
        therefore counts as free here)."""
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        """Fraction of advertised capacity occupied by replicas."""
        if self.capacity == 0:
            return 1.0
        return self.used / self.capacity

    # ------------------------------------------------------------------ #
    # replicas
    # ------------------------------------------------------------------ #

    def store(self, certificate: FileCertificate, data: Optional[FileData],
              diverted: bool = False) -> StoredReplica:
        """Store one replica; the caller has already applied the
        acceptance policy.  Raises on duplicate or genuine lack of space."""
        file_id = certificate.file_id
        if file_id in self._replicas:
            raise DuplicateFileError(f"fileId {file_id:040x} already stored")
        if certificate.size > self.free_space:
            raise PastError(
                f"replica of {certificate.size} bytes exceeds free space {self.free_space}"
            )
        replica = StoredReplica(certificate=certificate, data=data, diverted=diverted)
        self._replicas[file_id] = replica
        self.used += certificate.size
        if self._obs is not None and self._obs.enabled:
            metrics = self._obs.metrics
            metrics.gauge("storage.used_bytes").increment(certificate.size)
            metrics.counter(
                "storage.stored_bytes", diverted=str(diverted).lower()
            ).increment(certificate.size)
        return replica

    def remove(self, file_id: int) -> int:
        """Release a replica's storage; returns the bytes freed."""
        replica = self._replicas.pop(file_id, None)
        if replica is None:
            return 0
        self.used -= replica.size
        if self._obs is not None and self._obs.enabled:
            metrics = self._obs.metrics
            metrics.gauge("storage.used_bytes").decrement(replica.size)
            metrics.counter("storage.freed_bytes").increment(replica.size)
        return replica.size

    def get(self, file_id: int) -> Optional[StoredReplica]:
        return self._replicas.get(file_id)

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._replicas

    def file_ids(self) -> List[int]:
        return list(self._replicas)

    def replica_count(self) -> int:
        return len(self._replicas)

    def discard_content(self, file_id: int) -> bool:
        """Model a cheating node: keep the replica's metadata (so it still
        answers 'yes, I store that') but drop the content.  Random audits
        (section 2.1) are designed to expose exactly this."""
        replica = self._replicas.get(file_id)
        if replica is None or replica.data is None:
            return False
        replica.data = None
        return True

    # ------------------------------------------------------------------ #
    # diversion pointers
    # ------------------------------------------------------------------ #

    def install_pointer(self, file_id: int, holder_node_id: int) -> None:
        """Record that this node's replica of *file_id* lives on
        *holder_node_id* (replica diversion)."""
        if file_id in self._replicas:
            raise PastError("cannot install a pointer for a locally stored replica")
        self._pointers[file_id] = holder_node_id

    def pointer(self, file_id: int) -> Optional[int]:
        return self._pointers.get(file_id)

    def remove_pointer(self, file_id: int) -> bool:
        return self._pointers.pop(file_id, None) is not None

    def pointer_count(self) -> int:
        return len(self._pointers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FileStore(used={self.used}/{self.capacity}, "
            f"replicas={len(self._replicas)}, pointers={len(self._pointers)})"
        )
