"""Smartcards: quota bookkeeping and certificate issuance (section 2.1).

Each PAST user and each PAST node holds a smartcard.  A card carries a
private/public key pair; the card's public key is signed by the issuing
broker for certification.  The private key never leaves the card object
-- node and client code can only ask the card to issue certificates,
mirroring tamper-proof hardware.

The card enforces the quota system: issuing a file certificate debits
``size x replication factor`` against the usage quota; presenting a valid
reclaim receipt credits the reclaimed amount back.  Double-crediting is
prevented by remembering which (fileId, nodeId) reclaim receipts have
already been applied.
"""

from __future__ import annotations

import random
from typing import Optional, Set, Tuple

from repro.core.certificates import (
    FileCertificate,
    ReclaimCertificate,
    ReclaimReceipt,
    StoreReceipt,
)
from repro.core.errors import CertificateError, QuotaExceededError
from repro.core.files import FileData
from repro.core.ids import make_file_id
from repro.crypto.keys import KeyPair, PublicKey, generate_keypair
from repro.crypto.signatures import SignedEnvelope

CARD_CERT_KIND = "past.card-certificate"


class CardCertificate:
    """The broker's signature over a card's public key and parameters."""

    def __init__(self, envelope: SignedEnvelope) -> None:
        self.envelope = envelope

    @classmethod
    def issue(
        cls,
        broker_keypair: KeyPair,
        card_public: PublicKey,
        usage_quota: int,
        contributed_storage: int,
        expiry: int,
    ) -> "CardCertificate":
        fields = {
            "card_key": card_public.fingerprint(),
            "usage_quota": usage_quota,
            "contributed": contributed_storage,
            "expiry": expiry,
        }
        return cls(SignedEnvelope.create(broker_keypair, CARD_CERT_KIND, fields))

    @property
    def usage_quota(self) -> int:
        return int(self.envelope.fields["usage_quota"])

    @property
    def contributed_storage(self) -> int:
        return int(self.envelope.fields["contributed"])

    @property
    def expiry(self) -> int:
        return int(self.envelope.fields["expiry"])

    def verify(self, broker_public: PublicKey, card_public: PublicKey, now: int = 0) -> bool:
        """Check the broker's signature, the key binding, and freshness."""
        if not self.envelope.verify_with(broker_public):
            return False
        if bytes(self.envelope.fields["card_key"]) != card_public.fingerprint():
            return False
        return now < self.expiry


class SmartCard:
    """One smartcard: keys, quota state, certificate issuance.

    Create via :meth:`repro.core.broker.Broker.issue_card`; the
    constructor is also usable directly for tests that need uncertified
    (rogue) cards.
    """

    def __init__(
        self,
        keypair: KeyPair,
        usage_quota: int,
        contributed_storage: int = 0,
        certificate: Optional[CardCertificate] = None,
    ) -> None:
        if usage_quota < 0 or contributed_storage < 0:
            raise ValueError("quota and contribution must be non-negative")
        self._keypair = keypair
        self.usage_quota = usage_quota
        self.contributed_storage = contributed_storage
        self.certificate = certificate
        self.quota_used = 0
        self._credited_receipts: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def node_id(self) -> int:
        """The 128-bit nodeId PAST derives from this card's public key.

        Because the id is a cryptographic hash of a broker-certified key,
        an attacker cannot choose a nodeId adjacent to a victim's."""
        return self._keypair.public.derive_id(bits=128)

    def verify_certified_by(self, broker_public: PublicKey, now: int = 0) -> bool:
        """True iff this card's key carries a fresh broker certification."""
        if self.certificate is None:
            return False
        return self.certificate.verify(broker_public, self.public_key, now)

    # ------------------------------------------------------------------ #
    # quota
    # ------------------------------------------------------------------ #

    @property
    def quota_remaining(self) -> int:
        return self.usage_quota - self.quota_used

    def issue_file_certificate(
        self,
        name: str,
        data: FileData,
        replication_factor: int,
        salt: int,
        insertion_date: int,
    ) -> FileCertificate:
        """Issue a file certificate, debiting size x k against the quota.

        Raises :class:`QuotaExceededError` when the quota cannot cover the
        charge -- the card refuses, so an over-quota client simply cannot
        produce a valid certificate.
        """
        charge = data.size * replication_factor
        if self.quota_used + charge > self.usage_quota:
            raise QuotaExceededError(
                f"charge {charge} exceeds remaining quota {self.quota_remaining}"
            )
        file_id = make_file_id(name, self.public_key, salt)
        certificate = FileCertificate.issue(
            self._keypair,
            name=name,
            file_id=file_id,
            content_hash=data.content_hash(),
            size=data.size,
            replication_factor=replication_factor,
            salt=salt,
            insertion_date=insertion_date,
        )
        self.quota_used += charge
        return certificate

    def refund_failed_insert(self, certificate: FileCertificate) -> None:
        """Credit back the charge for an insert the network rejected
        (no replica was retained)."""
        charge = certificate.size * certificate.replication_factor
        self.quota_used = max(self.quota_used - charge, 0)

    def issue_reclaim_certificate(self, file_id: int) -> ReclaimCertificate:
        """Sign a reclaim request for one of this card's files."""
        return ReclaimCertificate.issue(self._keypair, file_id)

    def credit_reclaim_receipt(
        self, receipt: ReclaimReceipt, reclaim_certificate: ReclaimCertificate
    ) -> int:
        """Apply a reclaim receipt: credit the reclaimed amount.

        Each (fileId, nodeId) receipt is credited at most once; replays
        raise :class:`CertificateError`.  Returns the amount credited.
        """
        if not receipt.verify(reclaim_certificate):
            raise CertificateError("reclaim receipt failed verification")
        key = (receipt.file_id, receipt.node_id)
        if key in self._credited_receipts:
            raise CertificateError("reclaim receipt already credited")
        self._credited_receipts.add(key)
        self.quota_used = max(self.quota_used - receipt.amount, 0)
        return receipt.amount

    # ------------------------------------------------------------------ #
    # storage-node operations
    # ------------------------------------------------------------------ #

    def issue_store_receipt(
        self, certificate: FileCertificate, diverted: bool = False
    ) -> StoreReceipt:
        """Issued by a *storage node's* card after storing a replica."""
        return StoreReceipt.issue(self._keypair, self.node_id(), certificate, diverted)

    def issue_reclaim_receipt(
        self, reclaim_certificate: ReclaimCertificate, amount: int
    ) -> ReclaimReceipt:
        """Issued by a *storage node's* card after releasing storage."""
        return ReclaimReceipt.issue(self._keypair, self.node_id(), reclaim_certificate, amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SmartCard(node_id={self.node_id():032x}, "
            f"quota={self.quota_used}/{self.usage_quota}, "
            f"contributes={self.contributed_storage})"
        )


def make_uncertified_card(
    rng: random.Random, usage_quota: int, contributed_storage: int = 0, backend: str = "rsa"
) -> SmartCard:
    """A card with no broker certification -- the 'rogue card' the
    security tests use to confirm that uncertified cards are rejected."""
    return SmartCard(
        generate_keypair(rng, backend=backend),
        usage_quota=usage_quota,
        contributed_storage=contributed_storage,
        certificate=None,
    )
