"""Pseudonyms and private storage.

Section 1: "Each user holds an initially unlinkable pseudonym in the form
of a public key. ... If desired, a user may use multiple pseudonyms to
obscure that certain operations were initiated by the same user."
Section 2.1 adds client-side encryption for data privacy.

:class:`UserAgent` is the user-side convenience layer tying the two
together: it manages any number of pseudonymous smartcards (each its own
key pair, quota, and client), picks a pseudonym per operation, and can
encrypt file contents so storage nodes see only ciphertext.  Sharing is
by handing out a :class:`ShareToken` -- the fileId plus (for private
files) the decryption key, exactly the sharing story of section 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.client import PastClient
from repro.core.files import RealData
from repro.crypto.symmetric import SealedBox, decrypt, encrypt, generate_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import PastNetwork


@dataclass(frozen=True)
class ShareToken:
    """Everything a recipient needs to retrieve (and read) one file."""

    file_id: int
    replication_factor: int
    key: Optional[bytes] = None  # None for public (plaintext) files


class UserAgent:
    """One human, many pseudonyms.

    The agent deliberately keeps no mapping that a storage node or broker
    could observe: each pseudonym is an independent smartcard, and which
    pseudonym inserted which file is known only to this object (i.e., to
    the user's own machine).
    """

    def __init__(self, network: "PastNetwork", rng: Optional[random.Random] = None) -> None:
        self.network = network
        self._rng = rng if rng is not None else network.rngs.stream("user-agent")
        self._pseudonyms: Dict[str, PastClient] = {}
        self._keys: Dict[int, bytes] = {}  # fileId -> decryption key
        self._owners: Dict[int, str] = {}  # fileId -> pseudonym label

    # ------------------------------------------------------------------ #
    # pseudonym management
    # ------------------------------------------------------------------ #

    def create_pseudonym(self, label: str, usage_quota: int) -> PastClient:
        """Obtain a fresh smartcard under a new, unlinkable pseudonym."""
        if label in self._pseudonyms:
            raise ValueError(f"pseudonym {label!r} already exists")
        client = self.network.create_client(usage_quota=usage_quota)
        self._pseudonyms[label] = client
        return client

    def pseudonym(self, label: str) -> PastClient:
        return self._pseudonyms[label]

    def pseudonym_labels(self) -> List[str]:
        return sorted(self._pseudonyms)

    def _pick_pseudonym(self, label: Optional[str]) -> PastClient:
        if label is not None:
            return self._pseudonyms[label]
        if not self._pseudonyms:
            raise ValueError("create a pseudonym before storing files")
        choice = self._rng.choice(sorted(self._pseudonyms))
        return self._pseudonyms[choice]

    # ------------------------------------------------------------------ #
    # private (encrypted) storage
    # ------------------------------------------------------------------ #

    def store_private(
        self,
        name: str,
        plaintext: bytes,
        replication_factor: int = 3,
        pseudonym: Optional[str] = None,
    ) -> ShareToken:
        """Encrypt client-side and insert under a pseudonym.

        The smartcard never sees the plaintext or the key (section 2.1:
        "data encryption does not involve the smartcards"); storage nodes
        store only the sealed blob.
        """
        key = generate_key(self._rng)
        box = encrypt(key, plaintext, self._rng)
        client = self._pick_pseudonym(pseudonym)
        handle = client.insert(name, RealData(box.to_bytes()), replication_factor)
        self._keys[handle.file_id] = key
        self._owners[handle.file_id] = self._label_of(client)
        return ShareToken(
            file_id=handle.file_id,
            replication_factor=replication_factor,
            key=key,
        )

    def store_public(
        self,
        name: str,
        plaintext: bytes,
        replication_factor: int = 3,
        pseudonym: Optional[str] = None,
    ) -> ShareToken:
        """Insert without encryption (content shared with everyone)."""
        client = self._pick_pseudonym(pseudonym)
        handle = client.insert(name, RealData(plaintext), replication_factor)
        self._owners[handle.file_id] = self._label_of(client)
        return ShareToken(
            file_id=handle.file_id,
            replication_factor=replication_factor,
            key=None,
        )

    def _label_of(self, client: PastClient) -> str:
        for label, candidate in self._pseudonyms.items():
            if candidate is client:
                return label
        raise ValueError("client does not belong to this agent")

    # ------------------------------------------------------------------ #
    # retrieval (works for any user holding a token)
    # ------------------------------------------------------------------ #

    @staticmethod
    def retrieve(network: "PastNetwork", token: ShareToken,
                 reader: Optional[PastClient] = None) -> bytes:
        """Retrieve and (if the token carries a key) decrypt a file.

        A static method on purpose: any party holding the token can
        retrieve, not just the owning agent (read-only users need no
        smartcard, so a zero-quota client suffices).
        """
        if reader is None:
            reader = network.create_client(usage_quota=0)
        data = reader.lookup(token.file_id, replica_hint=token.replication_factor)
        blob = data.to_bytes()
        if token.key is None:
            return blob
        return decrypt(token.key, SealedBox.from_bytes(blob))

    # ------------------------------------------------------------------ #
    # the unlinkability observable
    # ------------------------------------------------------------------ #

    def signer_fingerprints(self) -> Dict[str, bytes]:
        """What an observer could collect per pseudonym: the signing-key
        fingerprints.  Distinct pseudonyms expose distinct, unlinkable
        fingerprints (the tests assert exactly this)."""
        return {
            label: client.card.public_key.fingerprint()
            for label, client in self._pseudonyms.items()
        }
