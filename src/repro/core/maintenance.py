"""Replica maintenance after node failures.

Section 2.1 (Persistence): "In the event of storage node failures that
involve loss of the stored files, the system automatically restores k
copies of a file as part of a failure recovery procedure [12]."

In the deployed system each node watches its leaf set; when membership
around a fileId's root changes, the nodes adjacent in the id space
re-replicate the files whose k-closest set they entered or left.  This
module drives the same per-file transfers, but enumerates affected files
from the network's ground-truth registry instead of per-node watchers --
an equivalent, much cheaper way to trigger the identical data movements
(the transfers themselves are performed by the real node-side store
logic, policy checks included).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.core.messages import InsertRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import FileRecord, PastNetwork
    from repro.core.node import PastNode


@dataclass
class MaintenanceReport:
    """What one restoration pass did."""

    files_checked: int = 0
    replicas_restored: int = 0
    files_fully_replicated: int = 0
    files_under_replicated: int = 0
    files_lost: int = 0
    transfer_bytes: int = 0
    lost_file_ids: List[int] = field(default_factory=list)


def restore_replication(network: "PastNetwork") -> MaintenanceReport:
    """Re-establish k replicas for every tracked file.

    For each live (non-reclaimed) file: determine the current k live
    nodes numerically closest to its storage key, copy the file from any
    surviving holder to the new members of that set, and drop registry
    holders that died.  A file whose every replica died is *lost* --
    exactly the event the paper's replication-factor guidance (choose k
    against the transient-failure rate) is meant to make rare.
    """
    report = MaintenanceReport()
    for record in network.files.values():
        if record.reclaimed:
            continue
        report.files_checked += 1
        _restore_one(network, record, report)
    return report


def _serving_holder(network: "PastNetwork", record: "FileRecord") -> Optional["PastNode"]:
    """A live holder able to produce the content (data not discarded),
    following diversion pointers."""
    for holder_id in sorted(record.holders):
        node = network.past_node(holder_id)
        if node is None or not node.pastry.alive:
            continue
        replica = node.store.get(record.certificate.file_id)
        if replica is not None and replica.data is not None:
            return node
        pointer = node.store.pointer(record.certificate.file_id)
        if pointer is not None:
            held_node = network.past_node(pointer)
            if held_node is not None and held_node.pastry.alive:
                held = held_node.store.get(record.certificate.file_id)
                if held is not None and held.data is not None:
                    return held_node
    return None


def _restore_one(network: "PastNetwork", record: "FileRecord", report: MaintenanceReport) -> None:
    certificate = record.certificate
    file_id = certificate.file_id
    k = certificate.replication_factor
    key = certificate.storage_key()

    live_holders = {
        holder_id
        for holder_id in record.holders
        if network.pastry.is_live(holder_id)
        and (
            file_id in network.past_node(holder_id).store
            or network.past_node(holder_id).store.pointer(file_id) is not None
        )
    }
    source = _serving_holder(network, record)
    if source is None:
        report.files_lost += 1
        report.lost_file_ids.append(file_id)
        record.holders = live_holders
        return

    data = source.store.get(file_id).data
    desired = set(network.pastry.replica_root_set(key, min(k, network.pastry.live_count())))
    request = InsertRequest(
        certificate=certificate,
        data=data,
        owner_card_certificate=record.owner_card_certificate,
    )
    for new_holder_id in sorted(desired - live_holders):
        target = network.past_node(new_holder_id)
        if target is None or not target.pastry.alive:
            continue
        network.pastry.count_message("restore", 2)  # fetch + store
        receipt, _ = target.handle_store(request, replica_set=desired)
        if receipt is not None:
            live_holders.add(new_holder_id)
            report.replicas_restored += 1
            report.transfer_bytes += certificate.size

    record.holders = live_holders
    if len(live_holders) >= k:
        report.files_fully_replicated += 1
    else:
        report.files_under_replicated += 1


def replication_census(network: "PastNetwork") -> dict:
    """How many live replicas each tracked file currently has (ground
    truth; used by the churn experiments and tests)."""
    counts = {"full": 0, "under": 0, "lost": 0, "reclaimed": 0}
    for record in network.files.values():
        if record.reclaimed:
            counts["reclaimed"] += 1
            continue
        live = sum(
            1
            for holder_id in record.holders
            if network.pastry.is_live(holder_id)
            and (
                record.certificate.file_id in network.past_node(holder_id).store
                or network.past_node(holder_id).store.pointer(record.certificate.file_id)
                is not None
            )
        )
        if live == 0:
            counts["lost"] += 1
        elif live >= record.certificate.replication_factor:
            counts["full"] += 1
        else:
            counts["under"] += 1
    return counts
