"""The on-line quota service: running PAST without smartcards.

Section 2.1 (Smartcards): "The use of smartcards ... [is] not fundamental
to PAST's design.  First, smartcards could be replaced by secure on-line
quota services run by the brokers."

This module implements that alternative so the trade-off the paper
describes can be measured (benchmark E17): every certificate issuance
and every quota credit becomes an *on-line round trip* to a broker-run
service, instead of a local smartcard operation.  The service keeps the
authoritative quota ledger and signs certificates with its own key; the
user holds only a lightweight account token.

Functionally the two designs enforce identical rules -- the test suite
runs the same quota/forgery scenarios against both -- but the on-line
design pays two messages per operation and concentrates trust and load
on the service, which is exactly the scalability/efficiency argument the
paper makes for smartcards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.core.certificates import FileCertificate, ReclaimCertificate, ReclaimReceipt
from repro.core.errors import CertificateError, QuotaExceededError
from repro.core.files import FileData
from repro.core.ids import make_file_id
from repro.crypto.keys import KeyPair, PublicKey, generate_keypair

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import PastNetwork


@dataclass
class QuotaAccount:
    """Server-side ledger entry for one user."""

    account_id: int
    user_key: PublicKey
    usage_quota: int
    quota_used: int = 0

    @property
    def remaining(self) -> int:
        return self.usage_quota - self.quota_used


class OnlineQuotaService:
    """A broker-run service that issues certificates on-line.

    The service signs file and reclaim certificates with *its* key (users
    have no signing hardware), so storage nodes verify certificates
    against the service key exactly as they would verify a smartcard's
    broker certification.  Message costs are recorded on the network's
    ``messages.quota-service`` counter.
    """

    def __init__(self, network: "PastNetwork", rng: Optional[random.Random] = None,
                 key_backend: Optional[str] = None) -> None:
        self.network = network
        self._rng = rng if rng is not None else network.rngs.stream("quota-service")
        backend = key_backend if key_backend is not None else network.key_backend
        self._keypair: KeyPair = generate_keypair(self._rng, backend=backend)
        self._accounts: Dict[int, QuotaAccount] = {}
        self._next_account = 1
        self._credited: Set[Tuple[int, int]] = set()
        self._issuer_of: Dict[int, int] = {}  # fileId -> owning account
        self.operations = 0
        # The broker certifies the service key once, so storage nodes
        # accept service-signed certificates through the ordinary
        # card-certification check.
        self.card_certificate = network.broker.certify_key(
            self._keypair.public, usage_quota=0, contributed_storage=0,
            now=network.now(),
        )

    @property
    def public_key(self) -> PublicKey:
        """The key storage nodes trust certificates from."""
        return self._keypair.public

    def _round_trip(self) -> None:
        """Account for one request/response exchange with the service."""
        self.network.pastry.count_message("quota-service", 2)
        self.operations += 1
        obs = self.network.obs
        if obs.enabled:
            obs.metrics.counter("quota.round_trips").increment()

    # ------------------------------------------------------------------ #
    # accounts
    # ------------------------------------------------------------------ #

    def open_account(self, user_key: PublicKey, usage_quota: int) -> int:
        """Register a user (identified only by a pseudonymous key)."""
        if usage_quota < 0:
            raise ValueError("quota must be non-negative")
        self._round_trip()
        account_id = self._next_account
        self._next_account += 1
        self._accounts[account_id] = QuotaAccount(
            account_id=account_id, user_key=user_key, usage_quota=usage_quota
        )
        return account_id

    def account(self, account_id: int) -> QuotaAccount:
        return self._accounts[account_id]

    # ------------------------------------------------------------------ #
    # on-line certificate issuance
    # ------------------------------------------------------------------ #

    def issue_file_certificate(
        self,
        account_id: int,
        name: str,
        data: FileData,
        replication_factor: int,
        salt: int,
    ) -> FileCertificate:
        """The on-line equivalent of a smartcard certificate issuance:
        one round trip, ledger debit, service-signed certificate."""
        self._round_trip()
        account = self._accounts.get(account_id)
        if account is None:
            raise CertificateError("unknown quota account")
        charge = data.size * replication_factor
        if account.quota_used + charge > account.usage_quota:
            obs = self.network.obs
            if obs.enabled:
                obs.metrics.counter("quota.denied", reason="quota-exceeded").increment()
            raise QuotaExceededError(
                f"charge {charge} exceeds remaining quota {account.remaining}"
            )
        # The fileId binds to the *service* key (the signer), keeping the
        # chosen-fileId defence intact.
        file_id = make_file_id(name, self._keypair.public, salt)
        certificate = FileCertificate.issue(
            self._keypair,
            name=name,
            file_id=file_id,
            content_hash=data.content_hash(),
            size=data.size,
            replication_factor=replication_factor,
            salt=salt,
            insertion_date=self.network.now(),
        )
        account.quota_used += charge
        self._issuer_of[file_id] = account_id
        return certificate

    def refund_failed_insert(self, account_id: int, certificate: FileCertificate) -> None:
        """Credit back a rejected insert's charge (one round trip)."""
        self._round_trip()
        account = self._accounts[account_id]
        charge = certificate.size * certificate.replication_factor
        account.quota_used = max(account.quota_used - charge, 0)

    def issue_reclaim_certificate(self, account_id: int, file_id: int) -> ReclaimCertificate:
        """On-line reclaim authorization.

        With every certificate signed by the same service key, the
        storage-node signer-match check alone cannot distinguish owners,
        so ownership checking moves to the ledger: the service only
        signs reclaims for files it issued to *this* account."""
        self._round_trip()
        if account_id not in self._accounts:
            raise CertificateError("unknown quota account")
        if self._issuer_of.get(file_id) != account_id:
            obs = self.network.obs
            if obs.enabled:
                obs.metrics.counter("quota.denied", reason="not-owner").increment()
            raise CertificateError("account does not own this file")
        return ReclaimCertificate.issue(self._keypair, file_id)

    def credit_reclaim_receipt(
        self,
        account_id: int,
        receipt: ReclaimReceipt,
        reclaim_certificate: ReclaimCertificate,
    ) -> int:
        """Apply a storage node's reclaim receipt to the ledger."""
        self._round_trip()
        account = self._accounts[account_id]
        if not receipt.verify(reclaim_certificate):
            raise CertificateError("reclaim receipt failed verification")
        replay_key = (receipt.file_id, receipt.node_id)
        if replay_key in self._credited:
            raise CertificateError("reclaim receipt already credited")
        self._credited.add(replay_key)
        account.quota_used = max(account.quota_used - receipt.amount, 0)
        return receipt.amount


class ServiceBackedCard:
    """Adapter presenting the on-line service through the SmartCard
    interface, so :class:`~repro.core.client.PastClient` runs unmodified
    in the no-smartcard configuration.

    Every method that a smartcard would execute locally becomes a round
    trip to the service -- the performance difference benchmark E17
    measures.
    """

    def __init__(self, service: OnlineQuotaService, account_id: int) -> None:
        self._service = service
        self.account_id = account_id
        self.certificate = service.card_certificate

    @property
    def public_key(self) -> PublicKey:
        return self._service.public_key

    def node_id(self) -> int:
        # Only used for per-client rng stream naming; mix in the account
        # so distinct clients get distinct streams despite sharing the
        # service key.
        from repro.crypto.hashing import sha256_id

        return sha256_id(
            self._service.public_key.fingerprint(),
            self.account_id.to_bytes(8, "big"),
            bits=128,
        )

    # --- quota state (proxied from the ledger) ------------------------- #

    @property
    def usage_quota(self) -> int:
        return self._service.account(self.account_id).usage_quota

    @property
    def quota_used(self) -> int:
        return self._service.account(self.account_id).quota_used

    @property
    def quota_remaining(self) -> int:
        return self._service.account(self.account_id).remaining

    # --- the SmartCard operations, now on-line -------------------------- #

    def issue_file_certificate(self, name, data, replication_factor, salt, insertion_date):
        return self._service.issue_file_certificate(
            self.account_id, name, data, replication_factor, salt
        )

    def refund_failed_insert(self, certificate) -> None:
        self._service.refund_failed_insert(self.account_id, certificate)

    def issue_reclaim_certificate(self, file_id: int):
        return self._service.issue_reclaim_certificate(self.account_id, file_id)

    def credit_reclaim_receipt(self, receipt, reclaim_certificate) -> int:
        return self._service.credit_reclaim_receipt(
            self.account_id, receipt, reclaim_certificate
        )


def create_online_client(
    service: OnlineQuotaService,
    usage_quota: int,
    access_node: Optional[int] = None,
):
    """A PastClient whose quota lives at the on-line service.

    The user key registered with the account is a throwaway pseudonym --
    the service never learns more than the smartcard broker would.
    """
    from repro.core.client import PastClient

    network = service.network
    user_key = generate_keypair(service._rng, backend=network.key_backend).public
    account_id = service.open_account(user_key, usage_quota)
    if access_node is None:
        access_node = network.rngs.stream("client-placement").choice(
            network.pastry.live_ids()
        )
    return PastClient(network, ServiceBackedCard(service, account_id), access_node)
