"""PAST certificates and receipts (section 2.1).

Four signed artifacts flow through insert and reclaim operations:

* **File certificate** -- issued by the *user's* smartcard before insert.
  Carries the fileId, the content hash (computed by the client node), the
  replication factor k, the salt, the textual name and the insertion
  date.  Lets each storing node verify that (1) the user was authorized
  (the issuing card debited its quota), (2) the content was not corrupted
  in transit, and (3) the fileId is authentic (re-derivable from
  name/owner/salt), defeating chosen-fileId attacks.
* **Store receipt** -- issued by each storing node's smartcard back to
  the client; k receipts from nodes with adjacent nodeIds prove that k
  diverse replicas exist.
* **Reclaim certificate** -- issued by the user's smartcard; a storage
  node honours a reclaim only if its signer matches the signer of the
  stored file certificate (only the owner can reclaim).
* **Reclaim receipt** -- issued by the storage node; presenting it to the
  user's smartcard credits the reclaimed amount back against the quota.

All four wrap :class:`repro.crypto.signatures.SignedEnvelope`; changing
any field invalidates the signature, which the security tests verify
field by field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ids
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signatures import SignedEnvelope

FILE_CERT_KIND = "past.file-certificate"
STORE_RECEIPT_KIND = "past.store-receipt"
RECLAIM_CERT_KIND = "past.reclaim-certificate"
RECLAIM_RECEIPT_KIND = "past.reclaim-receipt"


@dataclass(frozen=True)
class FileCertificate:
    """Signed statement authorising the insertion of one file."""

    envelope: SignedEnvelope

    @classmethod
    def issue(
        cls,
        card_keypair: KeyPair,
        name: str,
        file_id: int,
        content_hash: int,
        size: int,
        replication_factor: int,
        salt: int,
        insertion_date: int,
    ) -> "FileCertificate":
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        fields = {
            "name": name,
            "file_id": file_id,
            "content_hash": content_hash,
            "size": size,
            "k": replication_factor,
            "salt": salt,
            "date": insertion_date,
        }
        return cls(SignedEnvelope.create(card_keypair, FILE_CERT_KIND, fields))

    @property
    def name(self) -> str:
        return str(self.envelope.fields["name"])

    @property
    def file_id(self) -> int:
        return int(self.envelope.fields["file_id"])

    @property
    def content_hash(self) -> int:
        return int(self.envelope.fields["content_hash"])

    @property
    def size(self) -> int:
        return int(self.envelope.fields["size"])

    @property
    def replication_factor(self) -> int:
        return int(self.envelope.fields["k"])

    @property
    def salt(self) -> int:
        return int(self.envelope.fields["salt"])

    @property
    def insertion_date(self) -> int:
        return int(self.envelope.fields["date"])

    @property
    def owner(self) -> PublicKey:
        return self.envelope.signer

    def verify(self) -> bool:
        """Signature valid *and* fileId authentic for (name, owner, salt)."""
        if not self.envelope.verify():
            return False
        return ids.verify_file_id(self.file_id, self.name, self.owner, self.salt)

    def storage_key(self) -> int:
        """The 128-bit key Pastry routes this file's operations on."""
        return ids.storage_key(self.file_id)


@dataclass(frozen=True)
class StoreReceipt:
    """Signed proof that one node stored one replica."""

    envelope: SignedEnvelope

    @classmethod
    def issue(cls, node_card_keypair: KeyPair, node_id: int, certificate: FileCertificate,
              diverted: bool = False) -> "StoreReceipt":
        fields = {
            "file_id": certificate.file_id,
            "content_hash": certificate.content_hash,
            "node_id": node_id,
            "size": certificate.size,
            "diverted": diverted,
        }
        return cls(SignedEnvelope.create(node_card_keypair, STORE_RECEIPT_KIND, fields))

    @property
    def file_id(self) -> int:
        return int(self.envelope.fields["file_id"])

    @property
    def node_id(self) -> int:
        return int(self.envelope.fields["node_id"])

    @property
    def size(self) -> int:
        return int(self.envelope.fields["size"])

    @property
    def diverted(self) -> bool:
        return bool(self.envelope.fields["diverted"])

    @property
    def storing_node_key(self) -> PublicKey:
        return self.envelope.signer

    def verify(self, certificate: FileCertificate) -> bool:
        """Signature valid and consistent with the file certificate."""
        if not self.envelope.verify():
            return False
        return (
            self.file_id == certificate.file_id
            and int(self.envelope.fields["content_hash"]) == certificate.content_hash
            and self.size == certificate.size
        )


@dataclass(frozen=True)
class ReclaimCertificate:
    """Signed request to reclaim a file's storage."""

    envelope: SignedEnvelope

    @classmethod
    def issue(cls, card_keypair: KeyPair, file_id: int) -> "ReclaimCertificate":
        return cls(SignedEnvelope.create(card_keypair, RECLAIM_CERT_KIND, {"file_id": file_id}))

    @property
    def file_id(self) -> int:
        return int(self.envelope.fields["file_id"])

    @property
    def issuer(self) -> PublicKey:
        return self.envelope.signer

    def verify_against(self, certificate: FileCertificate) -> bool:
        """The check each storage node performs: valid signature *from the
        same key that signed the file certificate* (section 2.1)."""
        if not self.envelope.verify():
            return False
        if self.file_id != certificate.file_id:
            return False
        return self.issuer == certificate.owner


@dataclass(frozen=True)
class ReclaimReceipt:
    """Signed proof that a storage node released a file's storage."""

    envelope: SignedEnvelope

    @classmethod
    def issue(
        cls,
        node_card_keypair: KeyPair,
        node_id: int,
        reclaim_certificate: ReclaimCertificate,
        amount_reclaimed: int,
    ) -> "ReclaimReceipt":
        if amount_reclaimed < 0:
            raise ValueError("amount reclaimed cannot be negative")
        fields = {
            "file_id": reclaim_certificate.file_id,
            "node_id": node_id,
            "amount": amount_reclaimed,
            # Bind the receipt to the specific reclaim request.
            "reclaim_signature": reclaim_certificate.envelope.signature,
        }
        return cls(SignedEnvelope.create(node_card_keypair, RECLAIM_RECEIPT_KIND, fields))

    @property
    def file_id(self) -> int:
        return int(self.envelope.fields["file_id"])

    @property
    def node_id(self) -> int:
        return int(self.envelope.fields["node_id"])

    @property
    def amount(self) -> int:
        return int(self.envelope.fields["amount"])

    def verify(self, reclaim_certificate: ReclaimCertificate) -> bool:
        if not self.envelope.verify():
            return False
        return (
            self.file_id == reclaim_certificate.file_id
            and int(self.envelope.fields["reclaim_signature"])
            == reclaim_certificate.envelope.signature
        )
