"""File caching on the routing path (section 2.3).

Any PAST node may cache additional copies of files in the *unused*
portion of its advertised storage.  Cached copies are served to lookups
that pass through the node, which balances query load for popular files
and shortens fetch distance.  Cache space is strictly evictable: when the
node needs room for a real replica, cached copies are discarded first.

The default replacement policy is GreedyDual-Size (the policy the SOSP'01
companion paper uses): each cached file gets a credit
``H = cost/size + L`` where ``L`` is an inflation value equal to the ``H``
of the last evicted entry; the entry with the lowest ``H`` is evicted
first, and a hit refreshes the entry's ``H``.  With uniform cost this
favours small and recently popular files.  An LRU variant and a no-op
cache support the ablation benchmark (E12).
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.certificates import FileCertificate
from repro.core.files import FileData


@dataclass
class CacheEntry:
    certificate: FileCertificate
    data: Optional[FileData]

    @property
    def size(self) -> int:
        return self.certificate.size


class Cache(ABC):
    """Interface all cache policies implement."""

    def __init__(self) -> None:
        self.used = 0
        self.hits = 0
        self.misses = 0

    @abstractmethod
    def get(self, file_id: int) -> Optional[CacheEntry]:
        """Return and refresh a cached entry, or None (counts hit/miss)."""

    @abstractmethod
    def admit(self, certificate: FileCertificate, data: Optional[FileData],
              budget: int) -> bool:
        """Offer a file for caching with at most *budget* bytes of cache
        space available (the node's unused storage).  The policy may evict
        lower-value entries to make room.  Returns True if cached."""

    @abstractmethod
    def evict_bytes(self, needed: int) -> int:
        """Evict entries until *needed* bytes have been freed (or the
        cache is empty); returns bytes actually freed.  Called when the
        node must reclaim cache space for a real replica."""

    @abstractmethod
    def __contains__(self, file_id: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class GreedyDualSizeCache(Cache):
    """GreedyDual-Size with uniform cost.

    Implemented with a lazy-deletion heap: stale heap records (whose H no
    longer matches the entry's current H) are skipped on pop.
    """

    def __init__(self, max_fraction: float = 1.0) -> None:
        """*max_fraction* caps a single cached file at that fraction of
        the currently available cache budget (very large files are poor
        cache citizens)."""
        super().__init__()
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError("max_fraction must be in (0, 1]")
        self.max_fraction = max_fraction
        self._entries: Dict[int, Tuple[CacheEntry, float]] = {}  # id -> (entry, H)
        self._heap: list = []  # (H, seq, file_id)
        self._seq = itertools.count()
        self._inflation = 0.0  # the L value

    def _credit(self, size: int) -> float:
        return self._inflation + 1.0 / max(size, 1)

    def get(self, file_id: int) -> Optional[CacheEntry]:
        record = self._entries.get(file_id)
        if record is None:
            self.misses += 1
            return None
        entry, _ = record
        refreshed = self._credit(entry.size)
        self._entries[file_id] = (entry, refreshed)
        heapq.heappush(self._heap, (refreshed, next(self._seq), file_id))
        self.hits += 1
        return entry

    def admit(self, certificate: FileCertificate, data: Optional[FileData],
              budget: int) -> bool:
        file_id = certificate.file_id
        if file_id in self._entries:
            return True
        size = certificate.size
        if size <= 0 or size > budget * self.max_fraction:
            return False
        # Evict while the new entry does not fit in the budget.
        while self.used + size > budget:
            if not self._evict_one():
                return False
        credit = self._credit(size)
        self._entries[file_id] = (CacheEntry(certificate, data), credit)
        heapq.heappush(self._heap, (credit, next(self._seq), file_id))
        self.used += size
        return True

    def _evict_one(self) -> bool:
        while self._heap:
            credit, _, file_id = heapq.heappop(self._heap)
            record = self._entries.get(file_id)
            if record is None or record[1] != credit:
                continue  # stale heap record
            entry, _ = record
            del self._entries[file_id]
            self.used -= entry.size
            self._inflation = credit  # GD-S aging
            return True
        return False

    def evict_bytes(self, needed: int) -> int:
        freed = 0
        while freed < needed and self._entries:
            before = self.used
            if not self._evict_one():
                break
            freed += before - self.used
        return freed

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class LruCache(Cache):
    """Plain least-recently-used replacement (ablation comparator)."""

    def __init__(self, max_fraction: float = 1.0) -> None:
        super().__init__()
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError("max_fraction must be in (0, 1]")
        self.max_fraction = max_fraction
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()

    def get(self, file_id: int) -> Optional[CacheEntry]:
        entry = self._entries.get(file_id)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(file_id)
        self.hits += 1
        return entry

    def admit(self, certificate: FileCertificate, data: Optional[FileData],
              budget: int) -> bool:
        file_id = certificate.file_id
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            return True
        size = certificate.size
        if size <= 0 or size > budget * self.max_fraction:
            return False
        while self.used + size > budget and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.used -= evicted.size
        if self.used + size > budget:
            return False
        self._entries[file_id] = CacheEntry(certificate, data)
        self.used += size
        return True

    def evict_bytes(self, needed: int) -> int:
        freed = 0
        while freed < needed and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.used -= evicted.size
            freed += evicted.size
        return freed

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class NoCache(Cache):
    """Caching disabled (the baseline in benchmark E12)."""

    def get(self, file_id: int) -> Optional[CacheEntry]:
        self.misses += 1
        return None

    def admit(self, certificate: FileCertificate, data: Optional[FileData],
              budget: int) -> bool:
        return False

    def evict_bytes(self, needed: int) -> int:
        return 0

    def __contains__(self, file_id: int) -> bool:
        return False

    def __len__(self) -> int:
        return 0


def make_cache(policy: str, max_fraction: float = 1.0) -> Cache:
    """Factory: ``gds``, ``lru``, or ``none``."""
    if policy == "gds":
        return GreedyDualSizeCache(max_fraction)
    if policy == "lru":
        return LruCache(max_fraction)
    if policy == "none":
        return NoCache()
    raise ValueError(f"unknown cache policy: {policy!r}")
