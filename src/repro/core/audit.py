"""Random storage audits (section 2.1, Storage quotas).

"Nodes are randomly audited to see if they can produce files they are
supposed to store, thus exposing nodes that cheat by offering less
storage than indicated by their smartcard."

The auditor draws a random (node, fileId) pair from the files the node is
*supposed* to hold, challenges the node with a fresh nonce, and compares
the node's answer with one recomputed from a reference copy held by a
different replica of the same file.  A node that discarded content cannot
answer; a node that fabricates an answer fails the comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Set

from repro.crypto.hashing import sha1_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import PastNetwork

AUDIT_PREFIX_BYTES = 4096


@dataclass
class AuditReport:
    """Outcome of one audit round."""

    challenges: int = 0
    passed: int = 0
    failed: int = 0
    exposed_nodes: Set[int] = field(default_factory=set)


class Auditor:
    """Issues random audit challenges across the network."""

    def __init__(self, network: "PastNetwork", rng: Optional[random.Random] = None) -> None:
        self.network = network
        self._rng = rng if rng is not None else network.rngs.stream("auditor")

    def _expected_answer(self, file_id: int, nonce: int, exclude_node: int) -> Optional[int]:
        """Recompute the challenge answer from any other live replica."""
        record = self.network.files.get(file_id)
        if record is None:
            return None
        for holder_id in sorted(record.holders):
            node = self.network.past_node(holder_id)
            if node is None or not node.pastry.alive:
                continue
            # Follow a diversion pointer to the actual content holder.
            actual = node
            if file_id not in node.store and node.store.pointer(file_id) is not None:
                actual = self.network.past_node(node.store.pointer(file_id))
                if actual is None or not actual.pastry.alive:
                    continue
            if actual.node_id == exclude_node:
                continue
            replica = actual.store.get(file_id)
            if replica is not None and replica.data is not None:
                return sha1_id(
                    replica.data.prefix_bytes(AUDIT_PREFIX_BYTES),
                    nonce.to_bytes(16, "big"),
                    bits=160,
                )
        return None

    def audit_node(self, node_id: int, samples: int = 4) -> AuditReport:
        """Challenge one node on up to *samples* of its stored files."""
        report = AuditReport()
        node = self.network.past_node(node_id)
        if node is None or not node.pastry.alive:
            return report
        stored = node.store.file_ids()
        if not stored:
            return report
        chosen = self._rng.sample(stored, min(samples, len(stored)))
        for file_id in chosen:
            nonce = self._rng.getrandbits(128)
            expected = self._expected_answer(file_id, nonce, exclude_node=node_id)
            if expected is None:
                continue  # no independent reference replica; skip
            report.challenges += 1
            self.network.pastry.count_message("audit", 2)  # challenge + answer
            answer = node.audit_challenge(file_id, nonce)
            if answer == expected:
                report.passed += 1
            else:
                report.failed += 1
                report.exposed_nodes.add(node_id)
        return report

    def audit_round(self, node_fraction: float = 0.1, samples: int = 4) -> AuditReport:
        """Audit a random fraction of live nodes; merge the reports."""
        if not 0.0 < node_fraction <= 1.0:
            raise ValueError("node_fraction must be in (0, 1]")
        live = self.network.pastry.live_ids()
        count = max(1, int(len(live) * node_fraction))
        merged = AuditReport()
        for node_id in self._rng.sample(live, count):
            partial = self.audit_node(node_id, samples)
            merged.challenges += partial.challenges
            merged.passed += partial.passed
            merged.failed += partial.failed
            merged.exposed_nodes |= partial.exposed_nodes
        return merged
