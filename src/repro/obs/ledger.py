"""The cost ledger: attribute every overlay message to the activity
that caused it.

Latency and correctness were observable since PR 2/5; this is the *cost*
axis.  Each charge names a message **kind** (priced by the
:class:`~repro.obs.cost_model.CostModel`) and optionally the node that
sent it; the ledger aggregates messages and estimated wire bytes

* per activity **category** (the fixed seven-way taxonomy),
* per **kind** (so an unpriced kind is visible, not silently averaged),
* per **node** (who is spending), and
* per sim-time **window** (bytes/node/sim-second rates, when a clock is
  installed -- simulation drivers set ``ledger.clock`` exactly like
  ``observer.clock``).

Determinism: the ledger performs pure integer accounting keyed by
strings and node ids; :meth:`snapshot` sorts every axis, so two seeded
runs produce byte-identical JSON.  The ledger is reached only through
an installed :class:`~repro.obs.recorder.Observer`; with the null
observer the network caches ``_ledger = None`` and hot paths pay a
single ``is not None`` test (the PR 2 fast-path contract).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.cost_model import CostModel


class CostLedger:
    """Message/byte accounting per category, kind, node and time window.

    *clock* supplies sim-time for windowed rates (None disables
    windowing); *window* is the bucket width in sim-seconds.
    """

    __slots__ = ("model", "clock", "window", "_by_category", "_by_kind",
                 "_node_bytes", "_windows", "_unpriced", "on_unpriced")

    def __init__(
        self,
        model: Optional[CostModel] = None,
        clock: Optional[Callable[[], float]] = None,
        window: float = 10.0,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.model = model if model is not None else CostModel()
        self.clock = clock
        self.window = float(window)
        # category -> [messages, bytes]; kind -> [messages, bytes]
        self._by_category: Dict[str, List[int]] = {}
        self._by_kind: Dict[str, List[int]] = {}
        self._node_bytes: Dict[int, int] = {}
        # window index -> {category: bytes}
        self._windows: Dict[int, Dict[str, int]] = {}
        # kind -> charges seen for kinds absent from the cost model; the
        # runtime twin of lint rule CONF001 (an unpriced kind still gets
        # the DEFAULT_COST fallback, but loudly instead of silently).
        self._unpriced: Dict[str, int] = {}
        #: Called as ``hook(kind, category, fallback_bytes, first)`` on
        #: every unpriced charge; ``first`` is True only the first time a
        #: kind is seen.  The Observer wires this to a metrics counter
        #: plus a one-shot warning event.
        self.on_unpriced: Optional[Callable[[str, str, int, bool], None]] = None

    # ------------------------------------------------------------------ #
    # charging
    # ------------------------------------------------------------------ #

    def charge(
        self,
        kind: str,
        node: Optional[int] = None,
        count: int = 1,
        size: Optional[int] = None,
    ) -> int:
        """Record *count* messages of *kind*; returns the bytes charged.

        *size* overrides the model's per-message estimate (layers that
        know the real payload -- e.g. live storage moving actual file
        contents -- pass it; everything else takes the modelled cost).
        """
        category, per_message = self.model.cost(kind)
        if not self.model.priced(kind):
            # Fallback bytes are reported as modelled (pre-override), so
            # the warning names the estimate actually filling the gap.
            first = kind not in self._unpriced
            self._unpriced[kind] = self._unpriced.get(kind, 0) + count
            hook = self.on_unpriced
            if hook is not None:
                hook(kind, category, per_message, first)
        if size is not None:
            per_message = size
        total = per_message * count

        cell = self._by_category.get(category)
        if cell is None:
            self._by_category[category] = [count, total]
        else:
            cell[0] += count
            cell[1] += total

        cell = self._by_kind.get(kind)
        if cell is None:
            self._by_kind[kind] = [count, total]
        else:
            cell[0] += count
            cell[1] += total

        if node is not None:
            self._node_bytes[node] = self._node_bytes.get(node, 0) + total

        clock = self.clock
        if clock is not None:
            index = int(clock() / self.window)
            bucket = self._windows.get(index)
            if bucket is None:
                bucket = self._windows[index] = {}
            bucket[category] = bucket.get(category, 0) + total
        return total

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    @property
    def unpriced(self) -> Dict[str, int]:
        """kind -> messages charged without an explicit cost-model entry."""
        return dict(sorted(self._unpriced.items()))

    def unpriced_total(self) -> int:
        """Messages charged against the DEFAULT_COST fallback overall."""
        return sum(self._unpriced.values())

    def total_messages(self) -> int:
        return sum(cell[0] for cell in self._by_category.values())

    def total_bytes(self) -> int:
        return sum(cell[1] for cell in self._by_category.values())

    def category_bytes(self, category: str) -> int:
        cell = self._by_category.get(category)
        return cell[1] if cell is not None else 0

    def category_messages(self, category: str) -> int:
        cell = self._by_category.get(category)
        return cell[0] if cell is not None else 0

    def top_nodes(self, limit: int = 5) -> List[dict]:
        """The *limit* most expensive senders (ties break on node id)."""
        ranked = sorted(self._node_bytes.items(), key=lambda kv: (-kv[1], kv[0]))
        return [{"node": node, "bytes": spent} for node, spent in ranked[:limit]]

    def rates(self, node_count: int, duration: float) -> Dict[str, float]:
        """Mean bytes/node/sim-second per category over a whole run."""
        if node_count <= 0 or duration <= 0:
            raise ValueError("node_count and duration must be positive")
        scale = node_count * duration
        return {
            category: round(cell[1] / scale, 6)
            for category, cell in sorted(self._by_category.items())
        }

    def window_rates(self, node_count: int) -> List[dict]:
        """Per-window bytes/node/sim-second, one row per elapsed window.

        Only windows that saw traffic appear (sparse); each row carries
        the window's start time so gaps are explicit.
        """
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        scale = node_count * self.window
        rows = []
        for index in sorted(self._windows):
            bucket = self._windows[index]
            rows.append(
                {
                    "start": round(index * self.window, 6),
                    "by_category": {
                        category: round(spent / scale, 6)
                        for category, spent in sorted(bucket.items())
                    },
                }
            )
        return rows

    def snapshot(self) -> dict:
        """Deterministic full dump: every axis sorted, plain types only."""
        return {
            "total_messages": self.total_messages(),
            "total_bytes": self.total_bytes(),
            "by_category": {
                category: {"messages": cell[0], "bytes": cell[1]}
                for category, cell in sorted(self._by_category.items())
            },
            "by_kind": {
                kind: {"messages": cell[0], "bytes": cell[1]}
                for kind, cell in sorted(self._by_kind.items())
            },
            "unpriced": self.unpriced,
            "nodes_charged": len(self._node_bytes),
            "top_nodes": self.top_nodes(5),
            "window_seconds": self.window,
            "windows": [
                {
                    "start": round(index * self.window, 6),
                    "by_category": {
                        category: spent
                        for category, spent in sorted(bucket.items())
                    },
                }
                for index, bucket in sorted(self._windows.items())
            ],
        }

    def summary(self, top: int = 5) -> dict:
        """Compact block for CLI ``--json`` output."""
        return {
            "total_messages": self.total_messages(),
            "total_bytes": self.total_bytes(),
            "by_category_bytes": {
                category: cell[1]
                for category, cell in sorted(self._by_category.items())
            },
            "unpriced_messages": self.unpriced_total(),
            "top_nodes": self.top_nodes(top),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostLedger(messages={self.total_messages()}, "
            f"bytes={self.total_bytes()}, "
            f"categories={len(self._by_category)})"
        )
