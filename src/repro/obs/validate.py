"""Validate a JSONL event log against the event schema.

CI's observability smoke step runs this over the export produced by
``repro metrics --events``::

    PYTHONPATH=src python -m repro.obs.validate events.jsonl

Exit status 0 means every line parsed and matched its event's schema;
problems are listed one per line on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.events import validate_jsonl_file


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="validate an observability JSONL event log",
    )
    parser.add_argument("path", type=Path, help="JSONL file to validate")
    args = parser.parse_args(argv)
    if not args.path.exists():
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    errors = validate_jsonl_file(args.path)
    lines = sum(
        1 for line in args.path.read_text(encoding="utf-8").splitlines() if line.strip()
    )
    if errors:
        for problem in errors:
            print(problem, file=sys.stderr)
        print(f"{args.path}: {len(errors)} problem(s) in {lines} record(s)", file=sys.stderr)
        return 1
    print(f"{args.path}: {lines} record(s) valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
