"""Validate observability artifacts: event logs and metric expositions.

CI's observability smoke step runs this over the export produced by
``repro metrics --events``::

    PYTHONPATH=src python -m repro.obs.validate events.jsonl
    PYTHONPATH=src python -m repro.obs.validate --prometheus metrics.prom

Exit status 0 means every line parsed and matched its schema; problems
are listed one per line on stderr.  :func:`check_prometheus_text` is
the strict text-exposition parser the live ``metrics_text()`` tests
use: every family must announce ``# HELP`` and ``# TYPE`` before its
first sample, names and labels must match the format grammar, and no
series may repeat.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.events import validate_jsonl_file

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)'
)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)

#: Sample-name suffixes each TYPE admits beyond the family name itself.
_TYPE_SUFFIXES: Dict[str, Tuple[str, ...]] = {
    "counter": (),
    "gauge": (),
    "summary": ("_sum", "_count"),
    "histogram": ("_bucket", "_sum", "_count"),
    "untyped": (),
}


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    """Which declared family does *sample_name* belong to, if any?"""
    if sample_name in types:
        return sample_name
    for family, kind in types.items():
        for suffix in _TYPE_SUFFIXES.get(kind, ()):
            if sample_name == family + suffix:
                return family
    return None


def check_prometheus_text(text: str) -> List[str]:
    """Strictly parse a Prometheus text exposition; returns problems.

    Enforced: line grammar (HELP/TYPE comments and samples), metric and
    label name charsets, float-parseable values, one TYPE per family
    declared *before* its first sample, a HELP line for every family,
    HELP preceding TYPE, and no duplicate (name, labels) series.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    helps: Set[str] = set()
    seen_samples: Set[Tuple[str, str]] = set()
    sampled_families: Set[str] = set()

    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Free-form comments are legal; only malformed HELP/TYPE
                # pseudo-comments are errors.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    problems.append(f"line {line_number}: malformed {parts[1]} line")
                continue
            keyword, name = parts[1], parts[2]
            if not _METRIC_NAME_RE.match(name):
                problems.append(
                    f"line {line_number}: invalid metric name {name!r} in {keyword}"
                )
                continue
            if keyword == "HELP":
                if name in helps:
                    problems.append(f"line {line_number}: duplicate HELP for {name}")
                helps.add(name)
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _TYPE_SUFFIXES:
                    problems.append(
                        f"line {line_number}: unknown TYPE {kind!r} for {name}"
                    )
                if name in types:
                    problems.append(f"line {line_number}: duplicate TYPE for {name}")
                if name in sampled_families:
                    problems.append(
                        f"line {line_number}: TYPE for {name} after its samples"
                    )
                if name not in helps:
                    problems.append(
                        f"line {line_number}: TYPE for {name} without preceding HELP"
                    )
                types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {line_number}: unparseable sample line {line!r}")
            continue
        name = match.group("name")
        label_text = match.group("labels")
        labels = label_text if label_text is not None else ""
        if label_text:
            consumed = sum(
                len(m.group(0)) for m in _LABEL_RE.finditer(label_text)
            )
            if consumed != len(label_text):
                problems.append(
                    f"line {line_number}: malformed labels {{{label_text}}}"
                )
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {line_number}: non-numeric value {match.group('value')!r}"
            )
        family = _family_of(name, types)
        if family is None:
            problems.append(
                f"line {line_number}: sample {name} has no preceding TYPE"
            )
        else:
            sampled_families.add(family)
            kind = types[family]
            if kind == "counter" and name == family and not name.endswith("_total"):
                problems.append(
                    f"line {line_number}: counter {name} missing _total suffix"
                )
        series = (name, labels)
        if series in seen_samples:
            problems.append(
                f"line {line_number}: duplicate series {name}{{{labels}}}"
            )
        seen_samples.add(series)
    for family in types:
        if family not in sampled_families:
            problems.append(f"family {family} declared but has no samples")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="validate an observability JSONL event log",
    )
    parser.add_argument("path", type=Path, help="file to validate")
    parser.add_argument(
        "--prometheus", action="store_true",
        help="treat the file as a Prometheus text exposition instead of "
             "an event JSONL",
    )
    args = parser.parse_args(argv)
    if not args.path.exists():
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    if args.prometheus:
        problems = check_prometheus_text(args.path.read_text(encoding="utf-8"))
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(f"{args.path}: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print(f"{args.path}: exposition valid")
        return 0
    errors = validate_jsonl_file(args.path)
    lines = sum(
        1 for line in args.path.read_text(encoding="utf-8").splitlines() if line.strip()
    )
    if errors:
        for problem in errors:
            print(problem, file=sys.stderr)
        print(f"{args.path}: {len(errors)} problem(s) in {lines} record(s)", file=sys.stderr)
        return 1
    print(f"{args.path}: {lines} record(s) valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
