"""The observer: one object bundling metrics, events and spans.

Core code holds a single ``obs`` reference and guards every
instrumentation site with ``if obs.enabled:`` (equivalently ``if obs:``
-- the null observer is falsy).  The default everywhere is
:data:`NULL_OBSERVER`, so a network built without an observer performs
*zero* observability work: no event objects, no label dicts, no span
allocations -- just one attribute test per site.  The perf suite's route
workloads enforce this (<= 2% budget).

Installing a real :class:`Observer` turns everything on at once: the
network's message counters land in ``observer.metrics`` (the network
adopts it as its stats registry), protocol events flow to
``observer.bus``, and traced operations deposit root spans in
``observer.spans``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs.events import Event, EventBus, EventRecord, UnpricedKindCharged
from repro.obs.ledger import CostLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span
from repro.obs.trace_context import TraceCollector


class Observer:
    """A live recorder: metrics registry + event bus + span collection.

    *clock* supplies sim-time timestamps for events (a simulation driver
    typically sets ``observer.clock = engine_now``); without one, all
    timestamps are 0.0 and ordering is carried by sequence numbers, so
    output stays deterministic.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = EventBus(clock=self._now)
        self.spans: List[Span] = []
        # Distributed tracing: flat span records keyed by trace id,
        # assembled into per-operation trees on demand (obs/trace_context).
        self.traces = TraceCollector()
        # Cost accounting: message/byte charges per activity category
        # (obs/ledger).  Instrumented layers cache a direct reference so
        # the ledger-off path stays one ``is not None`` test.
        self.ledger = ledger if ledger is not None else CostLedger()
        # Runtime twin of lint rule CONF001: an unpriced kind bumps a
        # visible counter on every charge and warns (as an event) once.
        self.ledger.on_unpriced = self._record_unpriced
        # Optional TimeSeriesRecorder (obs/timeseries): drivers that
        # sample metrics into windowed series install one here so the
        # telemetry plane and SLO burn rates can find it.
        self.timeseries = None

    def _record_unpriced(
        self, kind: str, category: str, fallback_bytes: int, first: bool
    ) -> None:
        self.metrics.counter("ledger.unpriced", kind=kind).increment()
        if first:
            self.emit(
                UnpricedKindCharged(
                    message_kind=kind,
                    fallback_category=category,
                    fallback_bytes=fallback_bytes,
                )
            )

    def _now(self) -> float:
        clock = self.clock
        return float(clock()) if clock is not None else 0.0

    def emit(self, event: Event) -> EventRecord:
        return self.bus.publish(event)

    def span(self, name: str, **attributes: object) -> Span:
        """Create a root span (callers build children via ``span.child``;
        the caller decides whether to :meth:`record_span` it)."""
        return Span(name, **attributes)

    def record_span(self, span: Span) -> Span:
        """Keep a finished root span for later inspection/export."""
        self.spans.append(span)
        return span

    def snapshot(self) -> dict:
        return self.metrics.snapshot()

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Observer(events={len(self.bus)}, spans={len(self.spans)}, "
            f"metrics={self.metrics!r})"
        )


class NullObserver:
    """The default no-op recorder.

    Falsy and with ``enabled = False``, so instrumented hot paths skip
    all observability work with a single attribute check.  The no-op
    methods exist only as a safety net for unguarded calls.
    """

    enabled = False
    metrics = None
    clock = None
    traces = None
    ledger = None
    timeseries = None

    def emit(self, event: Event) -> None:
        pass

    def span(self, name: str, **attributes: object) -> None:
        return None

    def record_span(self, span: Span) -> Span:
        return span

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullObserver()"


NULL_OBSERVER = NullObserver()
