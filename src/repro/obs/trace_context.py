"""W3C-style trace context and the distributed span collector.

One client operation on the live cluster -- an ``insert``, ``lookup``
or raw ``route`` -- is executed by many nodes: the origin, every
routing hop, the root, and the replica holders the root fans out to.
Each participant sees only its own slice of the work, so the layer
records *flat* span records (trace_id, span_id, parent_id) the way a
real distributed tracer does, and :class:`TraceCollector.assemble`
rebuilds the per-operation span tree afterwards from the parent links
alone.

Context propagates inside live messages as a ``traceparent`` header in
the W3C Trace Context format (``00-<trace_id>-<span_id>-<flags>``).
All identifiers are deterministic: trace ids come from an injected
seeded rng stream, and child span ids are derived with
:func:`repro.sim.rng.stable_seed` from the parent's ids plus a child
index -- never from wall-clock time or process randomness -- so a
seeded run serialises its traces byte-identically (the property the
live-trace determinism tests pin).

Timestamps are *logical*: the collector's monotonic tick, or sim-time
when the caller supplies it (the churn simulation stamps its lookup
traces with engine time).  Durations therefore order operations by how
much traced work happened during them, which is what the ``repro
trace`` slow-op log ranks by.
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.spans import Span
from repro.sim.rng import stable_seed

TRACEPARENT_VERSION = "00"
FLAG_SAMPLED = 0x01

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def derive_span_id(*parts: object) -> str:
    """A 16-hex-digit span id derived deterministically from *parts*."""
    return f"{stable_seed(*parts):016x}"


def new_trace_id(rng: random.Random) -> str:
    """A 32-hex-digit trace id drawn from an injected seeded stream."""
    return f"{rng.getrandbits(128):032x}"


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: which trace, which span, whose child."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sampled: bool = True

    @classmethod
    def root(cls, rng: random.Random, sampled: bool = True) -> "TraceContext":
        """Start a new trace; the root span id is derived from the
        trace id so the pair stays a pure function of the rng stream."""
        trace_id = new_trace_id(rng)
        return cls(
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, "root"),
            parent_id=None,
            sampled=sampled,
        )

    def child(self, *qualifiers: object) -> "TraceContext":
        """The context a sub-operation runs under.  *qualifiers*
        (attempt number, hop index, replica id, ...) make sibling span
        ids distinct and deterministic -- two runs of the same seeded
        scenario derive identical ids."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, self.span_id, *qualifiers),
            parent_id=self.span_id,
            sampled=self.sampled,
        )

    # ------------------------------------------------------------------ #
    # wire format
    # ------------------------------------------------------------------ #

    def to_traceparent(self) -> str:
        flags = FLAG_SAMPLED if self.sampled else 0
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{flags:02x}"
        )

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header; raises ValueError on any
        malformation (wrong field widths, non-hex, all-zero ids)."""
        match = _TRACEPARENT_RE.match(header)
        if match is None:
            raise ValueError(f"malformed traceparent: {header!r}")
        trace_id = match.group("trace_id")
        span_id = match.group("span_id")
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            raise ValueError(f"all-zero id in traceparent: {header!r}")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=None,  # the wire carries position, not ancestry
            sampled=bool(int(match.group("flags"), 16) & FLAG_SAMPLED),
        )


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, flat: ancestry is carried by ids alone."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    attributes: tuple  # sorted (key, value) pairs; hashable and ordered

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


class TraceCollector:
    """Collects flat span records and rebuilds per-trace span trees.

    The collector owns a logical clock: :meth:`tick` returns a strictly
    increasing float, so span start/end pairs order deterministically
    under seeded asyncio interleavings without ever reading the wall
    clock (lint rule DET002's concern).  Callers with real timestamps
    (sim-time) pass them explicitly instead.
    """

    def __init__(self) -> None:
        self._records: List[SpanRecord] = []
        self._by_trace: Dict[str, List[SpanRecord]] = {}
        self._clock = 0.0

    def tick(self) -> float:
        self._clock += 1.0
        return self._clock

    def record(
        self,
        ctx: TraceContext,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **attributes: object,
    ) -> SpanRecord:
        """Record one finished span under *ctx*.  Omitted timestamps are
        stamped from the logical clock (start == end: a point event)."""
        if start is None:
            start = self.tick()
        if end is None:
            end = start
        record = SpanRecord(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            name=name,
            start=start,
            end=end,
            attributes=tuple(sorted(attributes.items())),
        )
        self._records.append(record)
        self._by_trace.setdefault(ctx.trace_id, []).append(record)
        return record

    # ------------------------------------------------------------------ #
    # read-out
    # ------------------------------------------------------------------ #

    def records(self) -> List[SpanRecord]:
        return list(self._records)

    def trace_ids(self) -> List[str]:
        """Trace ids in first-seen order (deterministic per seed)."""
        return list(self._by_trace)

    def trace_records(self, trace_id: str) -> List[SpanRecord]:
        return list(self._by_trace.get(trace_id, []))

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ #
    # tree assembly
    # ------------------------------------------------------------------ #

    def assemble(self, trace_id: str) -> Span:
        """Rebuild the span tree for *trace_id* from parent links.

        Well-formedness is enforced, not assumed: exactly one root,
        every parent_id resolving inside the trace, and no duplicate
        span ids -- a violated link means context propagation broke,
        which is precisely what the concurrent-insert tests check.
        """
        records = self._by_trace.get(trace_id)
        if not records:
            raise KeyError(f"unknown trace: {trace_id}")
        by_id: Dict[str, SpanRecord] = {}
        for record in records:
            if record.span_id in by_id:
                raise ValueError(
                    f"trace {trace_id}: duplicate span id {record.span_id}"
                )
            by_id[record.span_id] = record
        roots = [r for r in records if r.parent_id is None]
        if len(roots) != 1:
            raise ValueError(
                f"trace {trace_id}: expected exactly one root span, "
                f"found {len(roots)}"
            )
        children: Dict[str, List[SpanRecord]] = {}
        for record in records:
            if record.parent_id is None:
                continue
            if record.parent_id not in by_id:
                raise ValueError(
                    f"trace {trace_id}: span {record.span_id} has unknown "
                    f"parent {record.parent_id}"
                )
            children.setdefault(record.parent_id, []).append(record)

        def build(record: SpanRecord) -> Span:
            span = Span(record.name, **dict(record.attributes))
            span.attributes["span_id"] = record.span_id
            span.start = record.start
            span.duration = record.end - record.start
            for child in sorted(
                children.get(record.span_id, []),
                key=lambda r: (r.start, r.span_id),
            ):
                span.adopt(build(child))
            return span

        return build(roots[0])

    def assemble_all(self) -> List[Span]:
        return [self.assemble(trace_id) for trace_id in self.trace_ids()]

    # ------------------------------------------------------------------ #
    # slow-op log
    # ------------------------------------------------------------------ #

    def top_spans(self, n: int = 10) -> List[SpanRecord]:
        """The *n* longest spans (the slow-op log), ordered by duration
        descending with (trace_id, span_id) as a deterministic
        tie-break."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return sorted(
            self._records,
            key=lambda r: (-r.duration, r.trace_id, r.span_id),
        )[:n]

    # ------------------------------------------------------------------ #
    # JSONL export
    # ------------------------------------------------------------------ #

    def to_jsonl(self) -> str:
        """One record per line in collection order: byte-identical
        across identical seeded runs."""
        return "".join(record.to_json() + "\n" for record in self._records)

    def write_jsonl(self, path: Union[str, Path]) -> int:
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")
        return len(self._records)


def load_trace_jsonl(path: Union[str, Path]) -> TraceCollector:
    """Rebuild a collector from an exported trace JSONL artifact (the
    ``repro.cli trace --out`` / chaos ``--traces`` files)."""
    collector = TraceCollector()
    clock = 0.0
    for line_number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_number}: invalid JSON ({exc.msg})") from exc
        try:
            record = SpanRecord(
                trace_id=obj["trace_id"],
                span_id=obj["span_id"],
                parent_id=obj["parent_id"],
                name=obj["name"],
                start=float(obj["start"]),
                end=float(obj["end"]),
                attributes=tuple(sorted(obj["attributes"].items())),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"line {line_number}: not a span record") from exc
        collector._records.append(record)
        collector._by_trace.setdefault(record.trace_id, []).append(record)
        clock = max(clock, record.end)
    collector._clock = clock
    return collector
