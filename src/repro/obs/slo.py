"""Service-level objectives: point verdicts and multi-window burn rates.

An SLO *spec* is a flat dict of named objectives (``{"p99_ms": 50.0,
"degraded_pct": 1.0}``); an *observation* dict carries what actually
happened under the same names.  :func:`evaluate_slo` compares the two
into a verdict block -- deterministic, plain-JSON, embeddable in any
report -- and :func:`burn_windows` adds the temporal dimension from a
:class:`~repro.obs.timeseries.TimeSeriesRecorder` snapshot: the classic
multi-window burn-rate rule, where *burn* is the fraction of the error
budget consumed per unit budget (burn 1.0 = exactly on budget; > 1
means the objective will be violated if the window's rate persists).
An alert requires **both** the short and the long horizon to burn hot,
so a single bad window cannot page and a slow leak cannot hide.

The load harness feeds the latency/degraded objectives
(:func:`evaluate_load_slo`); the chaos driver feeds availability and
loss (:func:`evaluate_chaos_slo`).  Both produce the same verdict
shape, so CI gates and the ops console render them identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Objective names a spec may use, with direction "observed <= objective
#: passes".  Everything is a "lower is better" budget by construction
#: (latency ms, degraded percentage, counts of bad things).
KNOWN_OBJECTIVES = (
    "p95_ms",
    "p99_ms",
    "degraded_pct",
    "files_lost",
    "unpriced",
)

#: The default ``repro load`` objective: zero degraded operations --
#: exactly the binary check the flag replaced.
DEFAULT_LOAD_SLO: Dict[str, float] = {"degraded_pct": 0.0}

#: The chaos driver's standing objectives: the seeded fault schedule is
#: allowed to fail some lookups mid-chaos (budgeted), but must lose no
#: files and charge no unpriced kinds.
CHAOS_SLO: Dict[str, float] = {
    "degraded_pct": 25.0,
    "files_lost": 0.0,
    "unpriced": 0.0,
}

#: Burn-rate horizons in windows: (short, long).
BURN_HORIZONS: Tuple[int, int] = (1, 5)


class SLOError(ValueError):
    """A malformed SLO spec string."""


def parse_slo(text: str) -> Dict[str, float]:
    """Parse ``"p99_ms=50,degraded_pct=1"`` into a spec dict.

    Unknown objective names and non-numeric values raise
    :class:`SLOError` with the offending token, so a CLI typo fails the
    run loudly instead of silently gating nothing.
    """
    spec: Dict[str, float] = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        name, separator, raw = token.partition("=")
        name = name.strip()
        if not separator:
            raise SLOError(f"objective {token!r} is not name=value")
        if name not in KNOWN_OBJECTIVES:
            raise SLOError(
                f"unknown objective {name!r} (known: {', '.join(KNOWN_OBJECTIVES)})"
            )
        try:
            spec[name] = float(raw.strip())
        except ValueError as error:
            raise SLOError(f"objective {name!r} value {raw!r} is not a number") \
                from error
    if not spec:
        raise SLOError(f"empty SLO spec {text!r}")
    return spec


def evaluate_slo(spec: Dict[str, float],
                 observations: Dict[str, Optional[float]]) -> dict:
    """Compare observations against a spec into a verdict block.

    A missing observation fails its objective (you cannot claim an SLO
    you did not measure); extra observations are ignored.
    """
    targets: List[dict] = []
    for name in sorted(spec):
        objective = float(spec[name])
        observed = observations.get(name)
        ok = observed is not None and float(observed) <= objective
        targets.append({
            "name": name,
            "objective": objective,
            "observed": round(float(observed), 6) if observed is not None else None,
            "ok": ok,
        })
    return {"ok": all(target["ok"] for target in targets), "targets": targets}


def burn_windows(series_snapshot: dict, prefix: str, bad_marker: str,
                 budget_fraction: float,
                 horizons: Tuple[int, int] = BURN_HORIZONS) -> dict:
    """Multi-window burn rates for one good/bad counter family.

    *prefix* selects the counter family (``load.ops``,
    ``churn.lookups``); any series whose display name contains
    *bad_marker* (``'outcome="degraded"'``) counts as budget spend, every
    series under the prefix counts toward the total.  *budget_fraction*
    is the allowed bad fraction (``degraded_pct / 100``); a zero budget
    cannot express a finite burn, so its ``burn_*`` values are None and
    alerting degenerates to "any bad event in the horizon".
    """
    per_window: Dict[int, List[float]] = {}
    for name, rows in series_snapshot.get("counters", {}).items():
        if name != prefix and not name.startswith(prefix + "{"):
            continue
        bad = bad_marker in name
        for index, value in rows:
            bucket = per_window.setdefault(int(index), [0.0, 0.0])
            bucket[1] += value
            if bad:
                bucket[0] += value
    windows = [[index, per_window[index][0], per_window[index][1]]
               for index in sorted(per_window)]

    def burn_over(count: int) -> Optional[float]:
        tail = windows[-count:]
        bad = sum(row[1] for row in tail)
        total = sum(row[2] for row in tail)
        if total <= 0:
            return 0.0
        fraction = bad / total
        if budget_fraction <= 0:
            return None
        return round(fraction / budget_fraction, 6)

    short, long = horizons
    burn_short = burn_over(short)
    burn_long = burn_over(long)
    if budget_fraction <= 0:
        alerting = any(row[1] > 0 for row in windows[-long:])
    else:
        alerting = (burn_short is not None and burn_short > 1.0
                    and burn_long is not None and burn_long > 1.0)
    return {
        "budget_fraction": round(budget_fraction, 6),
        "windows": windows,
        f"burn_{short}w": burn_short,
        f"burn_{long}w": burn_long,
        "alerting": alerting,
    }


def _worst_percentile(ops: Dict[str, dict], key: str) -> Optional[float]:
    values = [stats[key] for stats in ops.values() if key in stats]
    return max(values) if values else None


def evaluate_load_slo(spec: Dict[str, float], report,
                      unpriced_total: int = 0,
                      series_snapshot: Optional[dict] = None) -> dict:
    """The load harness's verdict: latency percentiles (worst op),
    degraded-op ratio, unpriced-charge budget, plus degraded burn rates
    when a windowed series snapshot is available."""
    total = report.total_operations + sum(report.errors.values())
    degraded = sum(report.errors.values())
    observations: Dict[str, Optional[float]] = {
        "p95_ms": _worst_percentile(report.ops, "p95_ms"),
        "p99_ms": _worst_percentile(report.ops, "p99_ms"),
        "degraded_pct": (100.0 * degraded / total) if total else 0.0,
        "unpriced": float(unpriced_total),
    }
    verdict = evaluate_slo(spec, observations)
    if series_snapshot is not None and "degraded_pct" in spec:
        verdict["burn"] = {
            "degraded": burn_windows(
                series_snapshot, "load.ops", 'outcome="degraded"',
                budget_fraction=spec["degraded_pct"] / 100.0,
            )
        }
    return verdict


def evaluate_chaos_slo(availability: float, files_lost: int,
                       unpriced_total: int,
                       series_snapshot: Optional[dict] = None,
                       spec: Optional[Dict[str, float]] = None) -> dict:
    """The chaos driver's verdict over its deterministic outcomes.

    Everything here is schedule-determined (lookup outcomes, loss
    census, ledger audit), so two same-seed runs embed byte-identical
    verdicts -- the property the telemetry acceptance gate pins.
    """
    spec = dict(CHAOS_SLO if spec is None else spec)
    observations: Dict[str, Optional[float]] = {
        "degraded_pct": round(100.0 * (1.0 - availability), 6),
        "files_lost": float(files_lost),
        "unpriced": float(unpriced_total),
    }
    verdict = evaluate_slo(spec, observations)
    if series_snapshot is not None and "degraded_pct" in spec:
        verdict["burn"] = {
            "degraded": burn_windows(
                series_snapshot, "churn.lookups", 'outcome="failed"',
                budget_fraction=spec["degraded_pct"] / 100.0,
            )
        }
    return verdict


def format_verdict(verdict: dict) -> List[str]:
    """Human-readable verdict lines for text reports and the console."""
    lines = [f"slo: {'PASS' if verdict['ok'] else 'FAIL'}"]
    for target in verdict["targets"]:
        status = "ok " if target["ok"] else "MISS"
        observed = target["observed"]
        shown = "unmeasured" if observed is None else f"{observed:g}"
        lines.append(
            f"  [{status}] {target['name']}: {shown} "
            f"(objective <= {target['objective']:g})"
        )
    for name, burn in verdict.get("burn", {}).items():
        keys = [key for key in burn if key.startswith("burn_")]
        rates = ", ".join(
            f"{key[5:]}={burn[key] if burn[key] is not None else 'n/a'}"
            for key in sorted(keys)
        )
        flag = " ALERT" if burn.get("alerting") else ""
        lines.append(f"  burn[{name}]: {rates}{flag}")
    return lines
