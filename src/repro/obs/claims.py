"""Continuous claim observatory: the paper's claims as live probes.

The reproduction's headline claims (hop count C1, per-node state C2,
route stretch C4, nearest-replica lookups C5, storage utilization C8,
per-node balance C10) are not one-off benchmark numbers -- a deployment
should be able to *watch* them.  This module folds a metrics snapshot
(and the end-of-run deployment census) into per-claim pass/fail
verdicts, each carrying the observed value next to the paper's target,
rendered deterministically as markdown or JSON.

The inputs are artifacts, not live objects: a chaos run's report
(``repro.faults.chaos.run_chaos`` embeds its metrics snapshot and
deployment parameters) is enough to re-evaluate every verdict offline,
which is what ``python -m repro.obs.report`` does in CI.

Pass thresholds are deliberately looser than the paper's headline
numbers: the paper measured 100k-node deployments on measured internet
topologies, while a chaos run drives ~30 nodes on a synthetic plane
under injected faults.  A verdict failing therefore signals a
*regression in the reproduction*, not a deviation from the paper's
exact percentages; the observed-vs-target columns keep the headline
numbers visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ClaimVerdict:
    """One claim probe's outcome: observed value vs the paper's target."""

    claim: str
    title: str
    passed: bool
    observed: str
    target: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "claim": self.claim,
            "title": self.title,
            "passed": self.passed,
            "observed": self.observed,
            "target": self.target,
            "detail": self.detail,
        }


# ---------------------------------------------------------------------- #
# deployment census (C2 / C8 / C10 inputs)
# ---------------------------------------------------------------------- #

def record_deployment_census(network) -> None:
    """Fold per-node state and storage occupancy into the metrics
    registry.

    Routing metrics accumulate during a run, but state size and storage
    balance are *point-in-time* properties; this census stamps them as
    ``census.*`` instruments (reset on every call, so re-running it
    reflects the current deployment, not a mixture).
    """
    obs = network.obs
    if not obs.enabled:
        return
    metrics = obs.metrics
    entries = metrics.histogram("census.state_entries")
    files = metrics.histogram("census.files_per_node")
    entries.reset()
    files.reset()
    used = 0
    capacity = 0
    pastry = network.pastry
    for node_id in pastry.live_ids():
        state = pastry.nodes[node_id].state
        count = sum(1 for _ in state.routing_table.entries())
        count += len(state.leaf_set.members())
        count += len(state.neighborhood.members())
        entries.add(count)
        past_node = network._past_nodes.get(node_id)
        if past_node is not None:
            files.add(past_node.store.replica_count())
            used += past_node.store.used
            capacity += past_node.store.capacity
    metrics.gauge("census.storage_used_bytes").set(float(used))
    metrics.gauge("census.storage_capacity_bytes").set(float(capacity))
    metrics.gauge("census.inserts_attempted").set(float(network.inserts_attempted))
    metrics.gauge("census.inserts_rejected").set(float(network.inserts_rejected))


def record_overlay_census(pastry) -> None:
    """Stamp the per-node state census for a bare Pastry overlay.

    Large-scale deployments (``repro deploy --nodes 100000``) run the
    overlay without the PAST storage layer on top; this census fills
    ``census.state_entries`` -- the C2 input -- from routing state alone,
    leaving the storage gauges untouched.  Reset-on-call like
    :func:`record_deployment_census`.
    """
    obs = pastry.obs
    if not obs.enabled:
        return
    entries = obs.metrics.histogram("census.state_entries")
    entries.reset()
    nodes = pastry.nodes
    for node_id in pastry.live_ids():
        state = nodes[node_id].state
        count = sum(1 for _ in state.routing_table.entries())
        count += len(state.leaf_set.members())
        count += len(state.neighborhood.members())
        entries.add(count)


# ---------------------------------------------------------------------- #
# snapshot accessors
# ---------------------------------------------------------------------- #

def _histogram(snapshot: dict, name: str) -> Optional[dict]:
    return snapshot.get("histograms", {}).get(name)

def _gauge(snapshot: dict, name: str) -> Optional[float]:
    return snapshot.get("gauges", {}).get(name)

def _counters_by_prefix(snapshot: dict, prefix: str) -> Dict[str, int]:
    return {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if name.startswith(prefix)
    }


def _routing_bound(node_count: int, bits_per_digit: int) -> int:
    """ceil(log_2^b N): the paper's expected-hops / table-rows bound."""
    if node_count <= 1:
        return 1
    return max(1, math.ceil(math.log(node_count, 2 ** bits_per_digit)))


# ---------------------------------------------------------------------- #
# the probes
# ---------------------------------------------------------------------- #

def _probe_c1(snapshot: dict, params: dict) -> ClaimVerdict:
    n = params["final_node_count"]
    b = params["bits_per_digit"]
    bound = _routing_bound(n, b)
    hist = _histogram(snapshot, 'route.hops{category="lookup"}')
    if hist is None or hist["count"] == 0:
        return ClaimVerdict(
            "C1", "Routing reaches the root in < ceil(log_2^b N) hops",
            False, "no lookup routes recorded",
            f"mean < {bound} hops (N={n}, b={b})",
            "the route.hops{category=lookup} histogram is empty",
        )
    mean = hist["mean"]
    return ClaimVerdict(
        "C1", "Routing reaches the root in < ceil(log_2^b N) hops",
        mean < bound + 0.5,
        f"mean {mean:.2f} hops (p95 {hist['p95']:.1f}) over {int(hist['count'])} lookups",
        f"mean < ceil(log_2^{b} N) = {bound} (N={n})",
    )


def _probe_c2(snapshot: dict, params: dict) -> ClaimVerdict:
    n = params["final_node_count"]
    b = params["bits_per_digit"]
    rows = _routing_bound(n, b)
    limit = (2 ** b - 1) * rows + params["leaf_capacity"] \
        + params["neighborhood_capacity"]
    hist = _histogram(snapshot, "census.state_entries")
    target = (
        f"max <= (2^{b}-1)*{rows} + l + |M| = {limit} entries"
    )
    if hist is None or hist["count"] == 0:
        return ClaimVerdict(
            "C2", "Per-node state stays O(log N)", False,
            "no state census recorded", target,
            "run record_deployment_census before snapshotting",
        )
    return ClaimVerdict(
        "C2", "Per-node state stays O(log N)",
        hist["max"] <= limit,
        f"max {int(hist['max'])} / mean {hist['mean']:.1f} entries "
        f"across {int(hist['count'])} nodes",
        target,
    )


def _probe_c4(snapshot: dict, params: dict) -> ClaimVerdict:
    hist = _histogram(snapshot, 'route.stretch{category="lookup"}')
    target = "mean stretch <= 2.5 (paper: ~1.5 relative delay penalty)"
    if hist is None or hist["count"] == 0:
        return ClaimVerdict(
            "C4", "Route stretch stays small", False,
            "no lookup stretch samples", target,
            "the route.stretch{category=lookup} histogram is empty",
        )
    mean = hist["mean"]
    return ClaimVerdict(
        "C4", "Route stretch stays small",
        mean <= 2.5,
        f"mean stretch {mean:.2f} (p95 {hist['p95']:.2f}) "
        f"over {int(hist['count'])} routes",
        target,
    )


def _probe_c5(snapshot: dict, params: dict) -> ClaimVerdict:
    ranks = _counters_by_prefix(snapshot, "lookup.replica_rank")
    total = sum(ranks.values())
    target = "rank-1 >= 50%, rank-<=2 >= 75% (paper: 76% / 92%, k=5)"
    if total == 0:
        return ClaimVerdict(
            "C5", "Lookups are served by a nearby replica", False,
            "no ranked lookups recorded", target,
            "the lookup.replica_rank counters are empty",
        )
    rank1 = ranks.get('lookup.replica_rank{rank="1"}', 0)
    rank2 = ranks.get('lookup.replica_rank{rank="2"}', 0)
    frac1 = rank1 / total
    frac2 = (rank1 + rank2) / total
    return ClaimVerdict(
        "C5", "Lookups are served by a nearby replica",
        frac1 >= 0.5 and frac2 >= 0.75,
        f"nearest {frac1:.0%}, two-nearest {frac2:.0%} of {total} lookups",
        target,
    )


def _probe_c8(snapshot: dict, params: dict) -> ClaimVerdict:
    attempted = _gauge(snapshot, "census.inserts_attempted") or 0.0
    rejected = _gauge(snapshot, "census.inserts_rejected") or 0.0
    used = _gauge(snapshot, "census.storage_used_bytes") or 0.0
    capacity = _gauge(snapshot, "census.storage_capacity_bytes") or 0.0
    target = "insert rejection rate <= 5% (paper: >95% util, <5% rejected)"
    if attempted == 0:
        return ClaimVerdict(
            "C8", "High utilization with few rejections", False,
            "no inserts attempted", target,
            "census gauges missing or the run inserted nothing",
        )
    rejection = rejected / attempted
    utilization = used / capacity if capacity else 0.0
    return ClaimVerdict(
        "C8", "High utilization with few rejections",
        rejection <= 0.05,
        f"{rejection:.1%} of {int(attempted)} inserts rejected; "
        f"utilization {utilization:.2%}",
        target,
    )


def _probe_c10(snapshot: dict, params: dict) -> ClaimVerdict:
    hist = _histogram(snapshot, "census.files_per_node")
    k = params.get("replication_factor", 3)
    target = "max per-node files <= max(k+3, 4*mean) (no hot node)"
    if hist is None or hist["count"] == 0:
        return ClaimVerdict(
            "C10", "Files balance across nodes", False,
            "no storage census recorded", target,
            "run record_deployment_census before snapshotting",
        )
    mean = hist["mean"]
    limit = max(k + 3, 4.0 * mean)
    return ClaimVerdict(
        "C10", "Files balance across nodes",
        hist["max"] <= limit,
        f"max {int(hist['max'])} / mean {mean:.2f} files "
        f"across {int(hist['count'])} nodes",
        target,
    )


# ---------------------------------------------------------------------- #
# curve probes (scale-curve observatory inputs)
# ---------------------------------------------------------------------- #
#
# Point probes check one deployment; curve probes check the *asymptote*:
# ``repro.obs.scaling`` sweeps deployments across N, fits a.log2(N)+b
# and c.N^p models to each measured quantity, and stamps the fitted
# coefficients as ``scaling.*`` gauges.  A power-law exponent p near 0
# is logarithmic growth; p >= 1 would be linear.  The thresholds leave
# head-room over the paper's O(log N) claims so a verdict flip signals a
# scaling regression, not sweep noise.

def _curve_inputs(snapshot: dict, quantity: str):
    return (
        _gauge(snapshot, f"scaling.{quantity}.power_exponent"),
        _gauge(snapshot, f"scaling.{quantity}.log_rmse"),
        _gauge(snapshot, "scaling.sweep_points") or 0.0,
    )


def _probe_c1_curve(snapshot: dict, params: dict) -> ClaimVerdict:
    exponent, rmse, points = _curve_inputs(snapshot, "hops")
    target = "fitted exponent p <= 0.5 over >= 4 sweep sizes (O(log N) hops)"
    if exponent is None or points < 4:
        return ClaimVerdict(
            "C1-curve", "Mean hops grow logarithmically across the N-sweep",
            False, f"no hop curve fitted ({int(points)} sweep points)", target,
            "run repro scale-curves with at least 4 sizes",
        )
    return ClaimVerdict(
        "C1-curve", "Mean hops grow logarithmically across the N-sweep",
        exponent <= 0.5,
        f"power-law exponent {exponent:.3f}, log-fit rmse {rmse:.3f} hops "
        f"over {int(points)} sizes",
        target,
    )


def _probe_c2_curve(snapshot: dict, params: dict) -> ClaimVerdict:
    exponent, rmse, points = _curve_inputs(snapshot, "state")
    target = "fitted exponent p <= 0.5 over >= 4 sweep sizes (O(log N) state)"
    if exponent is None or points < 4:
        return ClaimVerdict(
            "C2-curve", "Per-node state grows logarithmically across the N-sweep",
            False, f"no state curve fitted ({int(points)} sweep points)", target,
            "run repro scale-curves with at least 4 sizes",
        )
    return ClaimVerdict(
        "C2-curve", "Per-node state grows logarithmically across the N-sweep",
        exponent <= 0.5,
        f"power-law exponent {exponent:.3f}, log-fit rmse {rmse:.3f} entries "
        f"over {int(points)} sizes",
        target,
    )


def _probe_c11(snapshot: dict, params: dict) -> ClaimVerdict:
    exponent, _, points = _curve_inputs(snapshot, "maintenance")
    rate = _gauge(snapshot, "scaling.maintenance.max_rate")
    target = (
        "per-node maintenance bytes/sim-second exponent p <= 0.8 "
        "(sublinear in N under seeded churn)"
    )
    if exponent is None or points < 4 or rate is None or rate <= 0:
        return ClaimVerdict(
            "C11", "Maintenance bandwidth per node stays sublinear in N",
            False,
            f"no maintenance curve fitted ({int(points)} sweep points)", target,
            "the churn segment recorded no repair/leaf-stabilize bytes",
        )
    return ClaimVerdict(
        "C11", "Maintenance bandwidth per node stays sublinear in N",
        exponent <= 0.8,
        f"power-law exponent {exponent:.3f}; "
        f"{rate:.1f} bytes/node/sim-second at the largest N",
        target,
    )


_PROBES = {
    "C1": _probe_c1,
    "C2": _probe_c2,
    "C4": _probe_c4,
    "C5": _probe_c5,
    "C8": _probe_c8,
    "C10": _probe_c10,
    "C1-curve": _probe_c1_curve,
    "C2-curve": _probe_c2_curve,
    "C11": _probe_c11,
}

#: The single-deployment probes every chaos artifact answers (the
#: pre-curve default, so legacy artifacts keep evaluating cleanly).
POINT_CLAIMS = ("C1", "C2", "C4", "C5", "C8", "C10")

#: The asymptotic probes a scale-curve artifact answers.
CURVE_CLAIMS = ("C1-curve", "C2-curve", "C11")


def evaluate_claims(
    snapshot: dict, params: dict, claims: Optional[List[str]] = None
) -> List[ClaimVerdict]:
    """Run claim probes over *snapshot* (a ``MetricsRegistry.snapshot()``
    dict) with deployment *params* (node count, b, l, |M|, k).

    *claims* selects a subset by name (e.g. ``("C1", "C2")`` for a
    routing-only overlay with no storage layer to probe); the default
    runs the point probes (:data:`POINT_CLAIMS`) -- curve probes only
    make sense on a scale-sweep artifact, whose ``claims`` list selects
    them explicitly.
    """
    if claims is None:
        claims = POINT_CLAIMS
    unknown = sorted(set(claims) - set(_PROBES))
    if unknown:
        raise ValueError(f"unknown claims: {', '.join(unknown)}")
    selected = [_PROBES[claim] for claim in claims]
    return [probe(snapshot, params) for probe in selected]


# ---------------------------------------------------------------------- #
# rendering
# ---------------------------------------------------------------------- #

def render_markdown(verdicts: List[ClaimVerdict],
                    params: Optional[dict] = None) -> str:
    """A deterministic markdown claim report (CI artifact)."""
    lines = ["# Claim observatory report", ""]
    if params:
        rendered = ", ".join(
            f"{key}={params[key]}" for key in sorted(params)
        )
        lines += [f"Deployment: {rendered}", ""]
    lines += [
        "| claim | verdict | observed | target |",
        "| --- | --- | --- | --- |",
    ]
    for verdict in verdicts:
        status = "PASS" if verdict.passed else "FAIL"
        lines.append(
            f"| {verdict.claim} | {status} | {verdict.observed} "
            f"| {verdict.target} |"
        )
    failures = [v for v in verdicts if not v.passed]
    lines.append("")
    lines.append(
        f"{len(verdicts) - len(failures)}/{len(verdicts)} claims pass."
    )
    for verdict in failures:
        detail = f" ({verdict.detail})" if verdict.detail else ""
        lines.append(f"- FAIL {verdict.claim}: {verdict.title}{detail}")
    return "\n".join(lines) + "\n"


def to_json_dict(verdicts: List[ClaimVerdict],
                 params: Optional[dict] = None) -> dict:
    return {
        "params": dict(sorted(params.items())) if params else {},
        "verdicts": [verdict.to_dict() for verdict in verdicts],
        "passed": all(verdict.passed for verdict in verdicts),
    }
