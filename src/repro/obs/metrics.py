"""Named counters, gauges and histograms with labels.

The registry is the system's single accounting surface: protocol message
counters (claim C3), hop-count histograms (C1), storage rejections by
reason (C8/C9) and cache hits (C11) all land here, so every benchmark
reads the same instruments instead of keeping ad-hoc tallies.

Instruments are identified by ``(name, labels)``; looking one up twice
returns the same object.  Snapshots iterate in sorted order, so two runs
that record the same values produce byte-identical output -- traces are
diffable across seeded runs.  :meth:`MetricsRegistry.to_prometheus`
renders the standard text exposition for live (asyncio) nodes.

This module supersedes the old ``repro.sim.trace`` classes; the shim
module has been deleted after its deprecation cycle.
"""

from __future__ import annotations

import math
import re
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_instrument_name(name: str, labels: LabelItems) -> str:
    """Canonical display name: ``route.hops{category="lookup"}``."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    @property
    def display_name(self) -> str:
        return format_instrument_name(self.name, self.labels)

    def __repr__(self) -> str:
        return f"Counter({self.display_name!r}, {self.value})"


class Gauge:
    """A named value that can go up and down (e.g. bytes in use)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def increment(self, amount: float = 1.0) -> None:
        self.value += amount

    def decrement(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    @property
    def display_name(self) -> str:
        return format_instrument_name(self.name, self.labels)

    def __repr__(self) -> str:
        return f"Gauge({self.display_name!r}, {self.value})"


class Histogram:
    """A streaming histogram over numeric samples.

    Keeps every sample (experiments here are small enough) so exact
    percentiles are available; also maintains running sum/sum-of-squares
    for O(1) mean and variance.
    """

    def __init__(self, name: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.samples: List[float] = []
        self._sum = 0.0
        self._sum_sq = 0.0

    def add(self, value: float) -> None:
        self.samples.append(value)
        self._sum += value
        self._sum_sq += value * value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def reset(self) -> None:
        self.samples.clear()
        self._sum = 0.0
        self._sum_sq = 0.0

    @property
    def display_name(self) -> str:
        return format_instrument_name(self.name, self.labels)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self._sum / len(self.samples)

    @property
    def variance(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self._sum / n
        return max((self._sum_sq - n * mean * mean) / (n - 1), 0.0)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile with linear interpolation; q in [0, 100].

        Edge cases are pinned down: q is validated even when the
        histogram is empty (an out-of-range q is a caller bug regardless
        of sample count), an empty histogram reports 0.0, a single
        sample is every percentile of itself, and q=0 / q=100 return the
        exact minimum / maximum with no interpolation arithmetic.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        if q == 0.0:
            return ordered[0]
        if q == 100.0:
            return ordered[-1]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] + weight * (ordered[high] - ordered[low])

    def bucketize(self, bucket_width: float) -> Dict[float, int]:
        """Group samples into fixed-width buckets keyed by bucket start."""
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        buckets: Dict[float, int] = defaultdict(int)
        for sample in self.samples:
            buckets[math.floor(sample / bucket_width) * bucket_width] += 1
        return dict(buckets)

    def frequency(self) -> Dict[float, int]:
        """Exact value -> count map (useful for integer samples like hops)."""
        freq: Dict[float, int] = defaultdict(int)
        for sample in self.samples:
            freq[sample] += 1
        return dict(freq)

    def summary(self) -> Dict[str, float]:
        """A dict of the headline statistics, ready for table rendering."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.display_name!r}, n={self.count}, mean={self.mean:.3f})"


class MetricsRegistry:
    """A named, labelled collection of counters, gauges and histograms.

    One registry typically belongs to one simulation run; components look
    up their instruments by ``(name, labels)`` so benchmarks and the
    ``repro metrics`` CLI can read them afterwards.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        # Instrument name -> HELP text for the Prometheus exposition.
        self._help: Dict[str, str] = {}

    def describe(self, name: str, help_text: str) -> None:
        """Attach a HELP text to the instrument family *name* (the
        dotted metric name, before exposition sanitisation)."""
        self._help[name] = help_text

    # ------------------------------------------------------------------ #
    # instrument lookup (create-on-first-use)
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: str) -> Counter:
        # Label-free lookups skip the sort: they dominate hot paths
        # (per-hop message tallies), where the generator shows up.
        key = (name, _label_items(labels)) if labels else (name, ())
        counter = self._counters.get(key)
        if counter is None:
            counter = Counter(name, key[1])
            self._counters[key] = counter
        return counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_items(labels)) if labels else (name, ())
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = Gauge(name, key[1])
            self._gauges[key] = gauge
        return gauge

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _label_items(labels)) if labels else (name, ())
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(name, key[1])
            self._histograms[key] = histogram
        return histogram

    # ------------------------------------------------------------------ #
    # read-out (sorted, hence deterministic)
    # ------------------------------------------------------------------ #

    def counters(self) -> List[Tuple[str, int]]:
        return [
            (c.display_name, c.value)
            for _, c in sorted(self._counters.items())
        ]

    def gauges(self) -> List[Tuple[str, float]]:
        return [
            (g.display_name, g.value)
            for _, g in sorted(self._gauges.items())
        ]

    def histograms(self) -> List[Tuple[str, Histogram]]:
        return [
            (h.display_name, h)
            for _, h in sorted(self._histograms.items())
        ]

    def snapshot(self) -> dict:
        """A plain-dict dump of every instrument, deterministically
        ordered -- the payload of ``repro metrics``."""
        return {
            "counters": dict(self.counters()),
            "gauges": dict(self.gauges()),
            "histograms": {
                name: histogram.summary() for name, histogram in self.histograms()
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------ #
    # structured export / federation (telemetry plane)
    # ------------------------------------------------------------------ #

    def export(self) -> dict:
        """A plain-JSON structural dump: names, label pairs, raw values
        -- and for histograms the full sample lists, so a federating
        reader recovers exact percentiles.  Unlike :meth:`snapshot`,
        nothing is folded into display names: a remote scraper rebuilds
        real instruments from this via :meth:`absorb`."""
        return {
            "counters": [
                [counter.name, [list(item) for item in counter.labels],
                 counter.value]
                for _, counter in sorted(self._counters.items())
            ],
            "gauges": [
                [gauge.name, [list(item) for item in gauge.labels], gauge.value]
                for _, gauge in sorted(self._gauges.items())
            ],
            "histograms": [
                [histogram.name, [list(item) for item in histogram.labels],
                 list(histogram.samples)]
                for _, histogram in sorted(self._histograms.items())
            ],
            "help": dict(sorted(self._help.items())),
        }

    def absorb(self, export: dict,
               extra_labels: Optional[Dict[str, str]] = None) -> None:
        """Fold an :meth:`export` into this registry, optionally adding
        labels (the telemetry collector adds ``node="<id>"`` so N nodes'
        instruments coexist in one federated registry).  Counter values
        add, gauge values overwrite, histogram samples append; HELP
        texts install without displacing existing ones."""
        extra = {str(k): str(v) for k, v in (extra_labels or {}).items()}
        for name, items, value in export.get("counters", []):
            labels = {str(k): str(v) for k, v in items}
            labels.update(extra)
            self.counter(name, **labels).increment(value)
        for name, items, value in export.get("gauges", []):
            labels = {str(k): str(v) for k, v in items}
            labels.update(extra)
            self.gauge(name, **labels).set(value)
        for name, items, samples in export.get("histograms", []):
            labels = {str(k): str(v) for k, v in items}
            labels.update(extra)
            self.histogram(name, **labels).extend(samples)
        for name, help_text in export.get("help", {}).items():
            if name not in self._help:
                self.describe(name, help_text)

    # ------------------------------------------------------------------ #
    # Prometheus text exposition (live nodes)
    # ------------------------------------------------------------------ #

    def to_prometheus(self) -> str:
        """The standard text exposition format, for scraping live nodes.

        Metric names are sanitised (dots become underscores); counters
        get the conventional ``_total`` suffix; histograms expose
        ``_count``, ``_sum`` and three quantile series.  Every family is
        announced with ``# HELP`` (from :meth:`describe`, falling back
        to the dotted instrument name) and ``# TYPE`` before its first
        sample -- the exposition-format contract a strict scraper
        enforces (`tests` validate it with a strict parser).
        """
        lines: List[str] = []

        def prom_name(name: str) -> str:
            return _PROM_BAD_CHARS.sub("_", name)

        def prom_labels(labels: LabelItems, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
            items = labels + extra
            if not items:
                return ""
            return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"

        def fmt(value: float) -> str:
            if isinstance(value, float) and value.is_integer():
                return str(int(value))
            return repr(value)

        announced: set = set()

        def family(exposed: str, instrument: str, kind: str) -> None:
            """HELP + TYPE for *exposed*, once, before its first sample."""
            if exposed in announced:
                return
            announced.add(exposed)
            help_text = self._help.get(instrument, f"instrument {instrument}")
            # HELP text is a single escaped line per the format spec.
            help_text = help_text.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {exposed} {help_text}")
            lines.append(f"# TYPE {exposed} {kind}")

        for _, counter in sorted(self._counters.items()):
            name = prom_name(counter.name) + "_total"
            family(name, counter.name, "counter")
            lines.append(f"{name}{prom_labels(counter.labels)} {counter.value}")
        for _, gauge in sorted(self._gauges.items()):
            name = prom_name(gauge.name)
            family(name, gauge.name, "gauge")
            lines.append(f"{name}{prom_labels(gauge.labels)} {fmt(gauge.value)}")
        for _, histogram in sorted(self._histograms.items()):
            name = prom_name(histogram.name)
            family(name, histogram.name, "summary")
            for q in (0.5, 0.95, 0.99):
                quantile = (("quantile", repr(q)),)
                lines.append(
                    f"{name}{prom_labels(histogram.labels, quantile)} "
                    f"{fmt(histogram.percentile(q * 100))}"
                )
            lines.append(f"{name}_sum{prom_labels(histogram.labels)} {fmt(histogram.sum)}")
            lines.append(f"{name}_count{prom_labels(histogram.labels)} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
