"""Span trees for multi-hop operations, and route explanation.

A route or a join is one logical operation spread over many nodes; a
:class:`Span` records it as a tree -- the root names the operation, each
child records one hop together with the routing rule that fired *at
decision time* (no after-the-fact re-derivation).  Spans render to JSON
(``repro route --json``) and to the ASCII trace the CLI has always
printed, via :func:`span_to_explanations` / :func:`render_route`.

The route-explanation half answers "which rule fired at this node?":
:func:`explain_route` routes a key and annotates every hop by
re-deriving the decision from the deciding node's state, while
:func:`span_to_explanations` converts a decision-time route span into
the same :class:`HopExplanation` rows, so both sources render
identically.  (This API originally lived in ``repro.analysis.tracing``;
that shim has since been deleted.)

Spans carry no wall-clock state: attributes and structure only, plus an
optional sim-time interval, so a seeded run serialises byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only; see note below
    from repro.pastry.network import PastryNetwork, RouteResult


class Span:
    """One node of a span tree."""

    __slots__ = ("name", "attributes", "children", "start", "duration")

    def __init__(self, name: str, **attributes: object) -> None:
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes)
        self.children: List["Span"] = []
        self.start: Optional[float] = None
        self.duration: Optional[float] = None

    def child(self, name: str, **attributes: object) -> "Span":
        """Create and attach a child span."""
        span = Span(name, **attributes)
        self.children.append(span)
        return span

    def adopt(self, span: "Span") -> "Span":
        """Attach an already-built span (e.g. a route under a join)."""
        self.children.append(span)
        return span

    def set(self, **attributes: object) -> None:
        """Merge attributes (outcome fields set when the operation ends)."""
        self.attributes.update(attributes)

    def walk(self):
        """Depth-first iteration over the tree, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """A deterministic plain-dict form (attributes key-sorted)."""
        node: dict = {
            "name": self.name,
            "attributes": {
                key: self.attributes[key] for key in sorted(self.attributes)
            },
        }
        if self.start is not None:
            node["start"] = self.start
        if self.duration is not None:
            node["duration"] = self.duration
        node["children"] = [child.to_dict() for child in self.children]
        return node

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def render(self, format_value=None) -> str:
        """Generic ASCII tree (route-specific rendering goes through
        :func:`render_route`, which knows how to format ids)."""
        if format_value is None:
            format_value = repr
        lines: List[str] = []

        def emit(span: "Span", depth: int) -> None:
            attrs = "  ".join(
                f"{key}={format_value(span.attributes[key])}"
                for key in sorted(span.attributes)
            )
            lines.append(f"{'  ' * depth}{span.name}  {attrs}".rstrip())
            for child in span.children:
                emit(child, depth + 1)

        emit(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)})"


# ---------------------------------------------------------------------- #
# route explanation
#
# The rule taxonomy (RULE_* strings) lives in repro.pastry.routing, and
# pastry.network imports this module -- so the pastry imports below are
# function-level to keep the dependency one-way at import time.
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class HopExplanation:
    """One step of a route, annotated."""

    node_id: int
    shared_prefix: int
    distance_to_key: int
    rule: str
    next_node: Optional[int]


def _classify_hop(network: "PastryNetwork", node_id: int, key: int,
                  next_node: Optional[int]) -> str:
    """Re-derive which routing rule links node_id -> next_node."""
    from repro.pastry.routing import (
        RULE_DELIVER_SELF, RULE_LEAF, RULE_RARE, RULE_TABLE,
    )

    state = network.nodes[node_id].state
    if next_node is None:
        return RULE_DELIVER_SELF
    if state.leaf_set.covers(key) and next_node in state.leaf_set.members():
        closest = state.leaf_set.closest_to(key, include_owner=True)
        if closest == next_node:
            return RULE_LEAF
    table_hop = state.routing_table.next_hop_for(key)
    if table_hop == next_node:
        return RULE_TABLE
    return RULE_RARE


def explain_route(
    network: "PastryNetwork", key: int, origin: int, **route_kwargs
) -> List[HopExplanation]:
    """Route *key* from *origin* and explain every hop.

    The classification is derived from node state *after* the route ran,
    so on a freshly built network it reflects exactly the decisions
    taken; after concurrent repairs it is best-effort (noted per hop).
    """
    from repro.pastry.routing import RULE_EN_ROUTE

    result: "RouteResult" = network.route(key, origin, **route_kwargs)
    space = network.space
    explanations: List[HopExplanation] = []
    for index, node_id in enumerate(result.path):
        next_node = result.path[index + 1] if index + 1 < len(result.path) else None
        if next_node is None and result.reason == "en-route":
            rule = RULE_EN_ROUTE
        else:
            rule = _classify_hop(network, node_id, key, next_node)
        explanations.append(
            HopExplanation(
                node_id=node_id,
                shared_prefix=space.shared_prefix_length(node_id, key),
                distance_to_key=space.distance(node_id, key),
                rule=rule,
                next_node=next_node,
            )
        )
    return explanations


def span_to_explanations(span: Span) -> List[HopExplanation]:
    """Convert a traced route span (``RouteResult.span``) into the same
    :class:`HopExplanation` rows :func:`explain_route` produces, so the
    decision-time trace renders through :func:`render_route` too."""
    hops = [child for child in span.children if child.name == "hop"]
    return [
        HopExplanation(
            node_id=child.attributes["node_id"],
            shared_prefix=child.attributes["shared_prefix"],
            distance_to_key=child.attributes["distance"],
            rule=child.attributes["rule"],
            next_node=child.attributes.get("next_node"),
        )
        for child in hops
    ]


def check_progress(explanations: List[HopExplanation]) -> bool:
    """The route-progress invariant: along the path, the shared prefix
    never shrinks unless the numeric distance shrinks instead."""
    for previous, current in zip(explanations, explanations[1:]):
        prefix_progress = current.shared_prefix >= previous.shared_prefix
        numeric_progress = current.distance_to_key < previous.distance_to_key
        if not (prefix_progress or numeric_progress):
            return False
    return True


def render_route(network: "PastryNetwork",
                 explanations: List[HopExplanation]) -> str:
    """ASCII rendering of an explained route."""
    fmt = network.space.format_id
    lines = []
    for index, hop in enumerate(explanations):
        arrow = "   " if index == 0 else "-> "
        lines.append(
            f"{arrow}{fmt(hop.node_id)}  prefix={hop.shared_prefix:2d}  {hop.rule}"
        )
    return "\n".join(lines)
