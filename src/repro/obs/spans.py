"""Span trees for multi-hop operations.

A route or a join is one logical operation spread over many nodes; a
:class:`Span` records it as a tree -- the root names the operation, each
child records one hop together with the routing rule that fired *at
decision time* (no after-the-fact re-derivation).  Spans render to JSON
(``repro route --json``) and to the ASCII trace the CLI has always
printed, via :func:`repro.analysis.tracing.span_to_explanations`.

Spans carry no wall-clock state: attributes and structure only, plus an
optional sim-time interval, so a seeded run serialises byte-identically.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class Span:
    """One node of a span tree."""

    __slots__ = ("name", "attributes", "children", "start", "duration")

    def __init__(self, name: str, **attributes: object) -> None:
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes)
        self.children: List["Span"] = []
        self.start: Optional[float] = None
        self.duration: Optional[float] = None

    def child(self, name: str, **attributes: object) -> "Span":
        """Create and attach a child span."""
        span = Span(name, **attributes)
        self.children.append(span)
        return span

    def adopt(self, span: "Span") -> "Span":
        """Attach an already-built span (e.g. a route under a join)."""
        self.children.append(span)
        return span

    def set(self, **attributes: object) -> None:
        """Merge attributes (outcome fields set when the operation ends)."""
        self.attributes.update(attributes)

    def walk(self):
        """Depth-first iteration over the tree, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """A deterministic plain-dict form (attributes key-sorted)."""
        node: dict = {
            "name": self.name,
            "attributes": {
                key: self.attributes[key] for key in sorted(self.attributes)
            },
        }
        if self.start is not None:
            node["start"] = self.start
        if self.duration is not None:
            node["duration"] = self.duration
        node["children"] = [child.to_dict() for child in self.children]
        return node

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def render(self, format_value=None) -> str:
        """Generic ASCII tree (route-specific rendering lives in
        :mod:`repro.analysis.tracing`, which knows how to format ids)."""
        if format_value is None:
            format_value = repr
        lines: List[str] = []

        def emit(span: "Span", depth: int) -> None:
            attrs = "  ".join(
                f"{key}={format_value(span.attributes[key])}"
                for key in sorted(span.attributes)
            )
            lines.append(f"{'  ' * depth}{span.name}  {attrs}".rstrip())
            for child in span.children:
                emit(child, depth + 1)

        emit(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)})"
