"""The telemetry collector: scrape a live cluster over its own wire.

A :class:`TelemetryCollector` registers a *client address* on the
cluster's transport -- over :class:`~repro.live.net.SocketTransport`
that is a real TCP listener -- and talks the three priced telemetry
message kinds to every node:

* ``telemetry-scrape``    -> ``telemetry-snapshot``: the node's full
  registry export (structured, not text), its ledger summary, a node
  state section, and optionally a batch of recent span records;
* ``telemetry-subscribe`` -> ``telemetry-series``: the node's windowed
  time-series, incrementally (``since`` carries the last window index
  the collector has, so a steady-state round ships one window);
* ``health-probe``        -> ``health-report``: a structured verdict
  (running/joined, mailbox depth vs. limit, pool state,
  ``resynced_bytes``, in-flight counts).

Scrapes fold into one **federated registry**: every remote instrument
reappears here with a ``node="<hex id>"`` label added, so
:meth:`TelemetryCollector.to_prometheus` renders a single exposition
for the whole cluster that passes the strict
:func:`repro.obs.validate.check_prometheus_text` parser.  Federation
rebuilds from the latest per-node exports each time -- re-scraping a
node replaces its contribution instead of double counting.

Determinism: nodes are scraped sequentially in sorted-id order, and the
collector drives the sampling clock (``at = round * window``), so two
same-seed runs -- and the same workload over both transports -- produce
byte-identical federated snapshots modulo the node labels.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.live.transport import Message
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import extend_snapshot, merge_snapshots

#: Collector addresses live far outside the 128-bit nodeId space, so a
#: collector can never collide with (or be mistaken for) an overlay
#: node.  Multiple collectors on one transport count up from here.
COLLECTOR_ADDRESS_BASE = 1 << 130

#: HELP texts for the families the collector itself synthesizes from
#: the per-node state sections of scrape replies.
TELEMETRY_METRIC_HELP = {
    "node.joined": "Whether the node completed its join (1) or not (0).",
    "node.known_nodes": "Overlay nodes known to this node's state.",
    "node.leaf_set": "Members in this node's leaf set.",
    "node.mailbox_depth": "Messages waiting in this node's mailbox.",
    "node.store_files": "Replicas held in this node's file store.",
    "node.store_bytes": "Bytes held in this node's file store.",
}


class TelemetryError(RuntimeError):
    """A scrape/probe failed: unreachable node or no reply in time."""


class TelemetryCollector:
    """Scrapes and streams one live cluster into a federated view."""

    def __init__(self, cluster, address: Optional[int] = None,
                 timeout: float = 10.0, window: float = 5.0) -> None:
        self.cluster = cluster
        self.transport = cluster.transport
        if address is None:
            address = COLLECTOR_ADDRESS_BASE
            while address in getattr(self.transport, "_mailboxes", {}):
                address += 1
        self.address = address
        self.transport.register(address)
        self.timeout = timeout
        #: Logical window width the collector samples remote series at.
        self.window = window
        self._request_ids = itertools.count(1)
        # Latest per-node artifacts, keyed by the node's hex label.
        self._exports: Dict[str, dict] = {}
        self._states: Dict[str, dict] = {}
        self.ledgers: Dict[str, dict] = {}
        self.series: Dict[str, dict] = {}
        self.spans: Dict[str, list] = {}
        self.health: Dict[str, dict] = {}
        self._since: Dict[str, int] = {}
        self.scrapes = 0

    # ------------------------------------------------------------------ #
    # wire plumbing
    # ------------------------------------------------------------------ #

    @staticmethod
    def label_of(node_id: int) -> str:
        return f"{node_id:032x}"

    def _targets(self) -> List[int]:
        return self.cluster.live_ids()

    async def _request(self, node_id: int, kind: str, body: dict,
                       reply_kind: str) -> dict:
        """One request/reply round over the live wire.

        Replies are matched by (kind, request_id); a stale reply from an
        earlier timed-out request is drained and dropped.  The drain is
        bounded so a flooded mailbox cannot spin this loop forever.
        """
        request_id = next(self._request_ids)
        message = Message(kind=kind, sender=self.address,
                          payload=dict(body, request_id=request_id))
        result = await self.transport.send(node_id, message)
        if not result:
            raise TelemetryError(
                f"{kind} to {node_id:x} not accepted: {result.status}"
            )
        for _ in range(64):
            reply = await self.transport.receive(self.address,
                                                 timeout=self.timeout)
            if reply is None:
                raise TelemetryError(
                    f"{kind} to {node_id:x}: no {reply_kind} within "
                    f"{self.timeout}s"
                )
            if (reply.kind == reply_kind
                    and reply.payload.get("request_id") == request_id):
                return reply.payload
        raise TelemetryError(
            f"{kind} to {node_id:x}: drowned in stale replies"
        )

    # ------------------------------------------------------------------ #
    # scrape: full snapshots
    # ------------------------------------------------------------------ #

    async def scrape(self, node_id: int, spans: int = 0) -> dict:
        """Scrape one node; folds its registry export, state section,
        ledger summary and (optionally) last *spans* span records into
        the collector's per-node tables."""
        payload = await self._request(
            node_id, "telemetry-scrape", {"spans": spans}, "telemetry-snapshot"
        )
        label = payload.get("node", self.label_of(node_id))
        if "registry" in payload:
            self._exports[label] = payload["registry"]
            self._states[label] = payload.get("state", {})
            self.ledgers[label] = payload.get("ledger", {})
            if "spans" in payload:
                self.spans[label] = payload["spans"]
        self.scrapes += 1
        return payload

    async def scrape_all(self, spans: int = 0) -> dict:
        """Scrape every live node (sorted order) and return the
        federated snapshot."""
        for node_id in self._targets():
            await self.scrape(node_id, spans=spans)
        return self.federated_snapshot()

    def federated_registry(self) -> MetricsRegistry:
        """A fresh registry holding every node's instruments under
        ``node=<label>`` labels, plus the synthesized ``node.*`` state
        gauges.  Rebuilt from the latest exports, so it is always the
        current view regardless of how often nodes were re-scraped."""
        registry = MetricsRegistry()
        for name, help_text in sorted(TELEMETRY_METRIC_HELP.items()):
            registry.describe(name, help_text)
        for label in sorted(self._exports):
            registry.absorb(self._exports[label], extra_labels={"node": label})
            for key, value in sorted(self._states.get(label, {}).items()):
                if isinstance(value, bool):
                    value = 1.0 if value else 0.0
                registry.gauge(f"node.{key}", node=label).set(float(value))
        return registry

    def federated_snapshot(self) -> dict:
        return self.federated_registry().snapshot()

    def to_prometheus(self) -> str:
        """One text exposition for the whole cluster (strict-parser
        clean; see obs/validate.check_prometheus_text)."""
        return self.federated_registry().to_prometheus()

    # ------------------------------------------------------------------ #
    # subscribe: windowed series
    # ------------------------------------------------------------------ #

    async def subscribe(self, node_id: int,
                        at: Optional[float] = None) -> dict:
        """One incremental series round with *node_id*.

        *at* is the logical sample instant (the collector's clock);
        passing it makes the node sample its registry into the matching
        window before answering, so the collector controls windowing --
        live nodes have no injected clock of their own.
        """
        label = self.label_of(node_id)
        # Ask for everything *including* the last window we have seen:
        # a re-sample can land more data in it, and the fold replaces
        # that window's rows, so re-shipping it is idempotent.
        last = self._since.get(label)
        body: dict = {
            "since": (last - 1) if last is not None else None,
            "window": self.window,
        }
        if at is not None:
            body["at"] = float(at)
        payload = await self._request(
            node_id, "telemetry-subscribe", body, "telemetry-series"
        )
        series = payload.get("series")
        if series is not None:
            self.series[label] = extend_snapshot(self.series.get(label), series)
            latest = int(series.get("latest_index", -1))
            if latest >= 0:
                self._since[label] = latest
        return payload

    async def subscribe_all(self, at: Optional[float] = None) -> dict:
        for node_id in self._targets():
            await self.subscribe(node_id, at=at)
        return self.merged_series()

    def merged_series(self) -> dict:
        """The cluster-wide federated series (cross-node window merge)."""
        return merge_snapshots(
            self.series[label] for label in sorted(self.series)
        )

    # ------------------------------------------------------------------ #
    # probe: health verdicts
    # ------------------------------------------------------------------ #

    async def probe(self, node_id: int) -> dict:
        verdict = await self._request(
            node_id, "health-probe", {}, "health-report"
        )
        self.health[verdict.get("node", self.label_of(node_id))] = verdict
        return verdict

    async def probe_all(self) -> dict:
        """Probe every live node; the cluster is healthy iff every node
        is."""
        nodes = []
        for node_id in self._targets():
            try:
                nodes.append(await self.probe(node_id))
            except TelemetryError as error:
                nodes.append({
                    "node": self.label_of(node_id),
                    "healthy": False,
                    "error": str(error),
                })
        return {
            "healthy": bool(nodes) and all(n.get("healthy") for n in nodes),
            "nodes": nodes,
        }


def render_console(collector: TelemetryCollector, health: dict,
                   frame: int) -> str:
    """One ``repro top`` frame: cluster header, hot message kinds,
    latency percentiles, per-node health rows."""
    snapshot = collector.federated_snapshot()
    nodes = health.get("nodes", [])
    lines = [
        f"repro top -- frame {frame}  nodes={len(nodes)}  "
        f"scrapes={collector.scrapes}  "
        f"cluster={'HEALTHY' if health.get('healthy') else 'DEGRADED'}",
        "",
    ]
    # Message-kind totals, summed across nodes, hottest first.
    by_kind: Dict[str, int] = {}
    for name, value in snapshot["counters"].items():
        if name.startswith("live.messages{"):
            kind = name.split('kind="', 1)[-1].split('"', 1)[0]
            by_kind[kind] = by_kind.get(kind, 0) + value
    if by_kind:
        lines.append("messages by kind:")
        hot = sorted(by_kind.items(), key=lambda item: (-item[1], item[0]))
        for kind, count in hot[:6]:
            lines.append(f"  {kind:<20} {count:>8}")
        lines.append("")
    # Latency percentiles from the federated load histograms.
    latency = {
        name: stats for name, stats in snapshot["histograms"].items()
        if name.startswith("load.latency_seconds{")
    }
    if latency:
        lines.append("op latency (federated):")
        seen = set()
        for name, stats in sorted(latency.items()):
            op = name.split('op="', 1)[-1].split('"', 1)[0]
            if op in seen:
                continue
            seen.add(op)
            lines.append(
                f"  {op:<9} n={int(stats['count']):5d} "
                f"p50={stats['p50'] * 1000:8.2f}ms "
                f"p95={stats['p95'] * 1000:8.2f}ms "
                f"p99={stats['p99'] * 1000:8.2f}ms"
            )
        lines.append("")
    lines.append("node            joined  mailbox  inflight  resync  queue")
    for node in nodes:
        label = str(node.get("node", "?"))
        state = node.get("state", {})
        lines.append(
            f"{label[:12]:<14}  "
            f"{'yes' if state.get('joined') else 'NO ':<6}  "
            f"{node.get('mailbox_depth', 0):>7}  "
            f"{node.get('in_flight', 0):>8}  "
            f"{node.get('resynced_bytes', 0):>6}  "
            f"{node.get('send_queue_depth', 0):>5}"
        )
    return "\n".join(lines)
