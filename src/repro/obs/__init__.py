"""Unified observability: metrics registry, event bus, span tracing.

Three dependency-free pillars, shared by the synchronous simulator, the
discrete-event churn driver, and the live asyncio cluster:

* :mod:`repro.obs.metrics` -- named counters, gauges and histograms with
  labels (``route.hops{category="lookup"}``), a deterministic snapshot,
  and a Prometheus-style text exposition for live nodes;
* :mod:`repro.obs.events` -- typed protocol events (``RouteCompleted``,
  ``NodeJoined``, ``InsertRejected``, ...) published to an in-process
  bus with sim-time timestamps and JSONL export;
* :mod:`repro.obs.spans` -- span trees for multi-hop operations: a route
  or join produces one root span whose per-hop children carry the
  routing rule that fired *at decision time*.

The :class:`Observer` bundles all three; the :data:`NULL_OBSERVER` is a
falsy no-op stand-in, so instrumented hot paths guard with a single
``if obs.enabled:`` (or ``if obs:``) check and stay allocation-free when
observability is off.
"""

from repro.obs.events import (
    CacheHit,
    EventBus,
    EventRecord,
    InsertCompleted,
    InsertRejected,
    NodeFailed,
    NodeJoined,
    NodeRecovered,
    OracleRebuilt,
    ReclaimCompleted,
    ReplicaDiverted,
    RouteCompleted,
    SloBreached,
    validate_jsonl,
    validate_record,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import NULL_OBSERVER, NullObserver, Observer
from repro.obs.slo import (
    CHAOS_SLO,
    DEFAULT_LOAD_SLO,
    SLOError,
    evaluate_chaos_slo,
    evaluate_load_slo,
    evaluate_slo,
    format_verdict,
    parse_slo,
)
from repro.obs.spans import Span
from repro.obs.telemetry import TelemetryCollector, TelemetryError, render_console
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    WindowedHistogram,
    WindowedSeries,
    extend_snapshot,
    merge_snapshots,
)

__all__ = [
    "CHAOS_SLO",
    "CacheHit",
    "Counter",
    "DEFAULT_LOAD_SLO",
    "EventBus",
    "EventRecord",
    "Gauge",
    "Histogram",
    "InsertCompleted",
    "InsertRejected",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NodeFailed",
    "NodeJoined",
    "NodeRecovered",
    "NullObserver",
    "Observer",
    "OracleRebuilt",
    "ReclaimCompleted",
    "ReplicaDiverted",
    "RouteCompleted",
    "SLOError",
    "SloBreached",
    "Span",
    "TelemetryCollector",
    "TelemetryError",
    "TimeSeriesRecorder",
    "WindowedHistogram",
    "WindowedSeries",
    "evaluate_chaos_slo",
    "evaluate_load_slo",
    "evaluate_slo",
    "extend_snapshot",
    "format_verdict",
    "merge_snapshots",
    "parse_slo",
    "render_console",
    "validate_jsonl",
    "validate_record",
]
