"""The scale-curve observatory: prove the asymptotics, not a point.

PAST's economy claims are statements about *growth*: routing cost and
per-node state are O(log N), and the maintenance traffic that keeps the
overlay alive under churn stays sublinear per node.  A single-N check
(the point probes in :mod:`repro.obs.claims`) cannot distinguish
``log N`` from ``N``; this module can.  Following the scalability-
analysis methodology of Kong et al. (PAPERS.md), it

1. sweeps overlays across a size ladder (512 -> 65536 locally,
   smoke-scale in CI), measuring at each N: mean lookup hops, per-node
   state entries/bytes, the arrival protocol's join cost, and the
   maintenance bandwidth (repair + leaf-stabilize bytes per node per
   sim-second) under a seeded :class:`~repro.faults.plan.FaultPlan`
   churn segment with keep-alive probing;
2. fits ``y = a.log2(N) + b`` and power-law ``y = c.N^p`` models to
   each series, reporting residuals (a logarithmic quantity fits the
   log model tightly and shows a power-law exponent near zero);
3. stamps the fitted coefficients as ``scaling.*`` gauges so the claim
   observatory (``python -m repro.obs.report``) gates on the curves
   (claims C1-curve / C2-curve / C11).

Two chains keep the sweep honest *and* cheap:

* the **structure chain** is one overlay grown size-to-size through PR
  6's incremental oracle (``attach_incremental_oracle``), so measuring
  5 sizes costs ~one max-N build instead of five; hops and state are
  measured read-only at each rung (routing mutates nothing), so the
  oracle's canonical-state invariant holds across the whole climb;
* the **cost probes** (join protocol, churn repair) mutate node state,
  so each N gets a fresh oracle build plus its own
  :class:`~repro.obs.ledger.CostLedger` -- protocol perturbations never
  leak into the next rung.

Everything draws from named RNG streams under one seed: two runs with
the same seed and sizes emit byte-identical JSON.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.obs.cost_model import (
    CATEGORY_LEAF_STABILIZE,
    CATEGORY_REPAIR,
    state_bytes,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Observer

#: The local default ladder; CI smoke passes --sizes 256..2048.
DEFAULT_SIZES = (512, 1024, 2048, 4096, 8192)

KEEPALIVE_INTERVAL = 10.0


# ---------------------------------------------------------------------- #
# model fitting (stdlib only; closed-form least squares)
# ---------------------------------------------------------------------- #

def _least_squares(xs: Sequence[float], ys: Sequence[float]):
    """Slope/intercept minimising squared error of ``y = slope*x + b``."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return 0.0, mean_y
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    return slope, mean_y - slope * mean_x


def _residual_stats(ys: Sequence[float], predicted: Sequence[float]) -> Dict[str, float]:
    n = len(ys)
    ss_res = sum((y - p) ** 2 for y, p in zip(ys, predicted))
    mean_y = sum(ys) / n
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return {
        "rmse": round(math.sqrt(ss_res / n), 6),
        "r2": round(r2, 6),
        "residuals": [round(y - p, 6) for y, p in zip(ys, predicted)],
    }


def fit_log(sizes: Sequence[int], ys: Sequence[float]) -> dict:
    """Fit ``y = a * log2(N) + b``; returns coefficients + residuals."""
    xs = [math.log2(n) for n in sizes]
    a, b = _least_squares(xs, ys)
    predicted = [a * x + b for x in xs]
    fit = {"a": round(a, 6), "b": round(b, 6)}
    fit.update(_residual_stats(ys, predicted))
    return fit


def fit_power(sizes: Sequence[int], ys: Sequence[float]) -> Optional[dict]:
    """Fit ``y = c * N^p`` by least squares in log-log space.

    Returns None when any sample is non-positive (the power model is
    undefined there); residuals are reported in linear space, where the
    curve is actually read.
    """
    if any(y <= 0 for y in ys):
        return None
    xs = [math.log(n) for n in sizes]
    ls = [math.log(y) for y in ys]
    p, ln_c = _least_squares(xs, ls)
    c = math.exp(ln_c)
    predicted = [c * n ** p for n in sizes]
    fit = {"c": round(c, 6), "exponent": round(p, 6)}
    fit.update(_residual_stats(ys, predicted))
    return fit


def _fit_both(sizes: Sequence[int], ys: Sequence[float]) -> dict:
    return {"log": fit_log(sizes, ys), "power": fit_power(sizes, ys)}


# ---------------------------------------------------------------------- #
# the sweep
# ---------------------------------------------------------------------- #

def _measure_structure(network, obs: Observer, lookups: int, key_rng) -> dict:
    """Read-only probes at the current size: mean hops + state census."""
    from repro.obs.claims import record_overlay_census

    hops = obs.metrics.histogram("route.hops", category="lookup")
    hops.reset()
    ids = network.live_ids()
    random_id = network.space.random_id
    route = network.route
    for _ in range(lookups):
        key = random_id(key_rng)
        origin = ids[key_rng.randrange(len(ids))]
        route(key, origin, category="lookup")
    hop_summary = hops.summary()
    record_overlay_census(network)
    entries = obs.metrics.histogram("census.state_entries").summary()
    return {
        "mean_hops": round(hop_summary["mean"], 6),
        "p95_hops": round(hop_summary["p95"], 6),
        "state_entries_mean": round(entries["mean"], 6),
        "state_entries_max": int(entries["max"]),
        "state_bytes_per_node": round(state_bytes(entries["mean"]), 1),
    }


def _measure_costs(
    n: int,
    seed: int,
    joins: int,
    churn_duration: float,
    crashes: int,
    restarts: int,
) -> dict:
    """Mutating probes at one size, on a dedicated overlay + ledger."""
    from repro.faults.plan import CRASH, RESTART, FaultPlan, build_schedule
    from repro.pastry.failure import KeepAliveProtocol, purge_failed, recover_node
    from repro.pastry.join import join_network
    from repro.pastry.network import PastryNetwork
    from repro.sim.engine import SimulationEngine
    from repro.sim.rng import RngRegistry, stable_seed

    obs = Observer()
    network = PastryNetwork(
        rngs=RngRegistry(stable_seed("scale-costs", seed, n)), observer=obs
    )
    network.build(n, method="oracle")
    ledger = obs.ledger

    # --- join cost: the real arrival protocol, measured per join ------- #
    for _ in range(joins):
        node = network.add_node()
        contact = network._nearest_live_contact(node)
        join_network(network, node, contact)
    join_summary = obs.metrics.histogram("join.messages").summary()
    join_bytes = ledger.category_bytes("join")

    # --- maintenance bandwidth under seeded churn ---------------------- #
    # Keep-alive probing plus crash/restart repair traffic, on the
    # discrete-event engine; the ledger clock bins charges into sim-time
    # windows.  Coordinated adjacent failures are excluded: they need a
    # full stabilize round, whose cost model is a different experiment.
    engine = SimulationEngine()
    obs.clock = lambda: engine.now
    ledger.clock = lambda: engine.now
    maintenance_before = (
        ledger.category_bytes(CATEGORY_REPAIR)
        + ledger.category_bytes(CATEGORY_LEAF_STABILIZE)
    )
    plan = FaultPlan(
        seed=stable_seed("scale-faults", seed, n),
        events=build_schedule(
            stable_seed("scale-faults", seed, n),
            churn_duration,
            half_leaf=network.leaf_capacity // 2,
            crashes=crashes,
            restarts=restarts,
            adjacent_boundary=0,
            adjacent_safe=0,
            slow=0,
        ),
    )
    min_live = network.leaf_capacity + 1

    def apply(event) -> None:
        live = network.live_ids()
        if event.kind == CRASH:
            if len(live) <= min_live:
                return
            victim = plan.pick_target(live)
            if victim is None or not network.is_live(victim):
                return
            network.mark_failed(victim)
            purge_failed(network, victim)
            plan.count(CRASH)
        elif event.kind == RESTART:
            dead = sorted(
                nid for nid, node in network.nodes.items() if not node.alive
            )
            victim = plan.pick_target(dead)
            if victim is None or network.is_live(victim):
                return
            recover_node(network, victim)
            plan.count(RESTART)

    engine.schedule_many_at(
        (event.time, lambda ev=event: apply(ev)) for event in plan.events
    )
    keepalive = KeepAliveProtocol(
        network, engine, interval=KEEPALIVE_INTERVAL,
        timeout=3 * KEEPALIVE_INTERVAL,
    )
    keepalive.start()
    engine.run(until=churn_duration)
    keepalive.stop()
    obs.clock = None
    ledger.clock = None

    maintenance = (
        ledger.category_bytes(CATEGORY_REPAIR)
        + ledger.category_bytes(CATEGORY_LEAF_STABILIZE)
        - maintenance_before
    )
    snapshot = ledger.snapshot()
    return {
        "join_messages_mean": round(join_summary["mean"], 6),
        "join_bytes_per_join": round(join_bytes / joins, 1) if joins else 0.0,
        "maintenance_bytes": maintenance,
        "maintenance_bytes_per_node_per_s": round(
            maintenance / (n * churn_duration), 6
        ),
        "faults_applied": dict(sorted(plan.injected.items())),
        "ledger_by_category": snapshot["by_category"],
        "ledger_windows": snapshot["windows"],
    }


def run_scale_curves(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    lookups: int = 400,
    joins: int = 16,
    churn_duration: float = 60.0,
    crashes: int = 6,
    restarts: int = 3,
) -> dict:
    """Run the full sweep; returns the observatory-ready report dict.

    The report embeds ``metrics`` (the ``scaling.*`` curve gauges),
    ``params`` and a ``claims`` list, so ``python -m repro.obs.report
    --report scale-curves.json`` re-evaluates the asymptotic claims from
    the artifact alone -- same contract as the chaos report.
    """
    from repro.obs.claims import CURVE_CLAIMS
    from repro.pastry.network import PastryNetwork
    from repro.sim.rng import RngRegistry, stable_seed

    sizes = sorted(set(int(size) for size in sizes))
    if len(sizes) < 2:
        raise ValueError("need at least two sweep sizes to fit a curve")
    if sizes[0] < 64:
        raise ValueError("the smallest sweep size must be >= 64")
    if joins < 1 or lookups < 1:
        raise ValueError("joins and lookups must be positive")
    if churn_duration <= 0:
        raise ValueError("churn_duration must be positive")

    # Structure chain: grow one overlay through the ladder via the
    # incremental oracle, measuring read-only at each rung.
    obs = Observer()
    network = PastryNetwork(
        rngs=RngRegistry(stable_seed("scale-curves", seed)), observer=obs
    )
    network.build(sizes[0], method="oracle")
    network.attach_incremental_oracle()
    key_rng = network.rngs.stream("scale-lookup-keys")

    points: List[dict] = []
    for n in sizes:
        while network.live_count() < n:
            network.add_node()
        point = {"n": n}
        point.update(_measure_structure(network, obs, lookups, key_rng))
        point.update(
            _measure_costs(n, seed, joins, churn_duration, crashes, restarts)
        )
        points.append(point)

    curves = {
        "hops": _fit_both(sizes, [p["mean_hops"] for p in points]),
        "state_entries": _fit_both(
            sizes, [p["state_entries_mean"] for p in points]
        ),
        "join_messages": _fit_both(
            sizes, [p["join_messages_mean"] for p in points]
        ),
        "maintenance_rate": _fit_both(
            sizes, [p["maintenance_bytes_per_node_per_s"] for p in points]
        ),
    }

    # Curve gauges: what the asymptotic claim probes read.
    summary = MetricsRegistry()
    gauge = summary.gauge
    gauge("scaling.sweep_points").set(float(len(sizes)))
    gauge("scaling.max_size").set(float(sizes[-1]))
    for quantity, series in (
        ("hops", "hops"),
        ("state", "state_entries"),
        ("join", "join_messages"),
        ("maintenance", "maintenance_rate"),
    ):
        fits = curves[series]
        gauge(f"scaling.{quantity}.log_slope").set(fits["log"]["a"])
        gauge(f"scaling.{quantity}.log_rmse").set(fits["log"]["rmse"])
        if fits["power"] is not None:
            gauge(f"scaling.{quantity}.power_exponent").set(
                fits["power"]["exponent"]
            )
    gauge("scaling.maintenance.max_rate").set(
        points[-1]["maintenance_bytes_per_node_per_s"]
    )

    params = {
        "sizes": sizes,
        "max_size": sizes[-1],
        "seed": seed,
        "lookups": lookups,
        "joins": joins,
        "churn_duration": churn_duration,
        "crashes": crashes,
        "restarts": restarts,
        "bits_per_digit": network.space.b,
        "leaf_capacity": network.leaf_capacity,
        "neighborhood_capacity": network.neighborhood_capacity,
    }
    return {
        "seed": seed,
        "sizes": sizes,
        "params": params,
        "sweep": points,
        "curves": curves,
        "metrics": summary.snapshot(),
        "claims": list(CURVE_CLAIMS),
    }


# ---------------------------------------------------------------------- #
# rendering
# ---------------------------------------------------------------------- #

def render_scale_markdown(report: dict, verdicts=None) -> str:
    """Deterministic markdown curve report (the CI artifact)."""
    from repro.obs.claims import render_markdown

    lines = ["# Scale-curve report", ""]
    params = report["params"]
    lines.append(
        f"Sweep: N = {', '.join(str(n) for n in report['sizes'])} "
        f"(seed {params['seed']}, {params['lookups']} lookups, "
        f"{params['joins']} joins, {params['churn_duration']} sim-s churn per N)"
    )
    lines += [
        "",
        "| N | mean hops | state entries | state bytes/node | "
        "join msgs | maintenance B/node/s |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for point in report["sweep"]:
        lines.append(
            f"| {point['n']} | {point['mean_hops']:.2f} "
            f"| {point['state_entries_mean']:.1f} "
            f"| {point['state_bytes_per_node']:.0f} "
            f"| {point['join_messages_mean']:.1f} "
            f"| {point['maintenance_bytes_per_node_per_s']:.1f} |"
        )
    lines += [
        "",
        "## Fitted curves",
        "",
        "| quantity | a.log2(N)+b | log rmse | log R^2 | N^p exponent |",
        "| --- | --- | --- | --- | --- |",
    ]
    for name in ("hops", "state_entries", "join_messages", "maintenance_rate"):
        fits = report["curves"][name]
        log_fit = fits["log"]
        power = fits["power"]
        exponent = f"{power['exponent']:.3f}" if power is not None else "n/a"
        lines.append(
            f"| {name} | {log_fit['a']:.3f}.log2(N) + {log_fit['b']:.3f} "
            f"| {log_fit['rmse']:.4f} | {log_fit['r2']:.4f} | {exponent} |"
        )
    rendered = "\n".join(lines) + "\n"
    if verdicts is not None:
        rendered += "\n" + render_markdown(verdicts, None)
    return rendered
