"""Typed protocol events and the in-process event bus.

Core code publishes structured events (one frozen dataclass per event
kind) instead of printing or keeping private tallies; subscribers and
the JSONL export read them uniformly.  Every published event is wrapped
in an :class:`EventRecord` carrying a monotonic sequence number and a
sim-time timestamp, so exports are deterministic under seeded RNG --
two identical runs produce byte-identical JSONL.

The module also carries the event *schema* (derived from the dataclass
fields) and validators used by the CI observability smoke step.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, ClassVar, Dict, List, Optional, Tuple, Union


@dataclass(frozen=True)
class Event:
    """Base class; every concrete event defines a unique ``kind``."""

    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class RouteCompleted(Event):
    """One routed message finished (delivered, dropped, or hop-limited)."""

    kind: ClassVar[str] = "route-completed"
    key: int
    origin: int
    destination: Optional[int]
    hops: int
    delivered: bool
    reason: str
    category: str


@dataclass(frozen=True)
class NodeJoined(Event):
    """A node completed the arrival protocol."""

    kind: ClassVar[str] = "node-joined"
    node_id: int
    contact_id: int
    messages: int
    route_hops: int


@dataclass(frozen=True)
class NodeFailed(Event):
    """A node silently failed (stopped responding)."""

    kind: ClassVar[str] = "node-failed"
    node_id: int


@dataclass(frozen=True)
class NodeRecovered(Event):
    """A previously failed node came back."""

    kind: ClassVar[str] = "node-recovered"
    node_id: int


@dataclass(frozen=True)
class OracleRebuilt(Event):
    """Node state was (re)constructed from global membership."""

    kind: ClassVar[str] = "oracle-rebuilt"
    nodes: int


@dataclass(frozen=True)
class InsertCompleted(Event):
    """An insert placed all k replicas (possibly with diversions)."""

    kind: ClassVar[str] = "insert-completed"
    file_id: int
    size: int
    replicas: int
    diverted: int


@dataclass(frozen=True)
class InsertRejected(Event):
    """The root could not place k replicas for one insert attempt."""

    kind: ClassVar[str] = "insert-rejected"
    file_id: int
    size: int
    reason: str


@dataclass(frozen=True)
class ReplicaDiverted(Event):
    """A full primary diverted its replica to a leaf-set neighbour."""

    kind: ClassVar[str] = "replica-diverted"
    file_id: int
    primary_id: int
    target_id: int
    size: int


@dataclass(frozen=True)
class CacheHit(Event):
    """A lookup was served from a node's cache."""

    kind: ClassVar[str] = "cache-hit"
    file_id: int
    node_id: int
    size: int


@dataclass(frozen=True)
class ReclaimCompleted(Event):
    """A reclaim request was processed at the root."""

    kind: ClassVar[str] = "reclaim-completed"
    file_id: int
    receipts: int


@dataclass(frozen=True)
class FaultInjected(Event):
    """The fault-injection layer fired one planned fault."""

    kind: ClassVar[str] = "fault-injected"
    fault: str
    target: Optional[int]
    detail: str


@dataclass(frozen=True)
class RetryAttempted(Event):
    """A live operation timed out and is being retried with backoff."""

    kind: ClassVar[str] = "retry-attempted"
    op: str
    attempt: int
    delay: float
    request_id: int


@dataclass(frozen=True)
class InvariantViolated(Event):
    """The cross-layer invariant checker found a broken invariant."""

    kind: ClassVar[str] = "invariant-violated"
    invariant: str
    node_id: Optional[int]
    detail: str


@dataclass(frozen=True)
class InvariantChecked(Event):
    """One full invariant sweep finished (violations may be zero)."""

    kind: ClassVar[str] = "invariant-checked"
    checks: int
    violations: int


@dataclass(frozen=True)
class UnpricedKindCharged(Event):
    """The cost ledger charged a kind missing from MESSAGE_COSTS.

    Published once per unpriced kind per run (the runtime twin of lint
    rule CONF001); every repeat still bumps the ``ledger.unpriced``
    metrics counter.  ``message_kind`` is the offending kind --
    distinct from the event's own ``kind`` tag.
    """

    kind: ClassVar[str] = "unpriced-kind-charged"
    message_kind: str
    fallback_category: str
    fallback_bytes: int


@dataclass(frozen=True)
class SloBreached(Event):
    """One SLO target missed its objective in a gated run.

    ``observed`` is -1.0 when the objective was never measured (which
    also counts as a breach: you cannot claim an SLO you did not
    observe).
    """

    kind: ClassVar[str] = "slo-breached"
    name: str
    objective: float
    observed: float


EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        RouteCompleted,
        NodeJoined,
        NodeFailed,
        NodeRecovered,
        OracleRebuilt,
        InsertCompleted,
        InsertRejected,
        ReplicaDiverted,
        CacheHit,
        ReclaimCompleted,
        FaultInjected,
        RetryAttempted,
        InvariantViolated,
        InvariantChecked,
        UnpricedKindCharged,
        SloBreached,
    )
}

# Per-kind field schema: name -> accepted JSON types.  Optional[int]
# admits None; bool must be checked before int (bool is an int subclass).
_FIELD_TYPES: Dict[str, Dict[str, Tuple[type, ...]]] = {}
for _kind, _cls in EVENT_TYPES.items():
    _fields: Dict[str, Tuple[type, ...]] = {}
    for _field in dataclasses.fields(_cls):
        annotation = _field.type
        if annotation in ("int", int):
            _fields[_field.name] = (int,)
        elif annotation in ("bool", bool):
            _fields[_field.name] = (bool,)
        elif annotation in ("str", str):
            _fields[_field.name] = (str,)
        elif annotation in ("float", float):
            _fields[_field.name] = (int, float)
        else:  # Optional[int] is the only other annotation in use
            _fields[_field.name] = (int, type(None))
    _FIELD_TYPES[_kind] = _fields


@dataclass(frozen=True)
class EventRecord:
    """One published event: sequence number, sim-time, payload."""

    seq: int
    time: float
    event: Event

    def to_dict(self) -> dict:
        body = dataclasses.asdict(self.event)
        body["kind"] = type(self.event).kind
        body["seq"] = self.seq
        body["time"] = self.time
        return body

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


class EventBus:
    """Collects published events; optionally fans out to subscribers.

    *clock* supplies the sim-time timestamp (default: a constant 0.0, so
    exports stay deterministic when no simulation clock exists).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock
        self._records: List[EventRecord] = []
        self._subscribers: List[Callable[[EventRecord], None]] = []
        self._seq = 0

    def publish(self, event: Event) -> EventRecord:
        time = float(self.clock()) if self.clock is not None else 0.0
        record = EventRecord(seq=self._seq, time=time, event=event)
        self._seq += 1
        self._records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def subscribe(self, callback: Callable[[EventRecord], None]) -> None:
        self._subscribers.append(callback)

    def records(self) -> List[EventRecord]:
        return list(self._records)

    def events(self) -> List[Event]:
        return [record.event for record in self._records]

    def kinds(self) -> List[str]:
        return [type(record.event).kind for record in self._records]

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ #
    # JSONL export
    # ------------------------------------------------------------------ #

    def to_jsonl(self) -> str:
        """One JSON object per line, keys sorted: byte-identical across
        identical seeded runs."""
        return "".join(record.to_json() + "\n" for record in self._records)

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Write the event log to *path*; returns the record count."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")
        return len(self._records)


# ---------------------------------------------------------------------- #
# schema validation (CI smoke step)
# ---------------------------------------------------------------------- #

def validate_record(obj: object) -> List[str]:
    """Validate one decoded JSONL object against the event schema;
    returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"record is not an object: {type(obj).__name__}"]
    kind = obj.get("kind")
    if not isinstance(kind, str) or kind not in _FIELD_TYPES:
        return [f"unknown event kind: {kind!r}"]
    if not isinstance(obj.get("seq"), int) or isinstance(obj.get("seq"), bool):
        errors.append("missing or non-integer 'seq'")
    if not isinstance(obj.get("time"), (int, float)) or isinstance(obj.get("time"), bool):
        errors.append("missing or non-numeric 'time'")
    schema = _FIELD_TYPES[kind]
    for field_name, accepted in schema.items():
        if field_name not in obj:
            errors.append(f"{kind}: missing field {field_name!r}")
            continue
        value = obj[field_name]
        if bool in accepted:
            if not isinstance(value, bool):
                errors.append(f"{kind}: field {field_name!r} must be bool")
        elif isinstance(value, bool) or not isinstance(value, accepted):
            errors.append(
                f"{kind}: field {field_name!r} has type {type(value).__name__}"
            )
    for extra in set(obj) - set(schema) - {"kind", "seq", "time"}:
        errors.append(f"{kind}: unexpected field {extra!r}")
    return errors


def validate_jsonl(text: str) -> List[str]:
    """Validate a JSONL event log; returns per-line problems."""
    errors: List[str] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {line_number}: invalid JSON ({exc.msg})")
            continue
        for problem in validate_record(obj):
            errors.append(f"line {line_number}: {problem}")
    return errors


def validate_jsonl_file(path: Union[str, Path]) -> List[str]:
    return validate_jsonl(Path(path).read_text(encoding="utf-8"))
