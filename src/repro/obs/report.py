"""The claim observatory CLI: artifacts in, verdicts out.

Runs the claim probes over a chaos run's report artifact::

    PYTHONPATH=src python -m repro.obs.report --report chaos-report.json \
        --events chaos-events.jsonl --out claim-report.md

The report JSON must embed a metrics snapshot and deployment params
(``run_chaos`` writes both).  The optional events log contributes an
invariant-violation count.  Exit status is 1 when any claim verdict
fails or any invariant violation is present -- CI's regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.claims import evaluate_claims, render_markdown, to_json_dict


def count_violations(events_path: Path) -> int:
    """Invariant-violated records in an observability events JSONL."""
    violations = 0
    for line in events_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("event") == "invariant-violated":
            violations += 1
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="evaluate paper-claim verdicts from chaos artifacts",
    )
    parser.add_argument("--report", type=Path, required=True,
                        help="chaos report JSON (must embed 'metrics')")
    parser.add_argument("--events", type=Path, default=None,
                        help="observability events JSONL (adds the "
                             "invariant-violation gate)")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of markdown")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the rendered report here")
    args = parser.parse_args(argv)

    if not args.report.exists():
        print(f"no such file: {args.report}", file=sys.stderr)
        return 2
    report = json.loads(args.report.read_text(encoding="utf-8"))
    snapshot = report.get("metrics")
    params = report.get("params")
    if not isinstance(snapshot, dict) or not isinstance(params, dict):
        print(
            f"{args.report}: missing 'metrics'/'params' -- re-run the "
            "chaos driver to produce an observatory-ready report",
            file=sys.stderr,
        )
        return 2

    # Artifacts declare which claims they can answer (a chaos run lists
    # the point claims, a scale-curve sweep the asymptotic ones); legacy
    # artifacts without the list fall back to the point-claim default.
    claims = report.get("claims")
    if claims is not None and (
        not isinstance(claims, list)
        or not all(isinstance(name, str) for name in claims)
    ):
        print(f"{args.report}: 'claims' must be a list of claim names",
              file=sys.stderr)
        return 2
    try:
        verdicts = evaluate_claims(snapshot, params, claims=claims)
    except ValueError as error:
        print(f"{args.report}: {error}", file=sys.stderr)
        return 2
    violations = len(report.get("violations", []))
    if args.events is not None and args.events.exists():
        violations = max(violations, count_violations(args.events))

    if args.json:
        payload = to_json_dict(verdicts, params)
        payload["invariant_violations"] = violations
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    else:
        rendered = render_markdown(verdicts, params)
        rendered += f"\nInvariant violations: {violations}\n"
    sys.stdout.write(rendered)
    if args.out is not None:
        args.out.write_text(rendered, encoding="utf-8")

    failed = [verdict for verdict in verdicts if not verdict.passed]
    if failed or violations:
        for verdict in failed:
            print(f"claim regression: {verdict.claim} ({verdict.observed})",
                  file=sys.stderr)
        if violations:
            print(f"invariant violations: {violations}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
