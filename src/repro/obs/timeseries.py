"""Ring-buffered windowed time-series over the metrics registry.

The registry (:mod:`repro.obs.metrics`) answers "what happened so far";
this module adds the temporal axis: a :class:`TimeSeriesRecorder`
periodically *samples* a registry and files what changed into
fixed-width time windows, keeping the most recent ``capacity`` windows
per series in a ring.

Determinism rules, enforced by construction:

* **No wall clock.**  Every sample takes an explicit ``at`` timestamp --
  the simulation engine's clock in chaos runs, the telemetry
  collector's logical window counter over the live wire.  Two seeded
  runs that sample at the same logical instants produce byte-identical
  snapshots.
* **Windows are integer indices** (``int(at / window)``), so series
  from different nodes sampled at the same logical times align exactly
  -- which is what makes the cross-node :meth:`WindowedHistogram.merge`
  and :func:`merge_snapshots` federation well defined.

What lands in a window:

* **counters** -- the per-window *delta* (increment observed since the
  previous sample), accumulated when one window is sampled twice;
* **gauges** -- the last sampled value (a level, not a rate);
* **histograms** -- the new samples that appeared since the previous
  sample, kept verbatim (sorted) so windows merge across nodes by
  concatenation without losing exact percentiles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Default window width in (logical) seconds and ring depth.  64 windows
#: at 10s covers a ten-minute live run or a 640-sim-second chaos run.
DEFAULT_WINDOW = 10.0
DEFAULT_CAPACITY = 64

SERIES_COUNTER = "counter"
SERIES_GAUGE = "gauge"


class WindowedSeries:
    """One instrument's ring of per-window scalar points."""

    __slots__ = ("name", "kind", "capacity", "_points")

    def __init__(self, name: str, kind: str,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if kind not in (SERIES_COUNTER, SERIES_GAUGE):
            raise ValueError(f"unknown series kind {kind!r}")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self._points: Dict[int, float] = {}

    def observe(self, index: int, value: float) -> None:
        """File *value* under window *index*.

        Counter series accumulate (two samples inside one window add
        their deltas); gauge series keep the last value.
        """
        if self.kind == SERIES_COUNTER:
            self._points[index] = self._points.get(index, 0.0) + value
        else:
            self._points[index] = value
        while len(self._points) > self.capacity:
            del self._points[min(self._points)]

    def windows(self) -> List[Tuple[int, float]]:
        return sorted(self._points.items())

    def latest_index(self) -> Optional[int]:
        return max(self._points) if self._points else None

    def total(self) -> float:
        """Sum over the retained ring (meaningful for counter series)."""
        return sum(self._points.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WindowedSeries({self.name!r}, {self.kind}, n={len(self._points)})"


class WindowedHistogram:
    """One histogram's ring of per-window sample batches.

    Samples are kept verbatim (sorted per window), so any statistic the
    flat :class:`~repro.obs.metrics.Histogram` computes is recoverable
    per window, and two nodes' windows federate losslessly via
    :meth:`merge` -- concatenation, not moment arithmetic.
    """

    __slots__ = ("name", "capacity", "_windows")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._windows: Dict[int, List[float]] = {}

    def extend(self, index: int, samples: Iterable[float]) -> None:
        batch = [float(sample) for sample in samples]
        if not batch:
            return
        window = self._windows.setdefault(index, [])
        window.extend(batch)
        window.sort()
        while len(self._windows) > self.capacity:
            del self._windows[min(self._windows)]

    def windows(self) -> List[Tuple[int, List[float]]]:
        return [(index, list(samples))
                for index, samples in sorted(self._windows.items())]

    def latest_index(self) -> Optional[int]:
        return max(self._windows) if self._windows else None

    def merge(self, other: "WindowedHistogram") -> "WindowedHistogram":
        """Cross-node federation: the union of both rings, samples
        concatenated window by window (exact, order-independent)."""
        merged = WindowedHistogram(
            self.name, capacity=max(self.capacity, other.capacity)
        )
        for source in (self, other):
            for index, samples in source.windows():
                merged.extend(index, samples)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WindowedHistogram({self.name!r}, n={len(self._windows)})"


class TimeSeriesRecorder:
    """Samples a :class:`MetricsRegistry` into windowed series.

    ``sample(metrics, at)`` diffs the registry against the previous
    sample: counter increments and fresh histogram samples are filed
    into window ``int(at / window)``; gauges record their level.  The
    caller owns the clock -- the recorder never reads one.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.capacity = capacity
        self._series: Dict[str, WindowedSeries] = {}
        self._histograms: Dict[str, WindowedHistogram] = {}
        # Last cumulative counter value / consumed histogram sample
        # count, keyed by display name -- the diffing state.
        self._counter_totals: Dict[str, float] = {}
        self._consumed: Dict[str, int] = {}
        self.samples_taken = 0

    def configure_window(self, window: float) -> None:
        """Adopt *window* as the window width if no samples have been
        taken yet -- how a remote subscriber negotiates its scrape
        cadence with a node's recorder.  Ignored after the first sample
        (re-bucketing live rings would corrupt the indices)."""
        if window > 0 and self.samples_taken == 0:
            self.window = float(window)

    def window_index(self, at: float) -> int:
        return int(float(at) / self.window)

    def latest_index(self) -> Optional[int]:
        indices = [series.latest_index() for series in self._series.values()]
        indices += [hist.latest_index() for hist in self._histograms.values()]
        known = [index for index in indices if index is not None]
        return max(known) if known else None

    def _scalar_series(self, name: str, kind: str) -> WindowedSeries:
        series = self._series.get(name)
        if series is None:
            series = WindowedSeries(name, kind, capacity=self.capacity)
            self._series[name] = series
        return series

    def sample(self, metrics: MetricsRegistry, at: float) -> int:
        """Diff *metrics* against the previous sample into the window
        covering *at*; returns the window index sampled into."""
        index = self.window_index(at)
        for name, value in metrics.counters():
            previous = self._counter_totals.get(name, 0.0)
            self._counter_totals[name] = float(value)
            self._scalar_series(name, SERIES_COUNTER).observe(
                index, float(value) - previous
            )
        for name, value in metrics.gauges():
            self._scalar_series(name, SERIES_GAUGE).observe(index, float(value))
        for name, histogram in metrics.histograms():
            consumed = self._consumed.get(name, 0)
            fresh = histogram.samples[consumed:]
            self._consumed[name] = len(histogram.samples)
            if fresh:
                windowed = self._histograms.get(name)
                if windowed is None:
                    windowed = WindowedHistogram(name, capacity=self.capacity)
                    self._histograms[name] = windowed
                windowed.extend(index, fresh)
        self.samples_taken += 1
        return index

    def counter_windows(self, name: str) -> List[Tuple[int, float]]:
        series = self._series.get(name)
        if series is None or series.kind != SERIES_COUNTER:
            return []
        return series.windows()

    def snapshot(self, since: Optional[int] = None) -> dict:
        """A plain-JSON dump of every retained window, sorted (hence
        byte-deterministic).  With *since*, only windows with an index
        strictly greater are included -- the incremental contract the
        ``telemetry-subscribe`` stream uses."""
        def keep(index: int) -> bool:
            return since is None or index > since

        counters: Dict[str, List[List[float]]] = {}
        gauges: Dict[str, List[List[float]]] = {}
        for name in sorted(self._series):
            series = self._series[name]
            rows = [[index, value] for index, value in series.windows()
                    if keep(index)]
            if rows:
                (counters if series.kind == SERIES_COUNTER else gauges)[name] = rows
        histograms: Dict[str, List[list]] = {}
        for name in sorted(self._histograms):
            rows = [[index, samples]
                    for index, samples in self._histograms[name].windows()
                    if keep(index)]
            if rows:
                histograms[name] = rows
        latest = self.latest_index()
        return {
            "window_seconds": self.window,
            "capacity": self.capacity,
            "latest_index": latest if latest is not None else -1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def extend_snapshot(existing: Optional[dict], incoming: dict) -> dict:
    """Fold an incremental snapshot (a ``telemetry-series`` reply) into
    an accumulated one; returns the merged dict (never mutates inputs).

    Counter rows for a window already seen are *replaced* -- the sender
    re-serialized its ring, it did not re-count -- so replaying a window
    is idempotent.
    """
    if existing is None:
        return {key: (dict(value) if isinstance(value, dict) else value)
                for key, value in incoming.items()}
    merged = {key: (dict(value) if isinstance(value, dict) else value)
              for key, value in existing.items()}
    merged["latest_index"] = max(
        int(existing.get("latest_index", -1)),
        int(incoming.get("latest_index", -1)),
    )
    for section in ("counters", "gauges", "histograms"):
        target = dict(merged.get(section, {}))
        for name, rows in incoming.get(section, {}).items():
            by_index = {int(row[0]): row[1] for row in target.get(name, [])}
            for row in rows:
                by_index[int(row[0])] = row[1]
            target[name] = [[index, by_index[index]]
                            for index in sorted(by_index)]
        merged[section] = target
    return merged


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Federate snapshots from several nodes into one cluster view.

    Counter and gauge rows sum per (name, window); histogram windows
    concatenate their sample lists (then sort), matching
    :meth:`WindowedHistogram.merge`.  Input order does not matter.
    """
    merged: dict = {
        "window_seconds": None,
        "capacity": 0,
        "latest_index": -1,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for snapshot in snapshots:
        if merged["window_seconds"] is None:
            merged["window_seconds"] = snapshot.get("window_seconds")
        merged["capacity"] = max(merged["capacity"],
                                 int(snapshot.get("capacity", 0)))
        merged["latest_index"] = max(merged["latest_index"],
                                     int(snapshot.get("latest_index", -1)))
        for section in ("counters", "gauges"):
            target = merged[section]
            for name, rows in snapshot.get(section, {}).items():
                by_index = {int(row[0]): row[1] for row in target.get(name, [])}
                for index, value in rows:
                    by_index[int(index)] = by_index.get(int(index), 0.0) + value
                target[name] = [[index, by_index[index]]
                                for index in sorted(by_index)]
        target = merged["histograms"]
        for name, rows in snapshot.get("histograms", {}).items():
            by_index = {int(row[0]): list(row[1]) for row in target.get(name, [])}
            for index, samples in rows:
                combined = by_index.get(int(index), []) + list(samples)
                combined.sort()
                by_index[int(index)] = combined
            target[name] = [[index, by_index[index]]
                            for index in sorted(by_index)]
    if merged["window_seconds"] is None:
        merged["window_seconds"] = DEFAULT_WINDOW
    return merged
