"""The wire-size model: what one overlay message of each kind *costs*.

PAST's economy argument (cheap routing, cheap state, bounded maintenance)
is about bytes on the wire, but the simulator's transport moves Python
objects.  This module is the documented bridge: every message kind the
simulated and live layers emit maps to a fixed **activity category** (the
ledger taxonomy) and an **estimated serialized size** in bytes.

The estimates are static per-kind costs derived from the field counts of
the PAST/Pastry protocol messages (section 2 of the paper), not measured
serializations -- the point of centralising them here is that when real
wire serialization lands (ROADMAP item 3), only this table changes and
every ledger, curve fit and claim downstream re-prices automatically.

Sizing assumptions (documented so the numbers are auditable):

* nodeIds and fileIds are 128-bit: ``ID_BYTES`` = 16.
* every message carries a header (source/destination ids, kind tag,
  sequence number, trace context): ``WIRE_HEADER_BYTES`` = 48.
* a node-state *entry* (one leaf-set/routing-table/neighborhood slot)
  serializes to ``STATE_ENTRY_BYTES`` = 40: the id plus its network
  address and coordinates.
* state-transfer messages (leaf set, neighborhood set, one routing-table
  row) carry header + slots x entry bytes, with the default capacities
  (32-slot leaf/neighborhood sets, 16-column rows).
* stored files average ``MEAN_FILE_BYTES`` = 8 KiB -- the knob the
  storage workloads already use; data-bearing messages (insert, restore,
  lookup results) carry header + one file.

The activity taxonomy is **fixed** -- exactly the seven categories below,
so curve reports from different runs are always comparable.
"""

from __future__ import annotations

from typing import Dict, Tuple

ID_BYTES = 16
WIRE_HEADER_BYTES = 48
STATE_ENTRY_BYTES = 40
MEAN_FILE_BYTES = 8 * 1024

# One full 32-slot set (leaf or neighborhood) and one 16-column row.
_SET_BYTES = WIRE_HEADER_BYTES + 32 * STATE_ENTRY_BYTES  # 1328
_ROW_BYTES = WIRE_HEADER_BYTES + 16 * STATE_ENTRY_BYTES  # 688
_KEY_BYTES = WIRE_HEADER_BYTES + ID_BYTES  # 64: header + one id
_DATA_BYTES = WIRE_HEADER_BYTES + ID_BYTES + MEAN_FILE_BYTES  # 8256

# The fixed activity taxonomy.  Every message kind maps to exactly one.
CATEGORY_JOIN = "join"
CATEGORY_ROUTE = "route"
CATEGORY_REPAIR = "repair"
CATEGORY_LEAF_STABILIZE = "leaf-stabilize"
CATEGORY_REPLICATE = "replicate"
CATEGORY_CLIENT_DATA = "client-data"
CATEGORY_CONTROL = "control"

CATEGORIES = (
    CATEGORY_JOIN,
    CATEGORY_ROUTE,
    CATEGORY_REPAIR,
    CATEGORY_LEAF_STABILIZE,
    CATEGORY_REPLICATE,
    CATEGORY_CLIENT_DATA,
    CATEGORY_CONTROL,
)

# kind -> (category, bytes per message).  Keep docs/PROTOCOLS.md's
# message-category table in sync with this map.
MESSAGE_COSTS: Dict[str, Tuple[str, int]] = {
    # --- simulated overlay (pastry/, core/) --------------------------- #
    "route": (CATEGORY_ROUTE, _KEY_BYTES),  # one forwarding hop
    "lookup": (CATEGORY_ROUTE, _KEY_BYTES),  # lookup forwarding hop
    "join": (CATEGORY_JOIN, _KEY_BYTES),  # join-request forwarding hop
    "join-contact": (CATEGORY_JOIN, _KEY_BYTES),
    "join-neighborhood": (CATEGORY_JOIN, _SET_BYTES),
    "join-leafset": (CATEGORY_JOIN, _SET_BYTES),
    "join-row": (CATEGORY_JOIN, _ROW_BYTES),
    "join-announce": (CATEGORY_JOIN, _KEY_BYTES),
    "refine": (CATEGORY_CONTROL, _SET_BYTES),  # periodic state exchange
    "repair": (CATEGORY_REPAIR, _SET_BYTES),  # state request/reply pair half
    "repair-probe": (CATEGORY_REPAIR, _KEY_BYTES),
    "leafset-exchange": (CATEGORY_LEAF_STABILIZE, _SET_BYTES),
    "leafset-announce": (CATEGORY_LEAF_STABILIZE, _KEY_BYTES),
    "keepalive": (CATEGORY_LEAF_STABILIZE, WIRE_HEADER_BYTES + 8),
    "restore": (CATEGORY_REPLICATE, _DATA_BYTES),  # replica re-creation
    "insert": (CATEGORY_CLIENT_DATA, _DATA_BYTES),  # client store (+ diverts)
    "reclaim": (CATEGORY_CONTROL, _KEY_BYTES + ID_BYTES),  # fileId + credential
    "audit": (CATEGORY_CONTROL, _KEY_BYTES + 2 * ID_BYTES),
    "quota-service": (CATEGORY_CONTROL, _KEY_BYTES + 2 * ID_BYTES),
    # --- live cluster (live/) ----------------------------------------- #
    "route-result": (CATEGORY_ROUTE, _KEY_BYTES + 3 * ID_BYTES),  # path digest
    "join-request": (CATEGORY_JOIN, _KEY_BYTES),
    "join-reply": (CATEGORY_JOIN, _SET_BYTES),
    "announce": (CATEGORY_JOIN, _KEY_BYTES),
    "leafset-request": (CATEGORY_LEAF_STABILIZE, _KEY_BYTES),
    "leafset-reply": (CATEGORY_LEAF_STABILIZE, _SET_BYTES),
    "store-request": (CATEGORY_CLIENT_DATA, _DATA_BYTES),  # insert fan-out
    "store-ack": (CATEGORY_CLIENT_DATA, WIRE_HEADER_BYTES + 8),
    "insert-result": (CATEGORY_CLIENT_DATA, _KEY_BYTES + 2 * ID_BYTES),
    "lookup-result": (CATEGORY_CLIENT_DATA, _DATA_BYTES),  # carries the file
    "stop": (CATEGORY_CONTROL, WIRE_HEADER_BYTES),
    # --- telemetry plane (obs/telemetry.py + live/cluster.py) ---------- #
    # Requests carry a request id (one key); replies carry structured
    # payloads whose budgeted sizes are deliberate caps, not averages: a
    # full registry export (~4 KiB), one incremental series window
    # (~2 KiB), one health verdict (~512 B).
    "telemetry-scrape": (CATEGORY_CONTROL, _KEY_BYTES),
    "telemetry-subscribe": (CATEGORY_CONTROL, _KEY_BYTES + ID_BYTES),
    "health-probe": (CATEGORY_CONTROL, _KEY_BYTES),
    "telemetry-snapshot": (CATEGORY_CONTROL, WIRE_HEADER_BYTES + 4096),
    "telemetry-series": (CATEGORY_CONTROL, WIRE_HEADER_BYTES + 2048),
    "health-report": (CATEGORY_CONTROL, WIRE_HEADER_BYTES + 512),
}

# Kinds nobody priced yet fall back here (visible in by_kind output, so
# an unpriced kind is an auditable gap rather than a crash).
DEFAULT_COST: Tuple[str, int] = (CATEGORY_CONTROL, _KEY_BYTES)


class CostModel:
    """Maps a message kind to its (category, bytes) cost.

    The default table is :data:`MESSAGE_COSTS`; pass *costs* to
    substitute a measured table (e.g. real serialized sizes) without
    touching any charging site.
    """

    __slots__ = ("costs",)

    def __init__(self, costs: Dict[str, Tuple[str, int]] = None) -> None:
        self.costs = costs if costs is not None else MESSAGE_COSTS

    def cost(self, kind: str) -> Tuple[str, int]:
        return self.costs.get(kind, DEFAULT_COST)

    def priced(self, kind: str) -> bool:
        """Whether *kind* has an explicit entry (vs the DEFAULT_COST fallback)."""
        return kind in self.costs

    def category(self, kind: str) -> str:
        return self.cost(kind)[0]

    def bytes_of(self, kind: str) -> int:
        return self.cost(kind)[1]


def state_bytes(entries: float) -> float:
    """Estimated serialized per-node state size for an entry count."""
    return entries * STATE_ENTRY_BYTES
