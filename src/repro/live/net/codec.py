"""JSON codec for live-layer messages.

The in-process transport hands :class:`~repro.live.transport.Message`
objects across by reference, so payloads could carry anything.  The wire
cannot: everything must serialize.  The live protocols use plain JSON
values (arbitrary-precision ints are fine -- Python's ``json`` round-trips
them exactly) plus a small closed set of domain objects, each encoded as
a tagged JSON object under the ``"__past__"`` key:

===================  =====================================================
tag                  object
===================  =====================================================
``bytes``            raw bytes (base64)
``synthetic-data``   :class:`repro.core.files.SyntheticData` -- (seed, size)
``real-data``        :class:`repro.core.files.RealData` -- bytes (base64)
``public-key``       :class:`repro.crypto.keys.PublicKey`, either backend
``signed-envelope``  :class:`repro.crypto.signatures.SignedEnvelope`
``file-certificate`` :class:`repro.core.certificates.FileCertificate`
===================  =====================================================

Anything outside this set raises :class:`CodecError` at *encode* time --
a new protocol message with an unserializable payload fails loudly in the
sender's test, not as a mysterious decode error on the peer.

One normalization is deliberate: **tuples become lists** (JSON has no
tuple).  The protocols only use tuples as positional pairs that are
iterated, never as dict keys or identity-compared values, so the
normalization is harmless -- and the conformance suite runs the full
insert/lookup protocol over both transports to prove it.

Note on sizes: a :class:`SyntheticData` payload crosses the wire as its
(seed, size) *description*, not its materialized bytes -- that is the
point of synthetic content.  Byte-realistic load (and real-frame ledger
pricing) therefore uses :class:`RealData`, as the load harness does.
"""

from __future__ import annotations

import base64
import json
from typing import Any

from repro.core.certificates import FileCertificate
from repro.core.files import RealData, SyntheticData
from repro.crypto.keys import PublicKey, _FastPublicKey
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.signatures import SignedEnvelope
from repro.live.transport import Message

TAG = "__past__"


class CodecError(ValueError):
    """A value cannot be encoded, or a frame cannot be decoded."""


def _encode_obj(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_encode_obj(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"non-string dict key on the wire: {key!r}")
            if key == TAG:
                raise CodecError(f"payload key {TAG!r} collides with the codec tag")
            out[key] = _encode_obj(item)
        return out
    if isinstance(value, bytes):
        return {TAG: "bytes", "b64": base64.b64encode(value).decode("ascii")}
    if isinstance(value, SyntheticData):
        return {TAG: "synthetic-data", "seed": value.seed, "size": value.size}
    if isinstance(value, RealData):
        return {TAG: "real-data",
                "b64": base64.b64encode(value.to_bytes()).decode("ascii")}
    if isinstance(value, FileCertificate):
        return {TAG: "file-certificate",
                "envelope": _encode_obj(value.envelope)}
    if isinstance(value, SignedEnvelope):
        return {
            TAG: "signed-envelope",
            "kind": value.kind,
            "fields": _encode_obj(dict(value.fields)),
            "signer": _encode_obj(value.signer),
            "signature": value.signature,
        }
    if isinstance(value, PublicKey):
        impl = value._impl
        if isinstance(impl, _FastPublicKey):
            return {TAG: "public-key", "backend": "fast",
                    "secret": impl.secret.hex()}
        if isinstance(impl, RsaPublicKey):
            return {TAG: "public-key", "backend": "rsa",
                    "n": impl.n, "e": impl.e}
        raise CodecError(f"unknown public-key backend: {type(impl).__name__}")
    raise CodecError(f"cannot serialize {type(value).__name__} on the wire")


def _decode_obj(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode_obj(item) for item in value]
    if not isinstance(value, dict):
        return value
    tag = value.get(TAG)
    if tag is None:
        return {key: _decode_obj(item) for key, item in value.items()}
    try:
        if tag == "bytes":
            return base64.b64decode(value["b64"])
        if tag == "synthetic-data":
            return SyntheticData(seed=value["seed"], size=value["size"])
        if tag == "real-data":
            return RealData(base64.b64decode(value["b64"]))
        if tag == "file-certificate":
            return FileCertificate(envelope=_decode_obj(value["envelope"]))
        if tag == "signed-envelope":
            return SignedEnvelope(
                kind=value["kind"],
                fields=_decode_obj(value["fields"]),
                signer=_decode_obj(value["signer"]),
                signature=value["signature"],
            )
        if tag == "public-key":
            if value["backend"] == "fast":
                return PublicKey(_FastPublicKey(secret=bytes.fromhex(value["secret"])))
            if value["backend"] == "rsa":
                return PublicKey(RsaPublicKey(n=value["n"], e=value["e"]))
            raise CodecError(f"unknown public-key backend tag: {value['backend']!r}")
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, CodecError):
            raise
        raise CodecError(f"malformed {tag!r} object on the wire: {exc}") from exc
    raise CodecError(f"unknown wire tag: {tag!r}")


def encode_message(message: Message) -> bytes:
    """Serialize one message into a frame payload (compact, sorted keys,
    so identical messages encode to identical bytes)."""
    body = {
        "kind": message.kind,
        "sender": message.sender,
        "payload": _encode_obj(message.payload),
        "message_id": message.message_id,
    }
    if message.traceparent is not None:
        body["traceparent"] = message.traceparent
    try:
        return json.dumps(body, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"unencodable message {message.kind!r}: {exc}") from exc


def decode_message(payload: bytes) -> Message:
    """Parse one frame payload back into a :class:`Message`."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise CodecError("frame payload is not a JSON object")
    try:
        return Message(
            kind=body["kind"],
            sender=body["sender"],
            payload=_decode_obj(body["payload"]),
            message_id=body.get("message_id", 0),
            traceparent=body.get("traceparent"),
        )
    except KeyError as exc:
        raise CodecError(f"frame payload missing field: {exc}") from exc
