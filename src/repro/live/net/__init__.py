"""Real-socket networking for the live layer.

The in-process transport passes :class:`Message` objects by reference;
this package puts them on actual localhost TCP sockets:

* :mod:`repro.live.net.framing` -- length-prefixed frames, torn-read
  tolerant decoding, oversized rejection, garbage resync;
* :mod:`repro.live.net.codec` -- tagged-JSON serialization of message
  payloads (certificates, keys, file data);
* :mod:`repro.live.net.pool` -- per-node ``asyncio.start_server``
  endpoints and pooled per-peer outbound links with bounded send
  queues (the backpressure point);
* :mod:`repro.live.net.transport` -- :class:`SocketTransport`, the
  drop-in ``send()``-contract implementation the conformance suite
  proves equivalent to :class:`~repro.live.transport.InProcessTransport`.
"""

from repro.live.net.codec import CodecError, decode_message, encode_message
from repro.live.net.framing import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    encode_frame,
)
from repro.live.net.pool import NodeEndpoint, NodePool, PeerLink
from repro.live.net.transport import SocketTransport

__all__ = [
    "CodecError",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "FrameError",
    "FrameTooLarge",
    "NodeEndpoint",
    "NodePool",
    "PeerLink",
    "SocketTransport",
    "decode_message",
    "encode_frame",
    "encode_message",
]
