"""SocketTransport: the live ``send()`` contract over real asyncio TCP.

Same contract as :class:`~repro.live.transport.InProcessTransport` --
``register`` / ``send`` / ``receive`` / ``mark_dead`` -- so
``LiveCluster``, ``RetryPolicy``, ``FaultPlan`` injection, traceparent
propagation and ``CostLedger`` charging run unmodified; but every
message is genuinely encoded, framed, written to a localhost socket,
read back in arbitrary chunks, and decoded on the destination's side.

Ordering is engineered to match the in-process baseline exactly where
determinism depends on it: the :class:`FaultPlan` rng is consulted at
the same point in ``send()`` (after the dead/unknown checks, before any
enqueue), so a seeded plan draws the identical fault sequence over both
transports when the caller's send order is the same -- the property the
conformance suite (tests/test_live_socket.py) pins.

Differences from the baseline, all deliberate:

* **Ledger pricing** -- each send is charged by the *actual* encoded
  frame length (``size=len(frame)``), not the wire-size model; an
  injected duplicate charges a second full frame.
* **Backpressure** -- the per-peer send queue is bounded; a peer that
  reads slower than we send eventually fills its mailbox, the TCP
  buffers, the send queue -- and ``send()`` returns ``SEND_TIMEOUT``
  (liveness *unknown*: the node runtime must not forget the peer).
* **Death is a closed listener** -- ``mark_dead`` retires the victim's
  endpoint, so in-flight and future connections fail the way a crashed
  process's would; the sender still gets the prompt ``SEND_DEAD``
  result from the dead-set check, keeping failure discovery timing
  aligned with the baseline.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Set

from repro.live.net.codec import decode_message, encode_message
from repro.live.net.framing import DEFAULT_MAX_FRAME, encode_frame
from repro.live.net.pool import DEFAULT_SEND_QUEUE, NodePool
from repro.live.transport import (
    RESULT_DEAD,
    RESULT_DELIVERED,
    RESULT_DROPPED,
    RESULT_TIMEOUT,
    RESULT_UNKNOWN,
    Message,
    SendResult,
    TransportBase,
)

#: Bound on each node's inbound mailbox; the tail of the backpressure
#: chain (mailbox full -> reader blocked -> TCP buffers fill -> sender's
#: send queue fills -> SEND_TIMEOUT).
DEFAULT_MAILBOX_LIMIT = 1024


class SocketTransport(TransportBase):
    """Live transport over localhost TCP with length-prefixed frames."""

    def __init__(self, faults=None,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 send_queue_size: int = DEFAULT_SEND_QUEUE,
                 mailbox_limit: int = DEFAULT_MAILBOX_LIMIT,
                 send_timeout: float = 5.0,
                 fault_delay_scale: float = 0.001) -> None:
        """*send_timeout* bounds how long ``send`` waits for space in the
        peer's send queue before reporting ``SEND_TIMEOUT``.
        *fault_delay_scale* converts FaultPlan delay/defer units into
        seconds, mirroring the in-process ``latency_scale``."""
        super().__init__(faults=faults)
        self._max_frame = max_frame
        self._mailbox_limit = mailbox_limit
        self._send_timeout = send_timeout
        self._fault_delay_scale = fault_delay_scale
        self._pool = NodePool(max_frame=max_frame,
                              send_queue_size=send_queue_size)
        # Frames accepted toward the wire but not yet in a mailbox (or
        # discarded): send queues, TCP buffers, decoder buffers.  idle()
        # must see these -- an empty-mailboxes check alone would let the
        # quiesce loop declare silence while bytes are still in flight.
        self._in_flight = 0
        self._retirements: Set[asyncio.Task] = set()
        self.bytes_sent = 0
        self.frames_delivered = 0
        self.frames_discarded = 0
        self.sends_timed_out = 0

    # ------------------------------------------------------------------ #
    # registration / liveness
    # ------------------------------------------------------------------ #

    def _make_mailbox(self) -> asyncio.Queue:
        return asyncio.Queue(maxsize=self._mailbox_limit)

    def register(self, address: int) -> asyncio.Queue:
        queue = super().register(address)

        async def deliver(payload: bytes, _address: int = address) -> None:
            await self._deliver(_address, payload)

        self._pool.spawn(address, deliver)
        return queue

    def mark_dead(self, address: int) -> None:
        super().mark_dead(address)
        # Retiring the listener is async; schedule it and keep the
        # handle so aclose() can await stragglers.
        task = asyncio.get_running_loop().create_task(
            self._pool.retire(address)
        )
        self._retirements.add(task)
        task.add_done_callback(self._retirements.discard)

    # ------------------------------------------------------------------ #
    # receive side
    # ------------------------------------------------------------------ #

    async def _deliver(self, address: int, payload: bytes) -> None:
        """Decode one inbound frame payload into *address*'s mailbox."""
        try:
            message = decode_message(payload)
        except ValueError:
            self.frames_discarded += 1
            self._in_flight -= 1
            return
        if address in self._dead or address not in self._mailboxes:
            # Raced a kill: the bytes arrived but nobody is home.
            self.messages_dropped += 1
            self._in_flight -= 1
            return
        # May block when the mailbox is full -- that is the backpressure
        # propagating to this connection's reader, by design.
        await self._mailboxes[address].put(message)
        self.frames_delivered += 1
        self._in_flight -= 1

    def _discard(self, frame: bytes) -> None:
        """A link gave up on a frame (dead endpoint, broken wire)."""
        self.frames_discarded += 1
        self._in_flight -= 1

    # ------------------------------------------------------------------ #
    # send side
    # ------------------------------------------------------------------ #

    async def send(self, destination: int, message: Message) -> SendResult:
        message.message_id = next(self._sequence)
        frame = encode_frame(encode_message(message), self._max_frame)
        if self.ledger is not None:
            # Real-byte pricing: the actual frame length, not the model.
            self.ledger.charge(message.kind, node=message.sender,
                               size=len(frame))
        if destination in self._dead:
            self.messages_dropped += 1
            return RESULT_DEAD
        if destination not in self._mailboxes:
            self.messages_dropped += 1
            return RESULT_UNKNOWN
        fault = None
        if self.faults is not None:
            fault = self.faults.message_fault(message.sender, destination)
            if fault is not None and fault.drop:
                self.faults_dropped += 1
                self._trace_fault(message, destination, "drop")
                return RESULT_DROPPED
            if fault is not None:
                if fault.duplicate:
                    self._trace_fault(message, destination, "duplicate")
                if fault.delay > 0:
                    self._trace_fault(message, destination, "delay",
                                      amount=fault.delay)
                if fault.defer > 0:
                    self._trace_fault(message, destination, "reorder",
                                      amount=fault.defer)
        if fault is not None and fault.delay > 0:
            self.faults_delayed += 1
            await asyncio.sleep(fault.delay * self._fault_delay_scale)
            if destination in self._dead:
                self.messages_dropped += 1
                return RESULT_DEAD
        link = self._pool.link_to(destination, self._discard)
        if fault is not None and fault.defer > 0:
            # Reorder: hand the frame to the link later, without blocking
            # this sender, so later sends genuinely overtake it.
            self.faults_reordered += 1
            self._in_flight += 1
            asyncio.get_running_loop().call_later(
                fault.defer * self._fault_delay_scale,
                self._enqueue_deferred, link, frame,
            )
        else:
            if not await self._enqueue(link, frame):
                self.sends_timed_out += 1
                return RESULT_TIMEOUT
        self.messages_sent += 1
        self.bytes_sent += len(frame)
        if fault is not None and fault.duplicate:
            self.faults_duplicated += 1
            if self.ledger is not None:
                # The duplicate is a second full frame on the wire.
                self.ledger.charge(message.kind, node=message.sender,
                                   size=len(frame))
            if await self._enqueue(link, frame):
                self.bytes_sent += len(frame)
        return RESULT_DELIVERED

    async def _enqueue(self, link, frame: bytes) -> bool:
        """Queue *frame* on a link within the send timeout."""
        self._in_flight += 1
        try:
            await asyncio.wait_for(link.queue.put(frame), self._send_timeout)
            return True
        except asyncio.TimeoutError:
            self._in_flight -= 1
            return False

    def _enqueue_deferred(self, link, frame: bytes) -> None:
        """call_later callback for reordered frames (sync context)."""
        try:
            link.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self._discard(frame)

    # ------------------------------------------------------------------ #
    # wire observability
    # ------------------------------------------------------------------ #

    def mailbox_capacity(self) -> int:
        return self._mailbox_limit

    def wire_stats(self) -> dict:
        stats = super().wire_stats()
        stats.update(
            links=self._pool.link_count(),
            poisoned_connections=self._pool.poisoned_total(),
            resynced_bytes=self._pool.resynced_total(),
            send_queue_depth=self._pool.send_queue_depth(),
            in_flight=self._in_flight,
            sends_timed_out=self.sends_timed_out,
            # Socket-only extras (absent from the gauge families, so the
            # cross-transport parity contract is unaffected).
            bytes_sent=self.bytes_sent,
            frames_delivered=self.frames_delivered,
            frames_discarded=self.frames_discarded,
        )
        return stats

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def idle(self) -> bool:
        return self._in_flight == 0 and super().idle()

    async def aclose(self) -> None:
        for task in list(self._retirements):
            try:
                await task
            except asyncio.CancelledError:
                pass
        await self._pool.aclose()
