"""Length-prefixed wire framing for the socket transport.

One frame on the TCP stream is::

    +-------+-----------------+------------------------+
    | magic | length (4B, BE) | payload (length bytes) |
    |  "Pw" |                 |  JSON, UTF-8           |
    +-------+-----------------+------------------------+

The decoder is an incremental state machine fed whatever the socket
hands it: frames may arrive torn at *any* byte boundary (including
inside the magic or the length word) and several frames may arrive in
one read.  Two defensive behaviours are part of the contract, each
pinned by tests/test_wire_framing.py:

* **oversized rejection** -- a declared length above ``max_frame``
  raises :class:`FrameTooLarge` instead of allocating; a garbage or
  hostile peer must not be able to balloon the receiver's memory, and
  the connection it poisoned is torn down by the reader.
* **garbage-prefix resync** -- bytes that do not start with the magic
  are skipped up to the next magic candidate (counted in
  ``resynced_bytes``), so a stream that lost sync recovers at the next
  genuine frame boundary instead of mis-parsing payload bytes as a
  header forever.
"""

from __future__ import annotations

from typing import List

#: Two printable magic bytes open every frame; resync scans for them.
MAGIC = b"Pw"
#: Bytes of magic + length prefix before the payload.
HEADER_BYTES = len(MAGIC) + 4
#: Default ceiling on one frame's payload (16 MiB: far above any
#: protocol message, far below anything that could hurt the host).
DEFAULT_MAX_FRAME = 16 * 1024 * 1024


class FrameError(ValueError):
    """The stream violated the framing contract."""


class FrameTooLarge(FrameError):
    """A frame declared a payload above the decoder's ``max_frame``."""


def encode_frame(payload: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap *payload* in one wire frame."""
    if len(payload) > max_frame:
        raise FrameTooLarge(
            f"payload of {len(payload)} bytes exceeds the {max_frame}-byte limit"
        )
    return MAGIC + len(payload).to_bytes(4, "big") + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrarily-chunked byte stream.

    ``feed(data)`` returns the payloads of every frame completed by
    *data*, in stream order; partial trailing bytes are buffered for the
    next feed.  The decoder never looks at payload contents.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        if max_frame < 1:
            raise ValueError("max_frame must be positive")
        self.max_frame = max_frame
        self._buffer = bytearray()
        #: Garbage bytes skipped while hunting for a frame boundary.
        self.resynced_bytes = 0
        #: Completed frames decoded so far.
        self.frames_decoded = 0

    def pending(self) -> int:
        """Bytes buffered but not yet parsed into a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Consume *data*; return every completed frame payload."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        buffer = self._buffer
        while True:
            self._resync()
            if len(buffer) < HEADER_BYTES:
                break
            length = int.from_bytes(buffer[len(MAGIC):HEADER_BYTES], "big")
            if length > self.max_frame:
                # Poisoned stream: drop the bogus header so a (hopeless
                # but harmless) retry of feed() cannot loop, then refuse.
                del buffer[:len(MAGIC)]
                self.resynced_bytes += len(MAGIC)
                raise FrameTooLarge(
                    f"peer declared a {length}-byte frame "
                    f"(limit {self.max_frame})"
                )
            if len(buffer) < HEADER_BYTES + length:
                break
            frames.append(bytes(buffer[HEADER_BYTES:HEADER_BYTES + length]))
            del buffer[:HEADER_BYTES + length]
            self.frames_decoded += 1
        return frames

    def _resync(self) -> None:
        """Discard leading bytes until the buffer starts with ``MAGIC``
        (or with a prefix of it, which may complete on the next feed)."""
        buffer = self._buffer
        while buffer and not MAGIC.startswith(bytes(buffer[:len(MAGIC)])):
            index = buffer.find(MAGIC, 1)
            if index >= 0:
                self.resynced_bytes += index
                del buffer[:index]
                return
            # No full magic: keep a trailing partial-magic prefix (it
            # may be a frame boundary torn mid-magic), drop the rest.
            keep = 0
            for size in range(len(MAGIC) - 1, 0, -1):
                if bytes(buffer[-size:]) == MAGIC[:size]:
                    keep = size
                    break
            dropped = len(buffer) - keep
            self.resynced_bytes += dropped
            del buffer[:dropped]
            return
