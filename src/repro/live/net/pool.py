"""Socket endpoints and per-peer connection pooling.

Three small pieces compose into the socket transport's data plane:

* :class:`NodeEndpoint` -- one ``asyncio.start_server`` listener per
  node, bound to an ephemeral localhost port.  Each inbound connection
  gets its own :class:`~repro.live.net.framing.FrameDecoder`; completed
  frame payloads are handed to the endpoint's async ``deliver``
  callback.  A framing violation (oversized frame, undecodable stream)
  poisons only that connection -- it is torn down, the listener and its
  other connections live on.
* :class:`PeerLink` -- the sender side: one long-lived outbound
  connection per (transport, destination) pair, fed by a **bounded**
  frame queue drained by a writer task.  The bound is the backpressure
  point: when a peer reads slower than we send, the queue fills and
  ``send()`` times out with a typed ``SEND_TIMEOUT`` instead of
  buffering without limit.  A broken connection is retried once with a
  fresh socket; if that also fails the frame is discarded and reported
  through ``on_discard`` (to the transport's in-flight accounting).
* :class:`NodePool` -- the registry hosting N endpoints + links in one
  process, with graceful ``aclose()`` (stop listeners, flush-and-stop
  writers, cancel readers).

The pool knows nothing about messages -- it moves opaque frames.  All
protocol semantics (fault injection, ledger charging, dead-peer checks)
stay in :class:`~repro.live.net.transport.SocketTransport`.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Optional, Set, Tuple

from repro.live.net.framing import DEFAULT_MAX_FRAME, FrameDecoder, FrameError

#: Queue sentinel telling a writer task to flush and exit.
_CLOSE = object()

#: Per-peer send-queue bound (frames).  Deep enough that bursts within
#: one protocol round never block; shallow enough that a stalled peer
#: surfaces as SEND_TIMEOUT quickly.
DEFAULT_SEND_QUEUE = 64
#: How long ``PeerLink.aclose`` lets the writer flush queued frames
#: before cancelling it -- a peer that stopped reading must not be able
#: to wedge shutdown.
CLOSE_GRACE = 1.0
#: Socket read chunk; torn-frame handling makes the value uncritical.
READ_CHUNK = 64 * 1024

Deliver = Callable[[bytes], Awaitable[None]]
Resolve = Callable[[], Awaitable[Tuple[str, int]]]


class NodeEndpoint:
    """One node's listening socket and its inbound connections."""

    def __init__(self, address: int, deliver: Deliver,
                 max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.address = address
        self.ready = asyncio.Event()
        self.host = "127.0.0.1"
        self.port: Optional[int] = None
        self._deliver = deliver
        self._max_frame = max_frame
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self.closed = False
        #: Framing violations that killed an inbound connection.
        self.poisoned_connections = 0
        # Live per-connection decoders plus bytes resynced on ones that
        # already closed, so `resynced_bytes` never loses history.
        self._decoders: Set[FrameDecoder] = set()
        self._resynced_closed = 0

    @property
    def resynced_bytes(self) -> int:
        """Garbage bytes skipped while hunting for frame magic, summed
        over every inbound connection this endpoint ever served."""
        return self._resynced_closed + sum(
            decoder.resynced_bytes for decoder in self._decoders
        )

    async def start(self) -> None:
        if self.closed:
            return
        server = await asyncio.start_server(
            self._serve_connection, self.host, 0
        )
        if self.closed:
            # Retired while the listener was coming up.
            server.close()
            await server.wait_closed()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self.ready.set()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder(self._max_frame)
        self._connections.add(writer)
        self._decoders.add(decoder)
        try:
            while True:
                chunk = await reader.read(READ_CHUNK)
                if not chunk:
                    return
                for payload in decoder.feed(chunk):
                    await self._deliver(payload)
        except FrameError:
            self.poisoned_connections += 1
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # close() without awaiting wait_closed(): the inbound side
            # has nothing to flush, and awaiting here raises noisily if
            # the loop is tearing the handler task down.
            self._connections.discard(writer)
            self._decoders.discard(decoder)
            self._resynced_closed += decoder.resynced_bytes
            writer.close()

    async def aclose(self) -> None:
        if self.closed:
            return
        self.closed = True
        # Wake (not strand) anyone awaiting ready; resolve() re-checks
        # `closed` after the wait and raises LookupError.
        self.ready.set()
        if self._server is not None:
            self._server.close()
        # Close live inbound connections so their handlers finish (on
        # 3.12+ wait_closed would otherwise wait for them forever).
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()


class PeerLink:
    """Outbound frames to one destination through one pooled connection."""

    def __init__(self, resolve: Resolve,
                 on_discard: Callable[[bytes], None],
                 queue_size: int = DEFAULT_SEND_QUEUE) -> None:
        self._resolve = resolve
        self._on_discard = on_discard
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task = asyncio.get_running_loop().create_task(self._drain())
        self._closed = False
        self.frames_sent = 0
        self.frames_discarded = 0

    async def _connect(self) -> asyncio.StreamWriter:
        host, port = await self._resolve()
        _, writer = await asyncio.open_connection(host, port)
        return writer

    async def _write(self, frame: bytes) -> None:
        if self._writer is None:
            # Lazy connect: only the single _drain task ever calls _write,
            # so nothing can interleave on _writer across this await.
            self._writer = await self._connect()  # lint: disable=ASYNC101 -- only the single _drain task calls _write
        self._writer.write(frame)
        await self._writer.drain()

    async def _drain(self) -> None:
        while True:
            frame = await self.queue.get()
            if frame is _CLOSE:
                break
            try:
                try:
                    await self._write(frame)
                except (ConnectionError, OSError):
                    # Stale pooled connection (peer restarted / socket
                    # half-closed): retry once on a fresh one.
                    await self._reset_writer()
                    await self._write(frame)
                self.frames_sent += 1
            except (ConnectionError, OSError, LookupError):
                await self._reset_writer()
                self.frames_discarded += 1
                self._on_discard(frame)
            except asyncio.CancelledError:
                # Cancelled mid-write by aclose(): account for the frame
                # in hand so in-flight bookkeeping still balances.
                self.frames_discarded += 1
                self._on_discard(frame)
                raise
        await self._reset_writer()

    async def _reset_writer(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Graceful path: ask the writer to flush and exit.  Both steps
        # are bounded -- with the queue full, or the peer no longer
        # reading (writer wedged in drain()), close must not block.
        try:
            self.queue.put_nowait(_CLOSE)
        except asyncio.QueueFull:
            pass
        else:
            done, _ = await asyncio.wait({self._task}, timeout=CLOSE_GRACE)
            if done:
                return
        # Forceful path: cancel the writer, abort the connection (drops
        # kernel-buffered bytes -- close() could block on the flush),
        # and discard what never left the queue.
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.transport.abort()
        while True:
            try:
                frame = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if frame is not _CLOSE:
                self.frames_discarded += 1
                self._on_discard(frame)


class NodePool:
    """Registry of the endpoints and links living in this process."""

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME,
                 send_queue_size: int = DEFAULT_SEND_QUEUE) -> None:
        self._max_frame = max_frame
        self._send_queue_size = send_queue_size
        self._endpoints: Dict[int, NodeEndpoint] = {}
        self._links: Dict[int, PeerLink] = {}
        self._starters: Set[asyncio.Task] = set()
        # Wire-state history of retired endpoints, so pool totals are
        # monotone across node departures.
        self._resynced_retired = 0
        self._poisoned_retired = 0

    def spawn(self, address: int, deliver: Deliver) -> NodeEndpoint:
        """Create and asynchronously start the endpoint for *address*.

        Synchronous by design -- ``transport.register`` is synchronous --
        so the listener comes up in the background; senders await the
        endpoint's ``ready`` event through :meth:`resolve`.
        """
        if address in self._endpoints:
            raise ValueError(f"endpoint {address} already exists")
        endpoint = NodeEndpoint(address, deliver, self._max_frame)
        self._endpoints[address] = endpoint
        task = asyncio.get_running_loop().create_task(endpoint.start())
        self._starters.add(task)
        task.add_done_callback(self._starters.discard)
        return endpoint

    async def resolve(self, address: int) -> Tuple[str, int]:
        """(host, port) of a registered endpoint, awaiting its startup."""
        endpoint = self._endpoints.get(address)
        if endpoint is None:
            raise LookupError(f"no endpoint for address {address}")
        await endpoint.ready.wait()
        if endpoint.closed or endpoint.port is None:
            raise LookupError(f"endpoint {address} retired during connect")
        return endpoint.host, endpoint.port

    def link_to(self, destination: int,
                on_discard: Callable[[bytes], None]) -> PeerLink:
        """The pooled outbound link to *destination* (created on first use)."""
        link = self._links.get(destination)
        if link is None:
            link = PeerLink(
                lambda: self.resolve(destination),
                on_discard,
                queue_size=self._send_queue_size,
            )
            self._links[destination] = link
        return link

    async def retire(self, address: int) -> None:
        """Stop one endpoint (a node leaving / marked dead): its listener
        closes, so senders see connection failures, like a real crash."""
        endpoint = self._endpoints.pop(address, None)
        if endpoint is not None:
            await endpoint.aclose()
            self._resynced_retired += endpoint.resynced_bytes
            self._poisoned_retired += endpoint.poisoned_connections

    def links_idle(self) -> bool:
        return all(link.queue.empty() for link in self._links.values())

    # ------------------------------------------------------------------ #
    # wire observability (read by SocketTransport.wire_stats)
    # ------------------------------------------------------------------ #

    def link_count(self) -> int:
        return len(self._links)

    def send_queue_depth(self) -> int:
        """Frames queued on outbound links, waiting for writer tasks."""
        return sum(link.queue.qsize() for link in self._links.values())

    def poisoned_total(self) -> int:
        return self._poisoned_retired + sum(
            endpoint.poisoned_connections
            for endpoint in self._endpoints.values()
        )

    def resynced_total(self) -> int:
        return self._resynced_retired + sum(
            endpoint.resynced_bytes for endpoint in self._endpoints.values()
        )

    async def aclose(self) -> None:
        """Graceful shutdown: writers flush, listeners stop."""
        links, self._links = list(self._links.values()), {}
        for link in links:
            await link.aclose()
        for task in list(self._starters):
            if not task.done():
                task.cancel()
            try:
                await task
            except (asyncio.CancelledError, OSError):
                pass
        endpoints, self._endpoints = list(self._endpoints.values()), {}
        for endpoint in endpoints:
            await endpoint.aclose()
