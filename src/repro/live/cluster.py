"""Live Pastry nodes as asyncio tasks, and the cluster orchestrator.

Each :class:`LiveNode` runs a message loop over its transport mailbox
and maintains exactly the same :class:`~repro.pastry.state.NodeState`
the synchronous simulator uses; routing decisions go through the same
:class:`~repro.pastry.routing.DeterministicRouting` policy.  What is
*different* here is genuine concurrency: joins overlap, route messages
interleave, and dead peers are discovered through failed sends rather
than an oracle.

Protocol messages
-----------------
``route``          key routed hop by hop; carries a trail and, for join
                   routes, the routing-table rows collected on the way.
``route-result``   delivered notification back to the requesting node.
``join-request``   X -> contact A: start the join route towards X's id.
``join-reply``     root Z -> X: leaf set, neighborhood, collected rows.
``announce``       X -> everyone in its new state: "I have arrived."
``stop``           shut the node's loop down.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Dict, List, Optional

from repro.core.errors import DegradedError
from repro.faults.policy import AttemptLog, RetryPolicy
from repro.live.transport import InProcessTransport, Message
from repro.netsim.topology import EuclideanPlaneTopology, Topology
from repro.obs.events import NodeFailed, NodeJoined, RetryAttempted
from repro.obs.recorder import Observer
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.trace_context import TraceContext
from repro.pastry.nodeid import IdSpace
from repro.pastry.routing import DeterministicRouting, RandomizedRouting
from repro.pastry.state import NodeState
from repro.sim.rng import RngRegistry, stable_seed

ROUTE_TIMEOUT = 10.0  # seconds of real time; generous for CI machines

#: HELP texts for the live metric families ``metrics_text()`` exposes.
#: Every family a live deployment serves must be announced (strict
#: scrapers reject families without HELP/TYPE; see obs/validate.py).
LIVE_METRIC_HELP = {
    "live.messages": "Messages sent by live nodes, by protocol kind.",
    "live.nodes": "Live (responding) nodes in the cluster.",
    "live.joins": "Completed live join protocols.",
    "live.retries": "Live operation retry attempts, by operation.",
    "live.route.hops": "Overlay hops per completed live route.",
    "live.trace.spans": "Span records collected from live traces.",
    "node.failures": "Nodes that stopped responding.",
    "storage.used_bytes": "Bytes stored across live replicas.",
    "wire.resynced_bytes": "Garbage bytes skipped resynchronizing frame streams.",
    "wire.send_queue_depth": "Frames queued on outbound links awaiting writers.",
    "wire.in_flight": "Frames accepted toward the wire but not yet delivered.",
    "wire.mailbox_backlog": "Undelivered messages across all mailboxes.",
    "load.ops": "Load-harness operations, by op and outcome.",
    "load.latency_seconds": "Load-harness operation latency, by op.",
    "ledger.unpriced": "Ledger charges for kinds missing from MESSAGE_COSTS.",
}


class LiveNode:
    """One overlay node running as an asyncio task."""

    def __init__(self, cluster: "LiveCluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.state = NodeState(
            space=cluster.space,
            node_id=node_id,
            leaf_capacity=cluster.leaf_capacity,
            neighborhood_capacity=cluster.neighborhood_capacity,
            proximity=lambda other: cluster.topology.distance(node_id, other),
        )
        self.joined = asyncio.Event()
        self._policy = DeterministicRouting()
        self._task: Optional[asyncio.Task] = None
        self._running = False
        # Per-trace child-span sequence numbers (see _trace_child).
        self._trace_seq: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        self._running = True
        self._task = asyncio.create_task(self._run(), name=f"node-{self.node_id:x}")

    async def stop(self) -> None:
        if self._task is None:
            return
        self._running = False
        await self.cluster.transport.send(
            self.node_id, Message(kind="stop", sender=self.node_id)
        )
        try:
            await asyncio.wait_for(self._task, timeout=2.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            self._task.cancel()
        except asyncio.CancelledError:
            pass  # the task was cancelled by kill(); that is its end state

    async def _run(self) -> None:
        transport = self.cluster.transport
        while self._running:
            message = await transport.receive(self.node_id)
            if message is None or message.kind == "stop":
                break
            handler = getattr(self, f"_on_{message.kind.replace('-', '_')}", None)
            if handler is not None:
                await handler(message)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    async def _send(self, destination: int, message: Message):
        """Send; a *dead-peer* result is the discovery of that death.

        Only ``peer_dead`` outcomes forget the destination: a send that
        merely timed out under backpressure (``timed_out``) may have a
        live-but-slow peer behind it, and treating it as a death used to
        turn load spikes into false failure cascades (every slow send
        purged a healthy peer from the sender's state).  The returned
        :class:`~repro.live.transport.SendResult` is truthy iff the
        message was accepted towards the wire.
        """
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.counter("live.messages", kind=message.kind).increment()
        result = await self.cluster.transport.send(destination, message)
        if result.peer_dead:
            self.state.forget(destination)
        return result

    def _trace_child(self, header: str, *qualifiers: object) -> TraceContext:
        """Derive this node's next child context under *header*.

        Span ids carry a per-(node, trace) sequence number, so sibling
        spans stay distinct even when a duplicated message replays the
        same handler.  The counter is scoped per trace: concurrent
        operations cannot perturb each other's ids, which is what keeps
        interleaved traces individually byte-deterministic.
        """
        ctx = TraceContext.from_traceparent(header)
        seq = self._trace_seq.get(ctx.trace_id, 0)
        self._trace_seq[ctx.trace_id] = seq + 1
        return ctx.child(self.node_id, seq, *qualifiers)

    async def _forward_route(self, payload: dict) -> None:
        """Advance a route message one hop (or deliver it here).

        Retried messages carry a ``randomized_seed``: those hops are
        chosen by the randomized policy (claim C7), deterministically per
        (retry, node), so a retry explores an alternate path around
        whatever swallowed the original instead of repeating it.

        Traced routes (payload carries a ``traceparent``) record one
        "hop" span per decision via ``next_hop_explained`` -- same
        decision, annotated with the routing rule that fired -- and chain
        the context: the forwarded payload carries *this* hop's context,
        so the assembled tree mirrors the actual propagation path,
        re-decides after failed sends included.
        """
        key = payload["key"]
        policy = self._policy
        rng = None
        retry_seed = payload.get("randomized_seed")
        if retry_seed is not None:
            policy = RandomizedRouting()
            rng = random.Random(stable_seed(retry_seed, self.node_id))
        obs = self.cluster.obs
        parent = payload.get("traceparent")
        tracing = obs.enabled and parent is not None
        while True:
            if tracing:
                start = obs.traces.tick()
                hop, rule = policy.next_hop_explained(self.state, key, rng)
            else:
                hop = policy.next_hop(self.state, key, rng)
            cycle_guard = hop is not None and hop in payload["trail"]
            if cycle_guard:
                hop = None  # cycle guard: deliver here (see network.route)
            if tracing:
                ctx = self._trace_child(parent, "hop")
                attributes = {
                    "node_id": f"{self.node_id:x}",
                    "rule": rule,
                    "hop_index": len(payload["trail"]),
                }
                if cycle_guard:
                    attributes["cycle_guard"] = True
            if hop is None:
                if tracing:
                    obs.traces.record(
                        ctx, "hop", start=start, end=obs.traces.tick(),
                        delivered=True, **attributes,
                    )
                    payload["traceparent"] = ctx.to_traceparent()
                await self._deliver_route(payload)
                return
            payload["trail"].append(self.node_id)
            if payload.get("collect_rows") is not None:
                row_index = min(len(payload["trail"]) - 1, self.cluster.space.digits - 1)
                payload["collect_rows"].append(
                    (row_index, self.state.routing_table.row(row_index))
                )
            if tracing:
                payload["traceparent"] = ctx.to_traceparent()
            message = Message(kind="route", sender=self.node_id, payload=payload,
                              traceparent=payload.get("traceparent"))
            delivered = await self._send(hop, message)
            if tracing:
                attributes["next_node"] = f"{hop:x}"
                if not delivered:
                    attributes["send_failed"] = True
                obs.traces.record(
                    ctx, "hop", start=start, end=obs.traces.tick(), **attributes
                )
            if delivered:
                return
            payload["trail"].pop()
            if payload.get("collect_rows") is not None:
                payload["collect_rows"].pop()
            if tracing:
                # Re-decide under the *incoming* context; the failed
                # hop's span stays in the tree marked send_failed.
                payload["traceparent"] = parent
            # Send failed: the dead hop was forgotten; re-decide.

    async def _deliver_route(self, payload: dict) -> None:
        purpose = payload.get("purpose", "lookup")
        if purpose == "join":
            await self._answer_join(payload)
            return
        obs = self.cluster.obs
        parent = payload.get("traceparent")
        result = Message(
            kind="route-result",
            sender=self.node_id,
            payload={
                "request_id": payload["request_id"],
                "path": payload["trail"] + [self.node_id],
                "key": payload["key"],
            },
            traceparent=parent,
        )
        if obs.enabled and parent is not None:
            ctx = self._trace_child(parent, "deliver")
            obs.traces.record(
                ctx, "deliver",
                node_id=f"{self.node_id:x}",
                path_length=len(payload["trail"]) + 1,
            )
            result.traceparent = ctx.to_traceparent()
        await self._send(payload["origin"], result)

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #

    async def _on_route(self, message: Message) -> None:
        await self._forward_route(message.payload)

    async def _on_route_result(self, message: Message) -> None:
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.histogram("live.route.hops").add(
                max(len(message.payload["path"]) - 1, 0)
            )
        self.cluster._resolve_route(message.payload["request_id"], message.payload["path"])

    async def _on_join_request(self, message: Message) -> None:
        """Contact-node side: start the join route towards X's id."""
        joiner = message.payload["joiner"]
        payload = {
            "key": joiner,
            "origin": joiner,
            "purpose": "join",
            "trail": [],
            "collect_rows": [],
            "contact_neighborhood": sorted(
                self.state.neighborhood.members() | {self.node_id}
            ),
        }
        await self._forward_route(payload)

    async def _answer_join(self, payload: dict) -> None:
        """Root side: hand the joiner its initial state."""
        reply = Message(
            kind="join-reply",
            sender=self.node_id,
            payload={
                "leaf_set": sorted(self.state.leaf_set.members() | {self.node_id}),
                "neighborhood": payload.get("contact_neighborhood", []),
                "rows": payload.get("collect_rows", []),
                "trail": payload["trail"] + [self.node_id],
            },
        )
        await self._send(payload["origin"], reply)

    async def _on_join_reply(self, message: Message) -> None:
        """Joiner side: absorb the state, announce arrival."""
        payload = message.payload
        for peer in itertools.chain(
            payload["neighborhood"], payload["leaf_set"], payload["trail"]
        ):
            if peer != self.node_id:
                self.state.learn(peer)
        for row_index, row in payload["rows"]:
            self.state.routing_table.install_row(
                row_index, row, self.state.proximity
            )
            for entry in row:
                if entry is not None and entry != self.node_id:
                    self.state.learn(entry)
        announce = sorted(self.state.known_nodes())
        for peer in announce:
            await self._send(
                peer, Message(kind="announce", sender=self.node_id, payload={})
            )
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.counter("live.joins").increment()
            obs.emit(
                NodeJoined(
                    node_id=self.node_id,
                    contact_id=message.sender,
                    messages=len(announce),
                    route_hops=max(len(payload["trail"]) - 1, 0),
                )
            )
        self.joined.set()

    async def _on_announce(self, message: Message) -> None:
        self.state.learn(message.sender)

    async def _on_leafset_request(self, message: Message) -> None:
        await self._send(
            message.sender,
            Message(
                kind="leafset-reply",
                sender=self.node_id,
                payload={
                    "members": sorted(self.state.leaf_set.members() | {self.node_id})
                },
            ),
        )

    async def _on_leafset_reply(self, message: Message) -> None:
        for member in message.payload["members"]:
            if member != self.node_id:
                self.state.learn(member)

    # ------------------------------------------------------------------ #
    # telemetry plane (scrape / subscribe / probe over the normal wire)
    # ------------------------------------------------------------------ #

    def _telemetry_state(self) -> dict:
        """This node's structural state section: plain JSON, derived
        only from protocol state (no clocks), so snapshots stay
        deterministic per seed."""
        state = {
            "joined": self.joined.is_set(),
            "known_nodes": len(self.state.known_nodes()),
            "leaf_set": len(self.state.leaf_set.members()),
            "mailbox_depth": self.cluster.transport.mailbox_depth(self.node_id),
        }
        store = getattr(self, "store", None)
        if store is not None:
            state["store_files"] = store.replica_count()
            state["store_bytes"] = store.used
        return state

    async def _on_telemetry_scrape(self, message: Message) -> None:
        """Serve a full metrics/ledger/span snapshot to a collector."""
        obs = self.cluster.obs
        payload: dict = {
            "request_id": message.payload.get("request_id"),
            "node": f"{self.node_id:032x}",
            "state": self._telemetry_state(),
        }
        if obs.enabled:
            # Refresh the derived gauges first, so the export the
            # collector federates is the same view a local snapshot or
            # /metrics scrape would see.
            self.cluster.transport.publish_wire_gauges(obs.metrics)
            obs.metrics.gauge("live.trace.spans").set(float(len(obs.traces)))
            payload["registry"] = obs.metrics.export()
            payload["ledger"] = obs.ledger.summary(top=5)
            span_count = int(message.payload.get("spans", 0) or 0)
            if span_count > 0:
                payload["spans"] = [
                    record.to_dict()
                    for record in obs.traces.records()[-span_count:]
                ]
        await self._send(
            message.sender,
            Message(kind="telemetry-snapshot", sender=self.node_id,
                    payload=payload),
        )

    async def _on_telemetry_subscribe(self, message: Message) -> None:
        """Stream windowed series increments to a collector.

        The subscriber owns the clock: a request carrying ``at`` makes
        this node sample its registry into the window covering that
        logical instant before answering, and ``since`` bounds the reply
        to windows the subscriber has not seen yet.
        """
        obs = self.cluster.obs
        payload: dict = {
            "request_id": message.payload.get("request_id"),
            "node": f"{self.node_id:032x}",
        }
        recorder = getattr(obs, "timeseries", None)
        if obs.enabled and recorder is not None:
            window = message.payload.get("window")
            if window is not None:
                recorder.configure_window(float(window))
            at = message.payload.get("at")
            if at is not None:
                self.cluster.transport.publish_wire_gauges(obs.metrics)
                recorder.sample(obs.metrics, at=float(at))
            since = message.payload.get("since")
            payload["series"] = recorder.snapshot(
                since=int(since) if since is not None else None
            )
        await self._send(
            message.sender,
            Message(kind="telemetry-series", sender=self.node_id,
                    payload=payload),
        )

    async def _on_health_probe(self, message: Message) -> None:
        """Answer a structured health verdict built from live wire state."""
        transport = self.cluster.transport
        stats = transport.wire_stats()
        depth = transport.mailbox_depth(self.node_id)
        limit = transport.mailbox_capacity()
        checks = {
            "running": self._running,
            "joined": self.joined.is_set(),
            # A mailbox at >= 90% of its bound means backpressure is
            # about to reach this node's peers; unbounded (limit 0)
            # mailboxes skip the check.
            "mailbox_headroom": limit == 0 or depth < 0.9 * limit,
        }
        await self._send(
            message.sender,
            Message(
                kind="health-report",
                sender=self.node_id,
                payload={
                    "request_id": message.payload.get("request_id"),
                    "node": f"{self.node_id:032x}",
                    "healthy": all(checks.values()),
                    "checks": checks,
                    "mailbox_depth": depth,
                    "mailbox_limit": limit,
                    "in_flight": stats["in_flight"],
                    "resynced_bytes": stats["resynced_bytes"],
                    "send_queue_depth": stats["send_queue_depth"],
                    "pool": stats,
                    "state": self._telemetry_state(),
                },
            ),
        )


class LiveCluster:
    """Builds and drives a live overlay."""

    def __init__(
        self,
        seed: int = 0,
        leaf_capacity: int = 16,
        neighborhood_capacity: int = 16,
        topology: Optional[Topology] = None,
        space: Optional[IdSpace] = None,
        observer: Optional[Observer] = None,
        fault_plan=None,
        retry: Optional[RetryPolicy] = None,
        transport=None,
    ) -> None:
        self.space = space if space is not None else IdSpace(128, 4)
        self.rngs = RngRegistry(seed)
        self.topology = (
            topology
            if topology is not None
            else EuclideanPlaneTopology(self.rngs.stream("topology"))
        )
        self.leaf_capacity = leaf_capacity
        self.neighborhood_capacity = neighborhood_capacity
        # A live cluster is an operational deployment, not a perf
        # benchmark, so it observes itself by default (the clock stays
        # None: event timestamps are 0.0, ordering by sequence number).
        self.obs = observer if observer is not None else Observer()
        # *fault_plan* threads message-level chaos through the transport;
        # *retry* is the backoff discipline every client-facing operation
        # runs under (one-shot waits were how lost replies used to hang).
        # *transport* swaps the wire implementation (the asyncio TCP
        # transport in repro.live.net, say) -- the cluster, retry layer,
        # fault plan, tracing and ledger all run unchanged over it.
        if transport is None:
            transport = InProcessTransport(faults=fault_plan)
        elif fault_plan is not None:
            transport.faults = fault_plan
        self.transport = transport
        self.retry = retry if retry is not None else RetryPolicy()
        self._backoff_rng = self.rngs.stream("retry-backoff")
        # Trace ids are drawn from their own stream so adding/removing
        # traced operations never perturbs topology or backoff draws.
        self._trace_rng = self.rngs.stream("trace-ids")
        if self.obs.enabled:
            # Wire faults on traced messages land in the same collector
            # as the hop/attempt spans, so a trace shows *where* the
            # wire swallowed a message, not just that a retry fired.
            self.transport.traces = self.obs.traces
            # Every live message crosses the transport, so the cost
            # ledger charges there (real payload sizes for data-bearing
            # messages; modelled sizes otherwise).
            self.transport.ledger = self.obs.ledger
            for name, help_text in LIVE_METRIC_HELP.items():
                self.obs.metrics.describe(name, help_text)
            # Windowed series for the telemetry plane; samples are driven
            # by whoever owns the clock (a TelemetryCollector's rounds).
            if getattr(self.obs, "timeseries", None) is None:
                self.obs.timeseries = TimeSeriesRecorder()
        self.nodes: Dict[int, LiveNode] = {}
        self._route_futures: Dict[int, asyncio.Future] = {}
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def _create_node(self, node_id: Optional[int] = None) -> LiveNode:
        rng = self.rngs.stream("node-ids")
        if node_id is None:
            node_id = self.space.random_id(rng)
            while node_id in self.nodes:
                node_id = self.space.random_id(rng)
        self.topology.add_endpoint(node_id)
        self.transport.register(node_id)
        node = LiveNode(self, node_id)
        self.nodes[node_id] = node
        if self.obs.enabled:
            self.obs.metrics.gauge("live.nodes").increment()
        node.start()
        return node

    def _nearest_contact(self, newcomer: LiveNode, joined: List[int]) -> int:
        return min(
            joined,
            key=lambda other: self.topology.distance(newcomer.node_id, other),
        )

    async def start(self, n: int, join_concurrency: int = 8) -> None:
        """Bootstrap an n-node overlay with *concurrent* joins.

        Nodes join in waves of *join_concurrency*; within a wave the join
        protocols genuinely overlap (interleaved routes, announcements
        racing with other joins).
        """
        if n < 1:
            raise ValueError("need at least one node")
        first = self._create_node()
        first.joined.set()
        joined = [first.node_id]
        remaining = n - 1
        while remaining > 0:
            wave = [self._create_node() for _ in range(min(join_concurrency, remaining))]
            remaining -= len(wave)

            async def join_one(node: LiveNode) -> None:
                contact = self._nearest_contact(node, joined)
                await self.transport.send(
                    contact,
                    Message(kind="join-request", sender=node.node_id,
                            payload={"joiner": node.node_id}),
                )
                await asyncio.wait_for(node.joined.wait(), timeout=ROUTE_TIMEOUT)

            await asyncio.gather(*(join_one(node) for node in wave))
            joined.extend(node.node_id for node in wave)
            # Concurrent joiners within a wave may not have learned of
            # each other (their announcements raced); one leaf-set
            # stabilization round restores the adjacency invariants --
            # the live equivalent of Pastry's periodic leaf-set
            # maintenance.
            await self.stabilize(rounds=1)
        await self.stabilize(rounds=2)

    async def stabilize(self, rounds: int = 1) -> None:
        """Leaf-set gossip: every live node asks its current leaf-set
        members for *their* leaf sets and merges the replies.  Two rounds
        propagate membership across any single missed announcement."""
        for _ in range(rounds):
            for node_id in self.live_ids():
                node = self.nodes[node_id]
                for member in sorted(node.state.leaf_set.members()):
                    await self.transport.send(
                        member,
                        Message(kind="leafset-request", sender=node_id, payload={}),
                    )
            await self._quiesce()

    async def _quiesce(self, settle_checks: int = 3) -> None:
        """Wait until the transport has been idle for a few checks.

        ``idle()`` covers mailboxes *and* whatever in-flight state the
        transport tracks (socket send queues, un-delivered frames), so
        the settle loop does not declare quiet while bytes are still on
        the wire.
        """
        clear = 0
        while clear < settle_checks:
            await asyncio.sleep(0.005)
            if self.transport.idle():
                clear += 1
            else:
                clear = 0

    async def shutdown(self) -> None:
        await asyncio.gather(*(node.stop() for node in self.nodes.values()))
        await self.transport.aclose()

    def kill(self, node_id: int) -> None:
        """Silent failure: the node stops responding; peers discover it
        through failed sends."""
        self.transport.mark_dead(node_id)
        node = self.nodes[node_id]
        node._running = False
        if node._task is not None:
            node._task.cancel()
        if self.obs.enabled:
            self.obs.metrics.gauge("live.nodes").decrement()
            self.obs.metrics.counter("node.failures").increment()
            self.obs.emit(NodeFailed(node_id=node_id))

    def metrics_text(self) -> str:
        """The cluster's metrics in Prometheus text exposition format
        (what a live deployment would serve on ``/metrics``)."""
        if not self.obs.enabled:
            return ""
        self.obs.metrics.gauge("live.trace.spans").set(float(len(self.obs.traces)))
        return self.obs.metrics.to_prometheus()

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def live_ids(self) -> List[int]:
        return sorted(
            node_id for node_id in self.nodes
            if not self.transport.is_dead(node_id)
        )

    def global_root(self, key: int) -> int:
        """Ground truth for verification (never used by the protocol)."""
        return self.space.closest(key, iter(self.live_ids()))

    def _resolve_route(self, request_id: int, path: List[int]) -> None:
        future = self._route_futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(path)

    def _emit_retry(self, op: str, attempt: int, delay: float,
                    request_id: int) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter("live.retries", op=op).increment()
            self.obs.emit(RetryAttempted(
                op=op, attempt=attempt, delay=delay, request_id=request_id
            ))

    async def route(self, key: int, origin: int,
                    timeout: float = ROUTE_TIMEOUT) -> List[int]:
        """Route *key* from *origin*; returns the path (origin..root).

        Runs under the cluster's retry policy: each attempt gets an equal
        share of *timeout*; a lost message triggers exponential backoff
        and a re-send that routes via randomized alternates (claim C7).
        Exhausting every attempt raises :class:`DegradedError` -- the
        caller degrades instead of hanging on one lost reply -- carrying
        the full attempt history (span ids, backoff delays, reroute
        seeds) and the trace id of the operation's span tree.

        Each client route is one trace: a ``live.route`` root span, one
        "attempt" child per (re)send whose context travels inside the
        route payload, and under each attempt the hop chain the message
        actually took.
        """
        request_id = next(self._request_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._route_futures[request_id] = future
        policy = self.retry
        attempt_timeout = timeout / policy.attempts
        obs = self.obs
        tracing = obs.enabled
        root_ctx: Optional[TraceContext] = None
        attempt_log = AttemptLog()
        root_start = 0.0
        if tracing:
            root_ctx = TraceContext.root(self._trace_rng)
            attempt_log.trace_id = root_ctx.trace_id
            root_start = obs.traces.tick()
        delay = 0.0
        try:
            for attempt in range(policy.attempts):
                payload = {
                    "key": key,
                    "origin": origin,
                    "request_id": request_id,
                    "trail": [],
                    "purpose": "lookup",
                }
                reroute_seed = None
                if attempt > 0:
                    reroute_seed = stable_seed(
                        self.rngs.master_seed, request_id, attempt
                    )
                    payload["randomized_seed"] = reroute_seed
                attempt_ctx: Optional[TraceContext] = None
                attempt_start = 0.0
                if tracing:
                    attempt_ctx = root_ctx.child("attempt", attempt)
                    attempt_start = obs.traces.tick()
                    payload["traceparent"] = attempt_ctx.to_traceparent()
                attempt_log.add(
                    attempt=attempt + 1,
                    span_id=attempt_ctx.span_id if attempt_ctx else "",
                    delay=delay,
                    randomized=reroute_seed is not None,
                    reroute_seed=reroute_seed,
                )
                await self.transport.send(
                    origin, Message(kind="route", sender=origin, payload=payload,
                                    traceparent=payload.get("traceparent"))
                )
                try:
                    path = await asyncio.wait_for(
                        asyncio.shield(future), attempt_timeout
                    )
                    if tracing:
                        obs.traces.record(
                            attempt_ctx, "attempt",
                            start=attempt_start, end=obs.traces.tick(),
                            attempt=attempt + 1, outcome="delivered",
                            randomized=reroute_seed is not None,
                        )
                        obs.traces.record(
                            root_ctx, "live.route",
                            start=root_start, end=obs.traces.tick(),
                            key=f"{key:x}", origin=f"{origin:x}",
                            attempts=attempt + 1, path_length=len(path),
                            outcome="ok",
                        )
                    return path
                except asyncio.TimeoutError:
                    if tracing:
                        obs.traces.record(
                            attempt_ctx, "attempt",
                            start=attempt_start, end=obs.traces.tick(),
                            attempt=attempt + 1, outcome="timeout",
                            randomized=reroute_seed is not None,
                        )
                    if attempt + 1 >= policy.attempts:
                        break
                    delay = policy.backoff(attempt + 1, self._backoff_rng)
                    self._emit_retry("route", attempt + 1, delay, request_id)
                    await asyncio.sleep(delay)
            if tracing:
                obs.traces.record(
                    root_ctx, "live.route",
                    start=root_start, end=obs.traces.tick(),
                    key=f"{key:x}", origin=f"{origin:x}",
                    attempts=policy.attempts, outcome="degraded",
                )
            raise DegradedError(
                "route", policy.attempts,
                f"key {key:x} from {origin:x}: no reply",
                history=attempt_log.as_tuple(),
                trace_id=attempt_log.trace_id,
            )
        finally:
            pending = self._route_futures.pop(request_id, None)
            if pending is not None and not pending.done():
                pending.cancel()
