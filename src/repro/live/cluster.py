"""Live Pastry nodes as asyncio tasks, and the cluster orchestrator.

Each :class:`LiveNode` runs a message loop over its transport mailbox
and maintains exactly the same :class:`~repro.pastry.state.NodeState`
the synchronous simulator uses; routing decisions go through the same
:class:`~repro.pastry.routing.DeterministicRouting` policy.  What is
*different* here is genuine concurrency: joins overlap, route messages
interleave, and dead peers are discovered through failed sends rather
than an oracle.

Protocol messages
-----------------
``route``          key routed hop by hop; carries a trail and, for join
                   routes, the routing-table rows collected on the way.
``route-result``   delivered notification back to the requesting node.
``join-request``   X -> contact A: start the join route towards X's id.
``join-reply``     root Z -> X: leaf set, neighborhood, collected rows.
``announce``       X -> everyone in its new state: "I have arrived."
``stop``           shut the node's loop down.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Dict, List, Optional

from repro.core.errors import DegradedError
from repro.faults.policy import RetryPolicy
from repro.live.transport import InProcessTransport, Message
from repro.netsim.topology import EuclideanPlaneTopology, Topology
from repro.obs.events import NodeFailed, NodeJoined, RetryAttempted
from repro.obs.recorder import Observer
from repro.pastry.nodeid import IdSpace
from repro.pastry.routing import DeterministicRouting, RandomizedRouting
from repro.pastry.state import NodeState
from repro.sim.rng import RngRegistry, stable_seed

ROUTE_TIMEOUT = 10.0  # seconds of real time; generous for CI machines


class LiveNode:
    """One overlay node running as an asyncio task."""

    def __init__(self, cluster: "LiveCluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.state = NodeState(
            space=cluster.space,
            node_id=node_id,
            leaf_capacity=cluster.leaf_capacity,
            neighborhood_capacity=cluster.neighborhood_capacity,
            proximity=lambda other: cluster.topology.distance(node_id, other),
        )
        self.joined = asyncio.Event()
        self._policy = DeterministicRouting()
        self._task: Optional[asyncio.Task] = None
        self._running = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        self._running = True
        self._task = asyncio.create_task(self._run(), name=f"node-{self.node_id:x}")

    async def stop(self) -> None:
        if self._task is None:
            return
        self._running = False
        await self.cluster.transport.send(
            self.node_id, Message(kind="stop", sender=self.node_id)
        )
        try:
            await asyncio.wait_for(self._task, timeout=2.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            self._task.cancel()
        except asyncio.CancelledError:
            pass  # the task was cancelled by kill(); that is its end state

    async def _run(self) -> None:
        transport = self.cluster.transport
        while self._running:
            message = await transport.receive(self.node_id)
            if message is None or message.kind == "stop":
                break
            handler = getattr(self, f"_on_{message.kind.replace('-', '_')}", None)
            if handler is not None:
                await handler(message)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    async def _send(self, destination: int, message: Message) -> bool:
        """Send, treating failure as discovery of the peer's death."""
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.counter("live.messages", kind=message.kind).increment()
        delivered = await self.cluster.transport.send(destination, message)
        if not delivered:
            self.state.forget(destination)
        return delivered

    async def _forward_route(self, payload: dict) -> None:
        """Advance a route message one hop (or deliver it here).

        Retried messages carry a ``randomized_seed``: those hops are
        chosen by the randomized policy (claim C7), deterministically per
        (retry, node), so a retry explores an alternate path around
        whatever swallowed the original instead of repeating it.
        """
        key = payload["key"]
        policy = self._policy
        rng = None
        retry_seed = payload.get("randomized_seed")
        if retry_seed is not None:
            policy = RandomizedRouting()
            rng = random.Random(stable_seed(retry_seed, self.node_id))
        while True:
            hop = policy.next_hop(self.state, key, rng)
            if hop is not None and hop in payload["trail"]:
                hop = None  # cycle guard: deliver here (see network.route)
            if hop is None:
                await self._deliver_route(payload)
                return
            payload["trail"].append(self.node_id)
            if payload.get("collect_rows") is not None:
                row_index = min(len(payload["trail"]) - 1, self.cluster.space.digits - 1)
                payload["collect_rows"].append(
                    (row_index, self.state.routing_table.row(row_index))
                )
            message = Message(kind="route", sender=self.node_id, payload=payload)
            if await self._send(hop, message):
                return
            payload["trail"].pop()
            if payload.get("collect_rows") is not None:
                payload["collect_rows"].pop()
            # Send failed: the dead hop was forgotten; re-decide.

    async def _deliver_route(self, payload: dict) -> None:
        purpose = payload.get("purpose", "lookup")
        if purpose == "join":
            await self._answer_join(payload)
            return
        result = Message(
            kind="route-result",
            sender=self.node_id,
            payload={
                "request_id": payload["request_id"],
                "path": payload["trail"] + [self.node_id],
                "key": payload["key"],
            },
        )
        await self._send(payload["origin"], result)

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #

    async def _on_route(self, message: Message) -> None:
        await self._forward_route(message.payload)

    async def _on_route_result(self, message: Message) -> None:
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.histogram("live.route.hops").add(
                max(len(message.payload["path"]) - 1, 0)
            )
        self.cluster._resolve_route(message.payload["request_id"], message.payload["path"])

    async def _on_join_request(self, message: Message) -> None:
        """Contact-node side: start the join route towards X's id."""
        joiner = message.payload["joiner"]
        payload = {
            "key": joiner,
            "origin": joiner,
            "purpose": "join",
            "trail": [],
            "collect_rows": [],
            "contact_neighborhood": sorted(
                self.state.neighborhood.members() | {self.node_id}
            ),
        }
        await self._forward_route(payload)

    async def _answer_join(self, payload: dict) -> None:
        """Root side: hand the joiner its initial state."""
        reply = Message(
            kind="join-reply",
            sender=self.node_id,
            payload={
                "leaf_set": sorted(self.state.leaf_set.members() | {self.node_id}),
                "neighborhood": payload.get("contact_neighborhood", []),
                "rows": payload.get("collect_rows", []),
                "trail": payload["trail"] + [self.node_id],
            },
        )
        await self._send(payload["origin"], reply)

    async def _on_join_reply(self, message: Message) -> None:
        """Joiner side: absorb the state, announce arrival."""
        payload = message.payload
        for peer in itertools.chain(
            payload["neighborhood"], payload["leaf_set"], payload["trail"]
        ):
            if peer != self.node_id:
                self.state.learn(peer)
        for row_index, row in payload["rows"]:
            self.state.routing_table.install_row(
                row_index, row, self.state.proximity
            )
            for entry in row:
                if entry is not None and entry != self.node_id:
                    self.state.learn(entry)
        announce = sorted(self.state.known_nodes())
        for peer in announce:
            await self._send(
                peer, Message(kind="announce", sender=self.node_id, payload={})
            )
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.counter("live.joins").increment()
            obs.emit(
                NodeJoined(
                    node_id=self.node_id,
                    contact_id=message.sender,
                    messages=len(announce),
                    route_hops=max(len(payload["trail"]) - 1, 0),
                )
            )
        self.joined.set()

    async def _on_announce(self, message: Message) -> None:
        self.state.learn(message.sender)

    async def _on_leafset_request(self, message: Message) -> None:
        await self._send(
            message.sender,
            Message(
                kind="leafset-reply",
                sender=self.node_id,
                payload={
                    "members": sorted(self.state.leaf_set.members() | {self.node_id})
                },
            ),
        )

    async def _on_leafset_reply(self, message: Message) -> None:
        for member in message.payload["members"]:
            if member != self.node_id:
                self.state.learn(member)


class LiveCluster:
    """Builds and drives a live overlay."""

    def __init__(
        self,
        seed: int = 0,
        leaf_capacity: int = 16,
        neighborhood_capacity: int = 16,
        topology: Optional[Topology] = None,
        space: Optional[IdSpace] = None,
        observer: Optional[Observer] = None,
        fault_plan=None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.space = space if space is not None else IdSpace(128, 4)
        self.rngs = RngRegistry(seed)
        self.topology = (
            topology
            if topology is not None
            else EuclideanPlaneTopology(self.rngs.stream("topology"))
        )
        self.leaf_capacity = leaf_capacity
        self.neighborhood_capacity = neighborhood_capacity
        # A live cluster is an operational deployment, not a perf
        # benchmark, so it observes itself by default (the clock stays
        # None: event timestamps are 0.0, ordering by sequence number).
        self.obs = observer if observer is not None else Observer()
        # *fault_plan* threads message-level chaos through the transport;
        # *retry* is the backoff discipline every client-facing operation
        # runs under (one-shot waits were how lost replies used to hang).
        self.transport = InProcessTransport(faults=fault_plan)
        self.retry = retry if retry is not None else RetryPolicy()
        self._backoff_rng = self.rngs.stream("retry-backoff")
        self.nodes: Dict[int, LiveNode] = {}
        self._route_futures: Dict[int, asyncio.Future] = {}
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def _create_node(self, node_id: Optional[int] = None) -> LiveNode:
        rng = self.rngs.stream("node-ids")
        if node_id is None:
            node_id = self.space.random_id(rng)
            while node_id in self.nodes:
                node_id = self.space.random_id(rng)
        self.topology.add_endpoint(node_id)
        self.transport.register(node_id)
        node = LiveNode(self, node_id)
        self.nodes[node_id] = node
        if self.obs.enabled:
            self.obs.metrics.gauge("live.nodes").increment()
        node.start()
        return node

    def _nearest_contact(self, newcomer: LiveNode, joined: List[int]) -> int:
        return min(
            joined,
            key=lambda other: self.topology.distance(newcomer.node_id, other),
        )

    async def start(self, n: int, join_concurrency: int = 8) -> None:
        """Bootstrap an n-node overlay with *concurrent* joins.

        Nodes join in waves of *join_concurrency*; within a wave the join
        protocols genuinely overlap (interleaved routes, announcements
        racing with other joins).
        """
        if n < 1:
            raise ValueError("need at least one node")
        first = self._create_node()
        first.joined.set()
        joined = [first.node_id]
        remaining = n - 1
        while remaining > 0:
            wave = [self._create_node() for _ in range(min(join_concurrency, remaining))]
            remaining -= len(wave)

            async def join_one(node: LiveNode) -> None:
                contact = self._nearest_contact(node, joined)
                await self.transport.send(
                    contact,
                    Message(kind="join-request", sender=node.node_id,
                            payload={"joiner": node.node_id}),
                )
                await asyncio.wait_for(node.joined.wait(), timeout=ROUTE_TIMEOUT)

            await asyncio.gather(*(join_one(node) for node in wave))
            joined.extend(node.node_id for node in wave)
            # Concurrent joiners within a wave may not have learned of
            # each other (their announcements raced); one leaf-set
            # stabilization round restores the adjacency invariants --
            # the live equivalent of Pastry's periodic leaf-set
            # maintenance.
            await self.stabilize(rounds=1)
        await self.stabilize(rounds=2)

    async def stabilize(self, rounds: int = 1) -> None:
        """Leaf-set gossip: every live node asks its current leaf-set
        members for *their* leaf sets and merges the replies.  Two rounds
        propagate membership across any single missed announcement."""
        for _ in range(rounds):
            for node_id in self.live_ids():
                node = self.nodes[node_id]
                for member in sorted(node.state.leaf_set.members()):
                    await self.transport.send(
                        member,
                        Message(kind="leafset-request", sender=node_id, payload={}),
                    )
            await self._quiesce()

    async def _quiesce(self, settle_checks: int = 3) -> None:
        """Wait until every mailbox has been empty for a few checks."""
        clear = 0
        while clear < settle_checks:
            await asyncio.sleep(0.005)
            if all(q.empty() for q in self.transport._mailboxes.values()):
                clear += 1
            else:
                clear = 0

    async def shutdown(self) -> None:
        await asyncio.gather(*(node.stop() for node in self.nodes.values()))

    def kill(self, node_id: int) -> None:
        """Silent failure: the node stops responding; peers discover it
        through failed sends."""
        self.transport.mark_dead(node_id)
        node = self.nodes[node_id]
        node._running = False
        if node._task is not None:
            node._task.cancel()
        if self.obs.enabled:
            self.obs.metrics.gauge("live.nodes").decrement()
            self.obs.metrics.counter("node.failures").increment()
            self.obs.emit(NodeFailed(node_id=node_id))

    def metrics_text(self) -> str:
        """The cluster's metrics in Prometheus text exposition format
        (what a live deployment would serve on ``/metrics``)."""
        if not self.obs.enabled:
            return ""
        return self.obs.metrics.to_prometheus()

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def live_ids(self) -> List[int]:
        return sorted(
            node_id for node_id in self.nodes
            if not self.transport.is_dead(node_id)
        )

    def global_root(self, key: int) -> int:
        """Ground truth for verification (never used by the protocol)."""
        return self.space.closest(key, iter(self.live_ids()))

    def _resolve_route(self, request_id: int, path: List[int]) -> None:
        future = self._route_futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(path)

    def _emit_retry(self, op: str, attempt: int, delay: float,
                    request_id: int) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter("live.retries", op=op).increment()
            self.obs.emit(RetryAttempted(
                op=op, attempt=attempt, delay=delay, request_id=request_id
            ))

    async def route(self, key: int, origin: int,
                    timeout: float = ROUTE_TIMEOUT) -> List[int]:
        """Route *key* from *origin*; returns the path (origin..root).

        Runs under the cluster's retry policy: each attempt gets an equal
        share of *timeout*; a lost message triggers exponential backoff
        and a re-send that routes via randomized alternates (claim C7).
        Exhausting every attempt raises :class:`DegradedError` -- the
        caller degrades instead of hanging on one lost reply.
        """
        request_id = next(self._request_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._route_futures[request_id] = future
        policy = self.retry
        attempt_timeout = timeout / policy.attempts
        try:
            for attempt in range(policy.attempts):
                payload = {
                    "key": key,
                    "origin": origin,
                    "request_id": request_id,
                    "trail": [],
                    "purpose": "lookup",
                }
                if attempt > 0:
                    payload["randomized_seed"] = stable_seed(
                        self.rngs.master_seed, request_id, attempt
                    )
                await self.transport.send(
                    origin, Message(kind="route", sender=origin, payload=payload)
                )
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(future), attempt_timeout
                    )
                except asyncio.TimeoutError:
                    if attempt + 1 >= policy.attempts:
                        break
                    delay = policy.backoff(attempt + 1, self._backoff_rng)
                    self._emit_retry("route", attempt + 1, delay, request_id)
                    await asyncio.sleep(delay)
            raise DegradedError(
                "route", policy.attempts,
                f"key {key:x} from {origin:x}: no reply",
            )
        finally:
            pending = self._route_futures.pop(request_id, None)
            if pending is not None and not pending.done():
                pending.cancel()
