"""PAST storage operations over the live asyncio overlay.

Extends the live Pastry cluster with the storage protocol: inserts fan
out from the root to the k numerically closest nodes and collect
acknowledgements asynchronously; lookups are served by the *first* node
on the route holding a replica.  Everything runs inside the single-task
node loops, so all the interesting interleavings happen: two inserts
racing to the same region, lookups overtaking the insert that stored
their file, roots dying between fan-out and acknowledgement.

Scope note: this layer demonstrates the *protocol* under concurrency in
a trusted-community configuration (signature and content-hash checks,
no broker certification); the storage-management policies (diversion,
caching, quotas) are exercised exhaustively by the simulator test suite
and are orthogonal to message concurrency.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.core.certificates import FileCertificate
from repro.core.errors import DegradedError
from repro.core.files import FileData
from repro.core.storage import FileStore
from repro.live.cluster import ROUTE_TIMEOUT, LiveCluster, LiveNode
from repro.live.transport import Message
from repro.sim.rng import stable_seed

# Root-side pending inserts expire after this long: if the client has
# stopped retrying (its own timeout is ROUTE_TIMEOUT) the entry is
# garbage, and keeping it would strand the fan-out state forever.
PENDING_INSERT_TTL = 2.5 * ROUTE_TIMEOUT


class LiveStorageNode(LiveNode):
    """A live node that also stores replicas."""

    def __init__(self, cluster: "LiveStorageCluster", node_id: int,
                 capacity: int) -> None:
        super().__init__(cluster, node_id)
        self.store = FileStore(capacity)
        # insert_id -> {"needed", "stored", "client", "expiry"} at the root.
        self._pending_inserts: Dict[int, dict] = {}
        # request_id -> final result payload: lets the root replay the
        # outcome when a retried insert arrives after completion (the
        # original insert-result may have been lost in flight).
        self._completed_inserts: Dict[int, dict] = {}

    # ------------------------------------------------------------------ #
    # route delivery overrides
    # ------------------------------------------------------------------ #

    async def _forward_route(self, payload: dict) -> None:
        # En-route serving: the first node holding the file answers a
        # lookup immediately (the simulator's forward-hook behaviour).
        if payload.get("purpose") == "past-lookup":
            replica = self.store.get(payload["file_id"])
            if replica is not None and replica.data is not None:
                await self._send(
                    payload["client"],
                    Message(
                        kind="lookup-result",
                        sender=self.node_id,
                        payload={
                            "request_id": payload["request_id"],
                            "certificate": replica.certificate,
                            "data": replica.data,
                            "serving_node": self.node_id,
                        },
                    ),
                )
                return
        await super()._forward_route(payload)

    async def _deliver_route(self, payload: dict) -> None:
        purpose = payload.get("purpose")
        if purpose == "past-insert":
            await self._insert_as_root(payload)
            return
        if purpose == "past-lookup":
            # Reached the root without finding the file anywhere en route.
            await self._send(
                payload["client"],
                Message(
                    kind="lookup-result",
                    sender=self.node_id,
                    payload={"request_id": payload["request_id"],
                             "certificate": None, "data": None,
                             "serving_node": self.node_id},
                ),
            )
            return
        await super()._deliver_route(payload)

    # ------------------------------------------------------------------ #
    # insert: root-side fan-out with async ack collection
    # ------------------------------------------------------------------ #

    async def _insert_as_root(self, payload: dict) -> None:
        request_id = payload["request_id"]
        completed = self._completed_inserts.get(request_id)
        if completed is not None:
            # Client retry after we finished: the original result was
            # lost; replay it instead of re-running the insert.
            await self._send(
                payload["client"],
                Message(kind="insert-result", sender=self.node_id,
                        payload=completed),
            )
            return
        pending = self._pending_inserts.get(request_id)
        if pending is not None:
            # Client retry while the fan-out is still collecting acks:
            # re-poke only the replicas that have not answered yet.
            await self._repoke_pending(pending)
            return
        certificate: FileCertificate = payload["certificate"]
        if certificate.file_id in self.store:
            # Files are immutable and a fileId cannot be inserted twice;
            # the root holds every file it placed, so it is the natural
            # place to refuse duplicates (retries of *this* insert never
            # reach here -- they hit the pending/completed paths above).
            await self._insert_failed(payload, "duplicate")
            return
        k = certificate.replication_factor
        key = certificate.storage_key()
        try:
            replica_ids = self.state.leaf_set.replica_candidates(key, k)
        except ValueError:
            await self._insert_failed(payload, "bad-k")
            return
        pending = {
            "needed": set(replica_ids),
            "stored": set(),
            "client": payload["client"],
            "request_id": request_id,
            "certificate": certificate,
            "data": payload["data"],
            "expiry": asyncio.get_running_loop().call_later(
                PENDING_INSERT_TTL, self._expire_pending_insert, request_id
            ),
        }
        self._pending_inserts[request_id] = pending
        for replica_id in replica_ids:
            if replica_id == self.node_id:
                if self._store_locally(certificate, payload["data"]):
                    pending["stored"].add(self.node_id)
                continue
            message = Message(
                kind="store-request",
                sender=self.node_id,
                payload={
                    "request_id": request_id,
                    "certificate": certificate,
                    "data": payload["data"],
                },
            )
            await self._send(replica_id, message)
        await self._maybe_finish_insert(request_id)

    async def _repoke_pending(self, pending: dict) -> None:
        """Re-send store requests to the replicas still missing an ack
        (their request or their ack was lost)."""
        for replica_id in sorted(pending["needed"] - pending["stored"]):
            if replica_id == self.node_id:
                continue
            await self._send(
                replica_id,
                Message(
                    kind="store-request",
                    sender=self.node_id,
                    payload={
                        "request_id": pending["request_id"],
                        "certificate": pending["certificate"],
                        "data": pending["data"],
                    },
                ),
            )

    def _expire_pending_insert(self, request_id: int) -> None:
        """Drop a fan-out whose client stopped retrying; without this a
        single lost ack would strand the pending entry forever."""
        self._pending_inserts.pop(request_id, None)

    def _store_locally(self, certificate: FileCertificate,
                       data: FileData) -> bool:
        if not certificate.verify():
            return False
        if data.content_hash() != certificate.content_hash:
            return False
        if certificate.file_id in self.store:
            return False
        if certificate.size > self.store.free_space:
            return False
        self.store.store(certificate, data)
        return True

    async def _on_store_request(self, message: Message) -> None:
        certificate: FileCertificate = message.payload["certificate"]
        ok = self._store_locally(certificate, message.payload["data"])
        if not ok:
            # Idempotent re-store: a retried request for a replica we
            # already hold (the earlier ack was lost) is an ack, not a
            # refusal.  Genuine duplicates are refused at the root.
            held = self.store.get(certificate.file_id)
            ok = (
                held is not None
                and held.certificate.content_hash == certificate.content_hash
            )
        await self._send(
            message.sender,
            Message(
                kind="store-ack",
                sender=self.node_id,
                payload={"request_id": message.payload["request_id"], "ok": ok},
            ),
        )

    async def _on_store_ack(self, message: Message) -> None:
        pending = self._pending_inserts.get(message.payload["request_id"])
        if pending is None:
            return
        if message.payload["ok"]:
            pending["stored"].add(message.sender)
        else:
            pending["needed"].discard(message.sender)  # permanent refusal
        await self._maybe_finish_insert(message.payload["request_id"])

    async def _maybe_finish_insert(self, request_id: int) -> None:
        pending = self._pending_inserts.get(request_id)
        if pending is None:
            return
        if pending["stored"] >= pending["needed"]:
            self._retire_pending(request_id, pending)
            result = {
                "request_id": request_id,
                "success": True,
                "holders": sorted(pending["stored"]),
            }
            self._completed_inserts[request_id] = result
            await self._send(
                pending["client"],
                Message(kind="insert-result", sender=self.node_id,
                        payload=result),
            )
        elif pending["needed"] - pending["stored"] and \
                len(pending["needed"]) < pending["certificate"].replication_factor:
            # Someone refused: the insert cannot reach k replicas.
            self._retire_pending(request_id, pending)
            self._completed_inserts[request_id] = {
                "request_id": request_id, "success": False,
                "reason": "refused", "holders": [],
            }
            await self._insert_failed(
                {"client": pending["client"], "request_id": request_id},
                "refused",
            )

    def _retire_pending(self, request_id: int, pending: dict) -> None:
        del self._pending_inserts[request_id]
        expiry = pending.get("expiry")
        if expiry is not None:
            expiry.cancel()

    async def _insert_failed(self, payload: dict, reason: str) -> None:
        await self._send(
            payload["client"],
            Message(
                kind="insert-result",
                sender=self.node_id,
                payload={"request_id": payload["request_id"],
                         "success": False, "reason": reason, "holders": []},
            ),
        )

    async def _on_insert_result(self, message: Message) -> None:
        self.cluster._resolve_request(message.payload["request_id"], message.payload)

    async def _on_lookup_result(self, message: Message) -> None:
        self.cluster._resolve_request(message.payload["request_id"], message.payload)


class LiveStorageCluster(LiveCluster):
    """A live overlay whose nodes store files."""

    def __init__(self, seed: int = 0, node_capacity: int = 1 << 24, **kwargs) -> None:
        super().__init__(seed, **kwargs)
        self.node_capacity = node_capacity
        self._request_futures: Dict[int, asyncio.Future] = {}
        self._op_ids = itertools.count(10_000)

    def _create_node(self, node_id: Optional[int] = None) -> LiveNode:
        rng = self.rngs.stream("node-ids")
        if node_id is None:
            node_id = self.space.random_id(rng)
            while node_id in self.nodes:
                node_id = self.space.random_id(rng)
        self.topology.add_endpoint(node_id)
        self.transport.register(node_id)
        node = LiveStorageNode(self, node_id, self.node_capacity)
        self.nodes[node_id] = node
        node.start()
        return node

    def _resolve_request(self, request_id: int, payload: dict) -> None:
        future = self._request_futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(payload)

    async def _request(self, origin: int, payload: dict,
                       timeout: float = ROUTE_TIMEOUT) -> dict:
        """Issue a storage request under the retry policy.

        The request keeps one request_id across attempts so the root can
        recognise retries (resume a pending fan-out, replay a completed
        result) instead of double-inserting.  The old one-shot
        ``wait_for(future, timeout)`` stranded the future and the root's
        fan-out state whenever a single reply was lost; now each attempt
        gets a share of *timeout*, retries reroute via randomized
        alternates, and exhaustion raises :class:`DegradedError` with the
        pending entry cleaned up.
        """
        request_id = next(self._op_ids)
        op = payload.get("purpose", "request")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._request_futures[request_id] = future
        policy = self.retry
        attempt_timeout = timeout / policy.attempts
        try:
            for attempt in range(policy.attempts):
                attempt_payload = dict(payload)
                attempt_payload["request_id"] = request_id
                attempt_payload["client"] = origin
                attempt_payload["trail"] = []
                if attempt > 0:
                    attempt_payload["randomized_seed"] = stable_seed(
                        self.rngs.master_seed, request_id, attempt
                    )
                await self.transport.send(
                    origin,
                    Message(kind="route", sender=origin, payload=attempt_payload),
                )
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(future), attempt_timeout
                    )
                except asyncio.TimeoutError:
                    if attempt + 1 >= policy.attempts:
                        break
                    delay = policy.backoff(attempt + 1, self._backoff_rng)
                    self._emit_retry(op, attempt + 1, delay, request_id)
                    await asyncio.sleep(delay)
            raise DegradedError(op, policy.attempts, "no reply")
        finally:
            pending = self._request_futures.pop(request_id, None)
            if pending is not None and not pending.done():
                pending.cancel()

    async def insert(self, certificate: FileCertificate, data: FileData,
                     origin: int) -> dict:
        """Insert a certified file from *origin*; returns the result
        payload (success flag + holder list)."""
        return await self._request(
            origin,
            {"key": certificate.storage_key(), "purpose": "past-insert",
             "certificate": certificate, "data": data},
        )

    async def lookup(self, file_id: int, origin: int) -> dict:
        """Look a file up from *origin*; the result payload carries the
        certificate and data (None if not found)."""
        from repro.core.ids import storage_key

        return await self._request(
            origin,
            {"key": storage_key(file_id), "purpose": "past-lookup",
             "file_id": file_id},
        )
