"""PAST storage operations over the live asyncio overlay.

Extends the live Pastry cluster with the storage protocol: inserts fan
out from the root to the k numerically closest nodes and collect
acknowledgements asynchronously; lookups are served by the *first* node
on the route holding a replica.  Everything runs inside the single-task
node loops, so all the interesting interleavings happen: two inserts
racing to the same region, lookups overtaking the insert that stored
their file, roots dying between fan-out and acknowledgement.

Scope note: this layer demonstrates the *protocol* under concurrency in
a trusted-community configuration (signature and content-hash checks,
no broker certification); the storage-management policies (diversion,
caching, quotas) are exercised exhaustively by the simulator test suite
and are orthogonal to message concurrency.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.core.certificates import FileCertificate
from repro.core.errors import DegradedError
from repro.core.files import FileData
from repro.core.storage import FileStore
from repro.faults.policy import AttemptLog
from repro.live.cluster import ROUTE_TIMEOUT, LiveCluster, LiveNode
from repro.live.transport import Message
from repro.obs.trace_context import TraceContext
from repro.sim.rng import stable_seed

# Root-side pending inserts expire after this long: if the client has
# stopped retrying (its own timeout is ROUTE_TIMEOUT) the entry is
# garbage, and keeping it would strand the fan-out state forever.
PENDING_INSERT_TTL = 2.5 * ROUTE_TIMEOUT


class LiveStorageNode(LiveNode):
    """A live node that also stores replicas."""

    def __init__(self, cluster: "LiveStorageCluster", node_id: int,
                 capacity: int) -> None:
        super().__init__(cluster, node_id)
        self.store = FileStore(capacity)
        # insert_id -> {"needed", "stored", "client", "expiry"} at the root.
        self._pending_inserts: Dict[int, dict] = {}
        # request_id -> final result payload: lets the root replay the
        # outcome when a retried insert arrives after completion (the
        # original insert-result may have been lost in flight).
        self._completed_inserts: Dict[int, dict] = {}

    # ------------------------------------------------------------------ #
    # route delivery overrides
    # ------------------------------------------------------------------ #

    async def _forward_route(self, payload: dict) -> None:
        # En-route serving: the first node holding the file answers a
        # lookup immediately (the simulator's forward-hook behaviour).
        if payload.get("purpose") == "past-lookup":
            replica = self.store.get(payload["file_id"])
            if replica is not None and replica.data is not None:
                obs = self.cluster.obs
                parent = payload.get("traceparent")
                result = Message(
                    kind="lookup-result",
                    sender=self.node_id,
                    payload={
                        "request_id": payload["request_id"],
                        "certificate": replica.certificate,
                        "data": replica.data,
                        "serving_node": self.node_id,
                    },
                    traceparent=parent,
                )
                if obs.enabled and parent is not None:
                    ctx = self._trace_child(parent, "serve")
                    obs.traces.record(
                        ctx, "serve",
                        node_id=f"{self.node_id:x}",
                        found=True, en_route=True,
                        hop_index=len(payload["trail"]),
                    )
                    result.traceparent = ctx.to_traceparent()
                await self._send(payload["client"], result)
                return
        await super()._forward_route(payload)

    async def _deliver_route(self, payload: dict) -> None:
        purpose = payload.get("purpose")
        if purpose == "past-insert":
            await self._insert_as_root(payload)
            return
        if purpose == "past-lookup":
            # Reached the root without finding the file anywhere en route.
            obs = self.cluster.obs
            parent = payload.get("traceparent")
            result = Message(
                kind="lookup-result",
                sender=self.node_id,
                payload={"request_id": payload["request_id"],
                         "certificate": None, "data": None,
                         "serving_node": self.node_id},
                traceparent=parent,
            )
            if obs.enabled and parent is not None:
                ctx = self._trace_child(parent, "serve")
                obs.traces.record(
                    ctx, "serve",
                    node_id=f"{self.node_id:x}", found=False, en_route=False,
                )
                result.traceparent = ctx.to_traceparent()
            await self._send(payload["client"], result)
            return
        await super()._deliver_route(payload)

    # ------------------------------------------------------------------ #
    # insert: root-side fan-out with async ack collection
    # ------------------------------------------------------------------ #

    async def _insert_as_root(self, payload: dict) -> None:
        request_id = payload["request_id"]
        obs = self.cluster.obs
        parent = payload.get("traceparent")
        tracing = obs.enabled and parent is not None
        completed = self._completed_inserts.get(request_id)
        if completed is not None:
            # Client retry after we finished: the original result was
            # lost; replay it instead of re-running the insert.
            result = Message(kind="insert-result", sender=self.node_id,
                             payload=completed, traceparent=parent)
            if tracing:
                ctx = self._trace_child(parent, "replay-result")
                obs.traces.record(
                    ctx, "replay-result",
                    node_id=f"{self.node_id:x}",
                    success=bool(completed.get("success")),
                )
                result.traceparent = ctx.to_traceparent()
            await self._send(payload["client"], result)
            return
        pending = self._pending_inserts.get(request_id)
        if pending is not None:
            # Client retry while the fan-out is still collecting acks:
            # re-poke only the replicas that have not answered yet.
            await self._repoke_pending(pending, parent)
            return
        ctx: Optional[TraceContext] = None
        start = 0.0
        if tracing:
            ctx = self._trace_child(parent, "insert-root")
            start = obs.traces.tick()
        certificate: FileCertificate = payload["certificate"]
        if certificate.file_id in self.store:
            # Files are immutable and a fileId cannot be inserted twice;
            # the root holds every file it placed, so it is the natural
            # place to refuse duplicates (retries of *this* insert never
            # reach here -- they hit the pending/completed paths above).
            if tracing:
                obs.traces.record(ctx, "insert-root", start=start,
                                  node_id=f"{self.node_id:x}",
                                  outcome="duplicate")
                payload["traceparent"] = ctx.to_traceparent()
            await self._insert_failed(payload, "duplicate")
            return
        k = certificate.replication_factor
        key = certificate.storage_key()
        try:
            replica_ids = self.state.leaf_set.replica_candidates(key, k)
        except ValueError:
            if tracing:
                obs.traces.record(ctx, "insert-root", start=start,
                                  node_id=f"{self.node_id:x}", outcome="bad-k")
                payload["traceparent"] = ctx.to_traceparent()
            await self._insert_failed(payload, "bad-k")
            return
        pending = {
            "needed": set(replica_ids),
            "stored": set(),
            "client": payload["client"],
            "request_id": request_id,
            "certificate": certificate,
            "data": payload["data"],
            # The root's insert context: the final insert-result (sent
            # from whichever ack completes the fan-out) stays on this
            # operation's trace.
            "traceparent": ctx.to_traceparent() if ctx is not None else None,
            "expiry": asyncio.get_running_loop().call_later(
                PENDING_INSERT_TTL, self._expire_pending_insert, request_id
            ),
        }
        self._pending_inserts[request_id] = pending
        for replica_id in replica_ids:
            if replica_id == self.node_id:
                stored = self._store_locally(certificate, payload["data"])
                if stored:
                    pending["stored"].add(self.node_id)
                if tracing:
                    obs.traces.record(
                        self._trace_child(pending["traceparent"], "store"),
                        "store", node_id=f"{self.node_id:x}",
                        ok=stored, local=True,
                    )
                continue
            message = Message(
                kind="store-request",
                sender=self.node_id,
                payload={
                    "request_id": request_id,
                    "certificate": certificate,
                    "data": payload["data"],
                },
                traceparent=pending["traceparent"],
            )
            await self._send(replica_id, message)
        if tracing:
            obs.traces.record(
                ctx, "insert-root", start=start, end=obs.traces.tick(),
                node_id=f"{self.node_id:x}",
                file_id=f"{certificate.file_id:x}",
                k=k, replicas=len(replica_ids), outcome="fanout",
            )
        await self._maybe_finish_insert(request_id)

    async def _repoke_pending(self, pending: dict,
                              parent: Optional[str] = None) -> None:
        """Re-send store requests to the replicas still missing an ack
        (their request or their ack was lost).  *parent* is the retry
        attempt's trace context: the repoke span lands under the attempt
        that triggered it, not the original fan-out."""
        obs = self.cluster.obs
        header = None
        missing = sorted(pending["needed"] - pending["stored"])
        if obs.enabled and parent is not None:
            ctx = self._trace_child(parent, "repoke")
            obs.traces.record(
                ctx, "repoke",
                node_id=f"{self.node_id:x}", missing=len(missing),
            )
            header = ctx.to_traceparent()
        for replica_id in missing:
            if replica_id == self.node_id:
                continue
            await self._send(
                replica_id,
                Message(
                    kind="store-request",
                    sender=self.node_id,
                    payload={
                        "request_id": pending["request_id"],
                        "certificate": pending["certificate"],
                        "data": pending["data"],
                    },
                    traceparent=header,
                ),
            )

    def _expire_pending_insert(self, request_id: int) -> None:
        """Drop a fan-out whose client stopped retrying; without this a
        single lost ack would strand the pending entry forever."""
        self._pending_inserts.pop(request_id, None)

    def _store_locally(self, certificate: FileCertificate,
                       data: FileData) -> bool:
        if not certificate.verify():
            return False
        if data.content_hash() != certificate.content_hash:
            return False
        if certificate.file_id in self.store:
            return False
        if certificate.size > self.store.free_space:
            return False
        self.store.store(certificate, data)
        return True

    async def _on_store_request(self, message: Message) -> None:
        certificate: FileCertificate = message.payload["certificate"]
        ok = self._store_locally(certificate, message.payload["data"])
        if not ok:
            # Idempotent re-store: a retried request for a replica we
            # already hold (the earlier ack was lost) is an ack, not a
            # refusal.  Genuine duplicates are refused at the root.
            held = self.store.get(certificate.file_id)
            ok = (
                held is not None
                and held.certificate.content_hash == certificate.content_hash
            )
        ack = Message(
            kind="store-ack",
            sender=self.node_id,
            payload={"request_id": message.payload["request_id"], "ok": ok},
            traceparent=message.traceparent,
        )
        obs = self.cluster.obs
        if obs.enabled and message.traceparent is not None:
            ctx = self._trace_child(message.traceparent, "store")
            obs.traces.record(
                ctx, "store", node_id=f"{self.node_id:x}", ok=ok, local=False,
            )
            # A dropped ack now shows as a wire fault under this store
            # span -- the exact link the repoke path exists to repair.
            ack.traceparent = ctx.to_traceparent()
        await self._send(message.sender, ack)

    async def _on_store_ack(self, message: Message) -> None:
        pending = self._pending_inserts.get(message.payload["request_id"])
        if pending is None:
            return
        if message.payload["ok"]:
            pending["stored"].add(message.sender)
        else:
            pending["needed"].discard(message.sender)  # permanent refusal
        await self._maybe_finish_insert(message.payload["request_id"])

    async def _maybe_finish_insert(self, request_id: int) -> None:
        pending = self._pending_inserts.get(request_id)
        if pending is None:
            return
        if pending["stored"] >= pending["needed"]:
            self._retire_pending(request_id, pending)
            result = {
                "request_id": request_id,
                "success": True,
                "holders": sorted(pending["stored"]),
            }
            self._completed_inserts[request_id] = result
            await self._send(
                pending["client"],
                Message(kind="insert-result", sender=self.node_id,
                        payload=result,
                        traceparent=pending.get("traceparent")),
            )
        elif pending["needed"] - pending["stored"] and \
                len(pending["needed"]) < pending["certificate"].replication_factor:
            # Someone refused: the insert cannot reach k replicas.
            self._retire_pending(request_id, pending)
            self._completed_inserts[request_id] = {
                "request_id": request_id, "success": False,
                "reason": "refused", "holders": [],
            }
            await self._insert_failed(
                {"client": pending["client"], "request_id": request_id,
                 "traceparent": pending.get("traceparent")},
                "refused",
            )

    def _retire_pending(self, request_id: int, pending: dict) -> None:
        del self._pending_inserts[request_id]
        expiry = pending.get("expiry")
        if expiry is not None:
            expiry.cancel()

    async def _insert_failed(self, payload: dict, reason: str) -> None:
        await self._send(
            payload["client"],
            Message(
                kind="insert-result",
                sender=self.node_id,
                payload={"request_id": payload["request_id"],
                         "success": False, "reason": reason, "holders": []},
                traceparent=payload.get("traceparent"),
            ),
        )

    async def _on_insert_result(self, message: Message) -> None:
        self.cluster._resolve_request(message.payload["request_id"], message.payload)

    async def _on_lookup_result(self, message: Message) -> None:
        self.cluster._resolve_request(message.payload["request_id"], message.payload)


class LiveStorageCluster(LiveCluster):
    """A live overlay whose nodes store files."""

    def __init__(self, seed: int = 0, node_capacity: int = 1 << 24, **kwargs) -> None:
        super().__init__(seed, **kwargs)
        self.node_capacity = node_capacity
        self._request_futures: Dict[int, asyncio.Future] = {}
        self._op_ids = itertools.count(10_000)

    def _create_node(self, node_id: Optional[int] = None) -> LiveNode:
        rng = self.rngs.stream("node-ids")
        if node_id is None:
            node_id = self.space.random_id(rng)
            while node_id in self.nodes:
                node_id = self.space.random_id(rng)
        self.topology.add_endpoint(node_id)
        self.transport.register(node_id)
        node = LiveStorageNode(self, node_id, self.node_capacity)
        self.nodes[node_id] = node
        node.start()
        return node

    def _resolve_request(self, request_id: int, payload: dict) -> None:
        future = self._request_futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(payload)

    async def _request(self, origin: int, payload: dict,
                       timeout: float = ROUTE_TIMEOUT) -> dict:
        """Issue a storage request under the retry policy.

        The request keeps one request_id across attempts so the root can
        recognise retries (resume a pending fan-out, replay a completed
        result) instead of double-inserting.  The old one-shot
        ``wait_for(future, timeout)`` stranded the future and the root's
        fan-out state whenever a single reply was lost; now each attempt
        gets a share of *timeout*, retries reroute via randomized
        alternates, and exhaustion raises :class:`DegradedError` with the
        pending entry cleaned up.

        Each storage operation is one trace (a ``live.past-insert`` /
        ``live.past-lookup`` root span); attempt contexts travel inside
        the payload exactly as in :meth:`LiveCluster.route`, so the
        assembled tree shows routing hops, the root's replica fan-out,
        en-route serves, and every retry.
        """
        request_id = next(self._op_ids)
        op = payload.get("purpose", "request")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._request_futures[request_id] = future
        policy = self.retry
        attempt_timeout = timeout / policy.attempts
        obs = self.obs
        tracing = obs.enabled
        root_ctx: Optional[TraceContext] = None
        attempt_log = AttemptLog()
        root_start = 0.0
        if tracing:
            root_ctx = TraceContext.root(self._trace_rng)
            attempt_log.trace_id = root_ctx.trace_id
            root_start = obs.traces.tick()
        delay = 0.0
        try:
            for attempt in range(policy.attempts):
                attempt_payload = dict(payload)
                attempt_payload["request_id"] = request_id
                attempt_payload["client"] = origin
                attempt_payload["trail"] = []
                reroute_seed = None
                if attempt > 0:
                    reroute_seed = stable_seed(
                        self.rngs.master_seed, request_id, attempt
                    )
                    attempt_payload["randomized_seed"] = reroute_seed
                attempt_ctx: Optional[TraceContext] = None
                attempt_start = 0.0
                if tracing:
                    attempt_ctx = root_ctx.child("attempt", attempt)
                    attempt_start = obs.traces.tick()
                    attempt_payload["traceparent"] = attempt_ctx.to_traceparent()
                attempt_log.add(
                    attempt=attempt + 1,
                    span_id=attempt_ctx.span_id if attempt_ctx else "",
                    delay=delay,
                    randomized=reroute_seed is not None,
                    reroute_seed=reroute_seed,
                )
                await self.transport.send(
                    origin,
                    Message(kind="route", sender=origin, payload=attempt_payload,
                            traceparent=attempt_payload.get("traceparent")),
                )
                try:
                    result = await asyncio.wait_for(
                        asyncio.shield(future), attempt_timeout
                    )
                    if tracing:
                        obs.traces.record(
                            attempt_ctx, "attempt",
                            start=attempt_start, end=obs.traces.tick(),
                            attempt=attempt + 1, outcome="delivered",
                            randomized=reroute_seed is not None,
                        )
                        obs.traces.record(
                            root_ctx, f"live.{op}",
                            start=root_start, end=obs.traces.tick(),
                            key=f"{payload['key']:x}", origin=f"{origin:x}",
                            attempts=attempt + 1, outcome="ok",
                        )
                    return result
                except asyncio.TimeoutError:
                    if tracing:
                        obs.traces.record(
                            attempt_ctx, "attempt",
                            start=attempt_start, end=obs.traces.tick(),
                            attempt=attempt + 1, outcome="timeout",
                            randomized=reroute_seed is not None,
                        )
                    if attempt + 1 >= policy.attempts:
                        break
                    delay = policy.backoff(attempt + 1, self._backoff_rng)
                    self._emit_retry(op, attempt + 1, delay, request_id)
                    await asyncio.sleep(delay)
            if tracing:
                obs.traces.record(
                    root_ctx, f"live.{op}",
                    start=root_start, end=obs.traces.tick(),
                    key=f"{payload['key']:x}", origin=f"{origin:x}",
                    attempts=policy.attempts, outcome="degraded",
                )
            raise DegradedError(
                op, policy.attempts, "no reply",
                history=attempt_log.as_tuple(),
                trace_id=attempt_log.trace_id,
            )
        finally:
            pending = self._request_futures.pop(request_id, None)
            if pending is not None and not pending.done():
                pending.cancel()

    async def insert(self, certificate: FileCertificate, data: FileData,
                     origin: int) -> dict:
        """Insert a certified file from *origin*; returns the result
        payload (success flag + holder list)."""
        return await self._request(
            origin,
            {"key": certificate.storage_key(), "purpose": "past-insert",
             "certificate": certificate, "data": data},
        )

    async def lookup(self, file_id: int, origin: int) -> dict:
        """Look a file up from *origin*; the result payload carries the
        certificate and data (None if not found)."""
        from repro.core.ids import storage_key

        return await self._request(
            origin,
            {"key": storage_key(file_id), "purpose": "past-lookup",
             "file_id": file_id},
        )
