"""PAST storage operations over the live asyncio overlay.

Extends the live Pastry cluster with the storage protocol: inserts fan
out from the root to the k numerically closest nodes and collect
acknowledgements asynchronously; lookups are served by the *first* node
on the route holding a replica.  Everything runs inside the single-task
node loops, so all the interesting interleavings happen: two inserts
racing to the same region, lookups overtaking the insert that stored
their file, roots dying between fan-out and acknowledgement.

Scope note: this layer demonstrates the *protocol* under concurrency in
a trusted-community configuration (signature and content-hash checks,
no broker certification); the storage-management policies (diversion,
caching, quotas) are exercised exhaustively by the simulator test suite
and are orthogonal to message concurrency.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional

from repro.core.certificates import FileCertificate
from repro.core.files import FileData
from repro.core.storage import FileStore
from repro.live.cluster import LiveCluster, LiveNode, ROUTE_TIMEOUT
from repro.live.transport import Message


class LiveStorageNode(LiveNode):
    """A live node that also stores replicas."""

    def __init__(self, cluster: "LiveStorageCluster", node_id: int,
                 capacity: int) -> None:
        super().__init__(cluster, node_id)
        self.store = FileStore(capacity)
        # insert_id -> {"needed", "receipts", "client"} at the root.
        self._pending_inserts: Dict[int, dict] = {}

    # ------------------------------------------------------------------ #
    # route delivery overrides
    # ------------------------------------------------------------------ #

    async def _forward_route(self, payload: dict) -> None:
        # En-route serving: the first node holding the file answers a
        # lookup immediately (the simulator's forward-hook behaviour).
        if payload.get("purpose") == "past-lookup":
            replica = self.store.get(payload["file_id"])
            if replica is not None and replica.data is not None:
                await self._send(
                    payload["client"],
                    Message(
                        kind="lookup-result",
                        sender=self.node_id,
                        payload={
                            "request_id": payload["request_id"],
                            "certificate": replica.certificate,
                            "data": replica.data,
                            "serving_node": self.node_id,
                        },
                    ),
                )
                return
        await super()._forward_route(payload)

    async def _deliver_route(self, payload: dict) -> None:
        purpose = payload.get("purpose")
        if purpose == "past-insert":
            await self._insert_as_root(payload)
            return
        if purpose == "past-lookup":
            # Reached the root without finding the file anywhere en route.
            await self._send(
                payload["client"],
                Message(
                    kind="lookup-result",
                    sender=self.node_id,
                    payload={"request_id": payload["request_id"],
                             "certificate": None, "data": None,
                             "serving_node": self.node_id},
                ),
            )
            return
        await super()._deliver_route(payload)

    # ------------------------------------------------------------------ #
    # insert: root-side fan-out with async ack collection
    # ------------------------------------------------------------------ #

    async def _insert_as_root(self, payload: dict) -> None:
        certificate: FileCertificate = payload["certificate"]
        k = certificate.replication_factor
        key = certificate.storage_key()
        try:
            replica_ids = self.state.leaf_set.replica_candidates(key, k)
        except ValueError:
            await self._insert_failed(payload, "bad-k")
            return
        pending = {
            "needed": set(replica_ids),
            "stored": set(),
            "client": payload["client"],
            "request_id": payload["request_id"],
            "certificate": certificate,
        }
        self._pending_inserts[payload["request_id"]] = pending
        for replica_id in replica_ids:
            if replica_id == self.node_id:
                if self._store_locally(certificate, payload["data"]):
                    pending["stored"].add(self.node_id)
                continue
            message = Message(
                kind="store-request",
                sender=self.node_id,
                payload={
                    "request_id": payload["request_id"],
                    "certificate": certificate,
                    "data": payload["data"],
                },
            )
            await self._send(replica_id, message)
        await self._maybe_finish_insert(payload["request_id"])

    def _store_locally(self, certificate: FileCertificate,
                       data: FileData) -> bool:
        if not certificate.verify():
            return False
        if data.content_hash() != certificate.content_hash:
            return False
        if certificate.file_id in self.store:
            return False
        if certificate.size > self.store.free_space:
            return False
        self.store.store(certificate, data)
        return True

    async def _on_store_request(self, message: Message) -> None:
        ok = self._store_locally(
            message.payload["certificate"], message.payload["data"]
        )
        await self._send(
            message.sender,
            Message(
                kind="store-ack",
                sender=self.node_id,
                payload={"request_id": message.payload["request_id"], "ok": ok},
            ),
        )

    async def _on_store_ack(self, message: Message) -> None:
        pending = self._pending_inserts.get(message.payload["request_id"])
        if pending is None:
            return
        if message.payload["ok"]:
            pending["stored"].add(message.sender)
        else:
            pending["needed"].discard(message.sender)  # permanent refusal
        await self._maybe_finish_insert(message.payload["request_id"])

    async def _maybe_finish_insert(self, request_id: int) -> None:
        pending = self._pending_inserts.get(request_id)
        if pending is None:
            return
        if pending["stored"] >= pending["needed"]:
            del self._pending_inserts[request_id]
            await self._send(
                pending["client"],
                Message(
                    kind="insert-result",
                    sender=self.node_id,
                    payload={
                        "request_id": request_id,
                        "success": True,
                        "holders": sorted(pending["stored"]),
                    },
                ),
            )
        elif pending["needed"] - pending["stored"] and \
                len(pending["needed"]) < pending["certificate"].replication_factor:
            # Someone refused: the insert cannot reach k replicas.
            del self._pending_inserts[request_id]
            await self._insert_failed(
                {"client": pending["client"], "request_id": request_id},
                "refused",
            )

    async def _insert_failed(self, payload: dict, reason: str) -> None:
        await self._send(
            payload["client"],
            Message(
                kind="insert-result",
                sender=self.node_id,
                payload={"request_id": payload["request_id"],
                         "success": False, "reason": reason, "holders": []},
            ),
        )

    async def _on_insert_result(self, message: Message) -> None:
        self.cluster._resolve_request(message.payload["request_id"], message.payload)

    async def _on_lookup_result(self, message: Message) -> None:
        self.cluster._resolve_request(message.payload["request_id"], message.payload)


class LiveStorageCluster(LiveCluster):
    """A live overlay whose nodes store files."""

    def __init__(self, seed: int = 0, node_capacity: int = 1 << 24, **kwargs) -> None:
        super().__init__(seed, **kwargs)
        self.node_capacity = node_capacity
        self._request_futures: Dict[int, asyncio.Future] = {}
        self._op_ids = itertools.count(10_000)

    def _create_node(self, node_id: Optional[int] = None) -> LiveNode:
        rng = self.rngs.stream("node-ids")
        if node_id is None:
            node_id = self.space.random_id(rng)
            while node_id in self.nodes:
                node_id = self.space.random_id(rng)
        self.topology.add_endpoint(node_id)
        self.transport.register(node_id)
        node = LiveStorageNode(self, node_id, self.node_capacity)
        self.nodes[node_id] = node
        node.start()
        return node

    def _resolve_request(self, request_id: int, payload: dict) -> None:
        future = self._request_futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(payload)

    async def _request(self, origin: int, payload: dict,
                       timeout: float = ROUTE_TIMEOUT) -> dict:
        request_id = next(self._op_ids)
        payload["request_id"] = request_id
        payload["client"] = origin
        payload["trail"] = []
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._request_futures[request_id] = future
        await self.transport.send(
            origin, Message(kind="route", sender=origin, payload=payload)
        )
        try:
            return await asyncio.wait_for(future, timeout)
        finally:
            self._request_futures.pop(request_id, None)

    async def insert(self, certificate: FileCertificate, data: FileData,
                     origin: int) -> dict:
        """Insert a certified file from *origin*; returns the result
        payload (success flag + holder list)."""
        return await self._request(
            origin,
            {"key": certificate.storage_key(), "purpose": "past-insert",
             "certificate": certificate, "data": data},
        )

    async def lookup(self, file_id: int, origin: int) -> dict:
        """Look a file up from *origin*; the result payload carries the
        certificate and data (None if not found)."""
        from repro.core.ids import storage_key

        return await self._request(
            origin,
            {"key": storage_key(file_id), "purpose": "past-lookup",
             "file_id": file_id},
        )
