"""In-process asyncio transport: mailboxes, latency, failures.

Each node owns an ``asyncio.Queue`` mailbox.  ``send`` optionally sleeps
a latency drawn from a latency model before enqueueing, so messages
genuinely overtake each other when routes differ -- the concurrency the
live tests exercise.  Sends to unregistered or dead addresses fail
(return False), which is how a live node discovers a peer's death.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.netsim.latency import LatencyModel


@dataclass
class Message:
    """One message on the wire."""

    kind: str
    sender: int
    payload: dict = field(default_factory=dict)
    message_id: int = 0


class InProcessTransport:
    """Mailbox-per-node message passing with failure semantics."""

    def __init__(self, latency: Optional[LatencyModel] = None,
                 latency_scale: float = 0.001) -> None:
        """*latency_scale* converts latency-model units into seconds of
        real asyncio sleep (keep it small; the point is ordering, not
        wall-clock realism)."""
        self._mailboxes: Dict[int, asyncio.Queue] = {}
        self._dead: Set[int] = set()
        self._latency = latency
        self._latency_scale = latency_scale
        self._sequence = itertools.count(1)
        self.messages_sent = 0
        self.messages_dropped = 0

    def register(self, address: int) -> asyncio.Queue:
        """Create the mailbox for a new node."""
        if address in self._mailboxes:
            raise ValueError(f"address {address} already registered")
        queue: asyncio.Queue = asyncio.Queue()
        self._mailboxes[address] = queue
        self._dead.discard(address)
        return queue

    def mark_dead(self, address: int) -> None:
        """Future sends to *address* fail (the node stops responding)."""
        self._dead.add(address)

    def mark_alive(self, address: int) -> None:
        self._dead.discard(address)

    def is_dead(self, address: int) -> bool:
        return address in self._dead

    async def send(self, destination: int, message: Message) -> bool:
        """Deliver *message*; False if the destination is dead/unknown.

        The failure is reported to the *sender* (models a timeout /
        connection refusal), which is what triggers repair in the node
        runtime.
        """
        message.message_id = next(self._sequence)
        if destination in self._dead or destination not in self._mailboxes:
            self.messages_dropped += 1
            return False
        if self._latency is not None:
            delay = self._latency.delay(message.sender, destination)
            if delay > 0:
                await asyncio.sleep(delay * self._latency_scale)
            # Re-check: the destination may have died mid-flight.
            if destination in self._dead:
                self.messages_dropped += 1
                return False
        self.messages_sent += 1
        self._mailboxes[destination].put_nowait(message)
        return True

    async def receive(self, address: int, timeout: Optional[float] = None) -> Optional[Message]:
        """Next message for *address*, or None on timeout."""
        queue = self._mailboxes[address]
        if timeout is None:
            return await queue.get()
        try:
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
