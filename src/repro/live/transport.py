"""In-process asyncio transport: mailboxes, latency, failures, faults.

Each node owns an ``asyncio.Queue`` mailbox.  ``send`` optionally sleeps
a latency drawn from a latency model before enqueueing, so messages
genuinely overtake each other when routes differ -- the concurrency the
live tests exercise.  Sends to unregistered or dead addresses fail
(return False), which is how a live node discovers a peer's death.

A :class:`~repro.faults.plan.FaultPlan` can be attached (construction
or later, via the public ``faults`` attribute) to inject message-level
chaos: drops (silent loss -- the send *appears* to succeed, unlike a
dead peer, so only a timeout reveals it), duplicates, extra delay, and
reorders (deferred enqueue that lets later messages overtake).

Every message carries an optional W3C-style ``traceparent`` header
(:mod:`repro.obs.trace_context`).  When a :class:`TraceCollector` is
attached (the cluster wires its observer's in), the transport records a
point span for each fault it injects on a traced message -- so a trace
of a failed insert shows *where* the wire swallowed, duplicated or
reordered it, not just that a retry eventually fired.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.netsim.latency import LatencyModel
from repro.obs.cost_model import ID_BYTES, WIRE_HEADER_BYTES
from repro.obs.trace_context import TraceCollector, TraceContext


@dataclass
class Message:
    """One message on the wire."""

    kind: str
    sender: int
    payload: dict = field(default_factory=dict)
    message_id: int = 0
    traceparent: Optional[str] = None

    def wire_bytes(self, model) -> int:
        """Estimated serialized size under a cost model.

        Data-bearing messages (store-request, lookup-result) are priced
        from their *actual* payload bytes; a data slot that is present
        but empty (a not-found lookup result) costs only the envelope.
        Everything else takes the model's per-kind estimate.
        """
        data = self.payload.get("data") if self.payload else None
        if data is not None:
            length = data.size if hasattr(data, "size") else len(data)
            return WIRE_HEADER_BYTES + ID_BYTES + length
        if self.payload and "data" in self.payload:
            return WIRE_HEADER_BYTES + ID_BYTES
        return model.bytes_of(self.kind)


class InProcessTransport:
    """Mailbox-per-node message passing with failure semantics."""

    def __init__(self, latency: Optional[LatencyModel] = None,
                 latency_scale: float = 0.001,
                 faults=None) -> None:
        """*latency_scale* converts latency-model units into seconds of
        real asyncio sleep (keep it small; the point is ordering, not
        wall-clock realism).  *faults* is an optional
        :class:`~repro.faults.plan.FaultPlan` consulted per send."""
        self._mailboxes: Dict[int, asyncio.Queue] = {}
        self._dead: Set[int] = set()
        self._latency = latency
        self._latency_scale = latency_scale
        self.faults = faults
        # Optional TraceCollector: injected faults on traced messages
        # are recorded as point spans under the message's context.
        self.traces: Optional[TraceCollector] = None
        # Optional CostLedger (the cluster wires its observer's in): the
        # transport is the one funnel every live message crosses, so
        # charging here prices node, client and gossip traffic uniformly
        # -- including the extra wire copy of an injected duplicate.
        self.ledger = None
        self._sequence = itertools.count(1)
        self.messages_sent = 0
        self.messages_dropped = 0
        self.faults_dropped = 0
        self.faults_duplicated = 0
        self.faults_reordered = 0
        self.faults_delayed = 0

    def register(self, address: int) -> asyncio.Queue:
        """Create the mailbox for a new node."""
        if address in self._mailboxes:
            raise ValueError(f"address {address} already registered")
        queue: asyncio.Queue = asyncio.Queue()
        self._mailboxes[address] = queue
        self._dead.discard(address)
        return queue

    def mark_dead(self, address: int) -> None:
        """Future sends to *address* fail (the node stops responding)."""
        self._dead.add(address)

    def mark_alive(self, address: int) -> None:
        self._dead.discard(address)

    def is_dead(self, address: int) -> bool:
        return address in self._dead

    async def send(self, destination: int, message: Message) -> bool:
        """Deliver *message*; False if the destination is dead/unknown.

        The failure is reported to the *sender* (models a timeout /
        connection refusal), which is what triggers repair in the node
        runtime.  An injected *drop* instead returns True without
        delivering -- a lost packet looks like success until no reply
        arrives, which is what the retry/backoff layer handles.
        """
        message.message_id = next(self._sequence)
        ledger = self.ledger
        if ledger is not None:
            # The sender spends the bytes whether or not the destination
            # answers (a refused/dropped message still crossed the wire).
            ledger.charge(
                message.kind,
                node=message.sender,
                size=message.wire_bytes(ledger.model),
            )
        if destination in self._dead or destination not in self._mailboxes:
            self.messages_dropped += 1
            return False
        fault = None
        if self.faults is not None:
            fault = self.faults.message_fault(message.sender, destination)
            if fault is not None and fault.drop:
                self.faults_dropped += 1
                self._trace_fault(message, destination, "drop")
                return True
            if fault is not None:
                if fault.duplicate:
                    self._trace_fault(message, destination, "duplicate")
                if fault.delay > 0:
                    self._trace_fault(message, destination, "delay",
                                      amount=fault.delay)
                if fault.defer > 0:
                    self._trace_fault(message, destination, "reorder",
                                      amount=fault.defer)
        if self._latency is not None:
            delay = self._latency.delay(message.sender, destination)
            if delay > 0:
                await asyncio.sleep(delay * self._latency_scale)
            # Re-check: the destination may have died mid-flight.
            if destination in self._dead:
                self.messages_dropped += 1
                return False
        if fault is not None and fault.delay > 0:
            self.faults_delayed += 1
            await asyncio.sleep(fault.delay * self._latency_scale)
            if destination in self._dead:
                self.messages_dropped += 1
                return False
        self.messages_sent += 1
        queue = self._mailboxes[destination]
        if fault is not None and fault.defer > 0:
            # Reorder: enqueue later without blocking the sender, so
            # messages sent after this one genuinely overtake it.
            self.faults_reordered += 1
            asyncio.get_running_loop().call_later(
                fault.defer * self._latency_scale, queue.put_nowait, message
            )
        else:
            queue.put_nowait(message)
        if fault is not None and fault.duplicate:
            self.faults_duplicated += 1
            if ledger is not None:
                # The duplicate is a second copy on the wire.
                ledger.charge(
                    message.kind,
                    node=message.sender,
                    size=message.wire_bytes(ledger.model),
                )
            queue.put_nowait(message)
        return True

    def _trace_fault(self, message: Message, destination: int,
                     fault: str, amount: float = 0.0) -> None:
        """Record one injected fault as a point span on the message's
        trace (traced messages only; untraced traffic costs one test)."""
        if self.traces is None or message.traceparent is None:
            return
        ctx = TraceContext.from_traceparent(message.traceparent)
        attributes = {
            "fault": fault,
            "kind": message.kind,
            "sender": f"{message.sender:x}",
            "destination": f"{destination:x}",
        }
        if amount:
            attributes["amount"] = round(amount, 6)
        self.traces.record(
            ctx.child("wire-fault", fault, message.message_id),
            "wire-fault",
            **attributes,
        )

    async def receive(self, address: int, timeout: Optional[float] = None) -> Optional[Message]:
        """Next message for *address*, or None on timeout."""
        queue = self._mailboxes[address]
        if timeout is None:
            return await queue.get()
        try:
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
