"""Live transports: the ``send()`` contract and the in-process baseline.

The live layer speaks to its peers through a *transport* -- an object
with one asynchronous delivery primitive (:meth:`TransportBase.send`)
plus registration, liveness marking and mailbox receive.  Two
implementations share the contract:

* :class:`InProcessTransport` (here) -- mailbox-per-node queues with
  optional modelled latency: the deterministic baseline every
  conformance test compares against;
* :class:`repro.live.net.SocketTransport` -- real asyncio TCP over
  localhost with length-prefixed JSON frames, a per-peer connection
  pool and bounded send queues (backpressure).

``send`` returns a typed :class:`SendResult`, not a bare bool, because
three different failures used to collapse into one falsy value:

* **dead peer** (connection refused / marked dead): the sender has
  *discovered a death* and should forget the peer;
* **timeout** (send queue full under backpressure, or the wire stalled):
  the peer may be alive but slow -- forgetting it would amplify load
  spikes into false failure cascades;
* **injected drop** (a :class:`~repro.faults.plan.FaultPlan` swallowed
  the message): the send *appears* to succeed -- only a missing reply
  reveals it, which is what the retry/backoff layer handles.

``SendResult`` is truthy exactly when the message was accepted towards
the wire (delivered, or silently dropped by an injected fault), so
pre-existing ``if not await send(...)`` call sites keep their meaning;
callers that need the distinction read ``.status`` / ``.peer_dead`` /
``.timed_out``.

A :class:`FaultPlan` can be attached (construction or later, via the
public ``faults`` attribute) to inject message-level chaos: drops,
duplicates, extra delay, and reorders.  Every message carries an
optional W3C-style ``traceparent`` header; when a ``TraceCollector``
is attached the transport records a point span for each fault it
injects on a traced message.  When a ``CostLedger`` is attached every
send is charged -- the in-process transport prices by the wire-size
model (real payload bytes for data-bearing messages), the socket
transport by the *actual* encoded frame length.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.netsim.latency import LatencyModel
from repro.obs.cost_model import ID_BYTES, WIRE_HEADER_BYTES
from repro.obs.trace_context import TraceCollector, TraceContext

# SendResult.status values.  DELIVERED/DROPPED are "accepted" (truthy);
# DEAD/UNKNOWN mean the sender just discovered the peer is unreachable;
# TIMEOUT means the wire did not accept the message in time -- the peer
# may be alive (backpressure), so it must NOT be treated as a death.
SEND_DELIVERED = "delivered"
SEND_DROPPED = "injected-drop"
SEND_DEAD = "dead-peer"
SEND_UNKNOWN = "unknown-peer"
SEND_TIMEOUT = "timeout"


@dataclass(frozen=True)
class SendResult:
    """The typed outcome of one :meth:`TransportBase.send` call."""

    status: str
    detail: str = ""

    @property
    def accepted(self) -> bool:
        """The message went towards the wire (even if a fault ate it)."""
        return self.status in (SEND_DELIVERED, SEND_DROPPED)

    @property
    def peer_dead(self) -> bool:
        """The peer is known unreachable: forget it and repair."""
        return self.status in (SEND_DEAD, SEND_UNKNOWN)

    @property
    def timed_out(self) -> bool:
        """The wire stalled (backpressure); liveness is *unknown*."""
        return self.status == SEND_TIMEOUT

    def __bool__(self) -> bool:
        return self.accepted


# Pre-built results for the hot path (SendResult is frozen, so sharing
# instances is safe); sites with a useful detail build their own.
RESULT_DELIVERED = SendResult(SEND_DELIVERED)
RESULT_DROPPED = SendResult(SEND_DROPPED)
RESULT_DEAD = SendResult(SEND_DEAD)
RESULT_UNKNOWN = SendResult(SEND_UNKNOWN)
RESULT_TIMEOUT = SendResult(SEND_TIMEOUT)


@dataclass
class Message:
    """One message on the wire."""

    kind: str
    sender: int
    payload: dict = field(default_factory=dict)
    message_id: int = 0
    traceparent: Optional[str] = None

    def wire_bytes(self, model) -> int:
        """Estimated serialized size under a cost model.

        Data-bearing messages (store-request, lookup-result) are priced
        from their *actual* payload bytes; a data slot that is present
        but empty (a not-found lookup result) costs only the envelope.
        Everything else takes the model's per-kind estimate.
        """
        data = self.payload.get("data") if self.payload else None
        if data is not None:
            length = data.size if hasattr(data, "size") else len(data)
            return WIRE_HEADER_BYTES + ID_BYTES + length
        if self.payload and "data" in self.payload:
            return WIRE_HEADER_BYTES + ID_BYTES
        return model.bytes_of(self.kind)


class TransportBase:
    """Shared liveness/fault/observability plumbing for live transports.

    Subclasses implement :meth:`send`; everything else -- registration
    bookkeeping, the dead set, fault tracing, counters, the mailbox
    receive side -- is common.  Both shipped transports deliver into
    per-address ``asyncio.Queue`` mailboxes, so ``receive`` lives here.
    """

    def __init__(self, faults=None) -> None:
        self._mailboxes: Dict[int, asyncio.Queue] = {}
        self._dead: Set[int] = set()
        self.faults = faults
        # Optional TraceCollector: injected faults on traced messages
        # are recorded as point spans under the message's context.
        self.traces: Optional[TraceCollector] = None
        # Optional CostLedger (the cluster wires its observer's in): the
        # transport is the one funnel every live message crosses, so
        # charging here prices node, client and gossip traffic uniformly
        # -- including the extra wire copy of an injected duplicate.
        self.ledger = None
        self._sequence = itertools.count(1)
        self.messages_sent = 0
        self.messages_dropped = 0
        self.faults_dropped = 0
        self.faults_duplicated = 0
        self.faults_reordered = 0
        self.faults_delayed = 0

    # ------------------------------------------------------------------ #
    # registration and liveness
    # ------------------------------------------------------------------ #

    def register(self, address: int) -> asyncio.Queue:
        """Create the mailbox for a new node."""
        if address in self._mailboxes:
            raise ValueError(f"address {address} already registered")
        queue = self._make_mailbox()
        self._mailboxes[address] = queue
        self._dead.discard(address)
        return queue

    def _make_mailbox(self) -> asyncio.Queue:
        return asyncio.Queue()

    def mark_dead(self, address: int) -> None:
        """Future sends to *address* fail (the node stops responding)."""
        self._dead.add(address)

    def mark_alive(self, address: int) -> None:
        self._dead.discard(address)

    def is_dead(self, address: int) -> bool:
        return address in self._dead

    # ------------------------------------------------------------------ #
    # contract
    # ------------------------------------------------------------------ #

    async def send(self, destination: int, message: Message) -> SendResult:
        raise NotImplementedError

    async def receive(self, address: int, timeout: Optional[float] = None) -> Optional[Message]:
        """Next message for *address*, or None on timeout."""
        queue = self._mailboxes[address]
        if timeout is None:
            return await queue.get()
        try:
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def idle(self) -> bool:
        """No undelivered traffic anywhere the transport can see.

        The cluster's quiesce loop polls this between settle checks;
        transports with genuinely in-flight bytes (socket buffers, send
        queues) extend it so "every mailbox is empty" is not mistaken
        for "the wire is silent".
        """
        return all(queue.empty() for queue in self._mailboxes.values())

    async def aclose(self) -> None:
        """Release transport resources (servers, connections).  The
        in-process baseline holds none; the socket transport overrides."""

    # ------------------------------------------------------------------ #
    # wire observability
    # ------------------------------------------------------------------ #

    def mailbox_depth(self, address: int) -> int:
        """Undelivered messages waiting in one node's mailbox."""
        queue = self._mailboxes.get(address)
        return queue.qsize() if queue is not None else 0

    def mailbox_backlog(self) -> int:
        """Undelivered messages across every mailbox."""
        return sum(queue.qsize() for queue in self._mailboxes.values())

    def mailbox_capacity(self) -> int:
        """Per-mailbox bound; 0 means unbounded (the in-process default)."""
        return 0

    def wire_stats(self) -> dict:
        """A flat, plain-JSON description of the transport's wire state.

        The base transport has no physical wire, so its socket-specific
        fields are structurally present but zero -- both transports
        publish the *same* gauge families, which is what keeps the
        cross-transport federated snapshots comparable.
        """
        return {
            "transport": type(self).__name__,
            "endpoints": len(self._mailboxes),
            "links": 0,
            "poisoned_connections": 0,
            "resynced_bytes": 0,
            "send_queue_depth": 0,
            "in_flight": 0,
            "sends_timed_out": 0,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
        }

    def publish_wire_gauges(self, metrics) -> dict:
        """Mirror the wire state into registry gauges (satellite of the
        health probe: probes and scrapes read the same numbers through
        the normal snapshot path instead of private attributes)."""
        stats = self.wire_stats()
        metrics.gauge("wire.resynced_bytes").set(float(stats["resynced_bytes"]))
        metrics.gauge("wire.send_queue_depth").set(
            float(stats["send_queue_depth"])
        )
        metrics.gauge("wire.in_flight").set(float(stats["in_flight"]))
        metrics.gauge("wire.mailbox_backlog").set(float(self.mailbox_backlog()))
        return stats

    # ------------------------------------------------------------------ #
    # fault tracing
    # ------------------------------------------------------------------ #

    def _trace_fault(self, message: Message, destination: int,
                     fault: str, amount: float = 0.0) -> None:
        """Record one injected fault as a point span on the message's
        trace (traced messages only; untraced traffic costs one test)."""
        if self.traces is None or message.traceparent is None:
            return
        ctx = TraceContext.from_traceparent(message.traceparent)
        attributes = {
            "fault": fault,
            "kind": message.kind,
            "sender": f"{message.sender:x}",
            "destination": f"{destination:x}",
        }
        if amount:
            attributes["amount"] = round(amount, 6)
        self.traces.record(
            ctx.child("wire-fault", fault, message.message_id),
            "wire-fault",
            **attributes,
        )


class InProcessTransport(TransportBase):
    """Mailbox-per-node message passing with failure semantics.

    Each node owns an ``asyncio.Queue`` mailbox.  ``send`` optionally
    sleeps a latency drawn from a latency model before enqueueing, so
    messages genuinely overtake each other when routes differ -- the
    concurrency the live tests exercise.  Sends to unregistered or dead
    addresses fail (``SendResult.peer_dead``), which is how a live node
    discovers a peer's death.
    """

    def __init__(self, latency: Optional[LatencyModel] = None,
                 latency_scale: float = 0.001,
                 faults=None) -> None:
        """*latency_scale* converts latency-model units into seconds of
        real asyncio sleep (keep it small; the point is ordering, not
        wall-clock realism).  *faults* is an optional
        :class:`~repro.faults.plan.FaultPlan` consulted per send."""
        super().__init__(faults=faults)
        self._latency = latency
        self._latency_scale = latency_scale

    async def send(self, destination: int, message: Message) -> SendResult:
        """Deliver *message*; ``peer_dead`` if the destination is
        dead/unknown.

        The failure is reported to the *sender* (models a timeout /
        connection refusal), which is what triggers repair in the node
        runtime.  An injected *drop* instead returns an accepted result
        without delivering -- a lost packet looks like success until no
        reply arrives, which is what the retry/backoff layer handles.
        """
        message.message_id = next(self._sequence)
        ledger = self.ledger
        if ledger is not None:
            # The sender spends the bytes whether or not the destination
            # answers (a refused/dropped message still crossed the wire).
            ledger.charge(
                message.kind,
                node=message.sender,
                size=message.wire_bytes(ledger.model),
            )
        if destination in self._dead:
            self.messages_dropped += 1
            return RESULT_DEAD
        if destination not in self._mailboxes:
            self.messages_dropped += 1
            return RESULT_UNKNOWN
        fault = None
        if self.faults is not None:
            fault = self.faults.message_fault(message.sender, destination)
            if fault is not None and fault.drop:
                self.faults_dropped += 1
                self._trace_fault(message, destination, "drop")
                return RESULT_DROPPED
            if fault is not None:
                if fault.duplicate:
                    self._trace_fault(message, destination, "duplicate")
                if fault.delay > 0:
                    self._trace_fault(message, destination, "delay",
                                      amount=fault.delay)
                if fault.defer > 0:
                    self._trace_fault(message, destination, "reorder",
                                      amount=fault.defer)
        if self._latency is not None:
            delay = self._latency.delay(message.sender, destination)
            if delay > 0:
                await asyncio.sleep(delay * self._latency_scale)
            # Re-check: the destination may have died mid-flight.
            if destination in self._dead:
                self.messages_dropped += 1
                return RESULT_DEAD
        if fault is not None and fault.delay > 0:
            self.faults_delayed += 1
            await asyncio.sleep(fault.delay * self._latency_scale)
            if destination in self._dead:
                self.messages_dropped += 1
                return RESULT_DEAD
        self.messages_sent += 1
        queue = self._mailboxes[destination]
        if fault is not None and fault.defer > 0:
            # Reorder: enqueue later without blocking the sender, so
            # messages sent after this one genuinely overtake it.
            self.faults_reordered += 1
            asyncio.get_running_loop().call_later(
                fault.defer * self._latency_scale, queue.put_nowait, message
            )
        else:
            queue.put_nowait(message)
        if fault is not None and fault.duplicate:
            self.faults_duplicated += 1
            if ledger is not None:
                # The duplicate is a second copy on the wire.
                ledger.charge(
                    message.kind,
                    node=message.sender,
                    size=message.wire_bytes(ledger.model),
                )
            queue.put_nowait(message)
        return RESULT_DELIVERED
