"""A live asyncio deployment of the Pastry overlay.

The rest of the repository evaluates the protocols with deterministic
message-walking -- ideal for measurement, but it cannot exhibit
*concurrency*: overlapping joins, in-flight messages crossing each
other, nodes answering while other requests are outstanding.  This
package runs the same per-node state machines (:class:`NodeState`, the
routing policies, the join logic) as real asyncio tasks exchanging
messages over in-process queues:

* :mod:`repro.live.transport` -- per-node mailboxes with optional
  latency, message counting, and delivery failure to dead nodes;
* :mod:`repro.live.cluster` -- the node task (message loop: route,
  join, state exchange, announce) and the cluster orchestrator that
  bootstraps overlays with *concurrent* joins;
* :mod:`repro.live.net` -- the same ``send()`` contract over real
  localhost TCP sockets (length-prefixed JSON frames, per-peer
  connection pool, bounded send queues), proven behaviourally
  equivalent by the seeded conformance suite.

The protocols are byte-compatible with the synchronous simulator: the
integration tests assert that a live-built overlay routes every sampled
key to the same ground-truth root.
"""

from repro.live.cluster import LiveCluster, LiveNode
from repro.live.transport import (
    InProcessTransport,
    Message,
    SendResult,
    TransportBase,
)

__all__ = [
    "LiveCluster",
    "LiveNode",
    "InProcessTransport",
    "Message",
    "SendResult",
    "TransportBase",
]
