"""Route explanation: why did each hop go where it went?

Debugging a structured overlay means asking "which rule fired at this
node?"  :func:`explain_route` routes a key and annotates every hop with
the rule that produced it -- leaf-set forwarding, a routing-table entry,
the rare-case fallback, or local delivery -- by re-deriving the decision
from the deciding node's state.  :func:`render_route` turns that into
the ASCII trace the CLI prints.

The rule taxonomy itself lives in :mod:`repro.pastry.routing`, where the
policies also report rules *at decision time* (``next_hop_explained``)
into route spans; :func:`span_to_explanations` converts such a span back
into :class:`HopExplanation` rows so both sources render identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs.spans import Span
from repro.pastry.network import PastryNetwork, RouteResult
from repro.pastry.routing import (  # re-exported: historical home of the taxonomy
    RULE_DELIVER_SELF,
    RULE_EN_ROUTE,
    RULE_LEAF,
    RULE_RARE,
    RULE_TABLE,
)

__all__ = [
    "RULE_DELIVER_SELF",
    "RULE_LEAF",
    "RULE_TABLE",
    "RULE_RARE",
    "RULE_EN_ROUTE",
    "HopExplanation",
    "explain_route",
    "span_to_explanations",
    "check_progress",
    "render_route",
]


@dataclass(frozen=True)
class HopExplanation:
    """One step of a route, annotated."""

    node_id: int
    shared_prefix: int
    distance_to_key: int
    rule: str
    next_node: Optional[int]


def _classify_hop(network: PastryNetwork, node_id: int, key: int,
                  next_node: Optional[int]) -> str:
    """Re-derive which routing rule links node_id -> next_node."""
    state = network.nodes[node_id].state
    if next_node is None:
        return RULE_DELIVER_SELF
    if state.leaf_set.covers(key) and next_node in state.leaf_set.members():
        closest = state.leaf_set.closest_to(key, include_owner=True)
        if closest == next_node:
            return RULE_LEAF
    table_hop = state.routing_table.next_hop_for(key)
    if table_hop == next_node:
        return RULE_TABLE
    return RULE_RARE


def explain_route(
    network: PastryNetwork, key: int, origin: int, **route_kwargs
) -> List[HopExplanation]:
    """Route *key* from *origin* and explain every hop.

    The classification is derived from node state *after* the route ran,
    so on a freshly built network it reflects exactly the decisions
    taken; after concurrent repairs it is best-effort (noted per hop).
    """
    result: RouteResult = network.route(key, origin, **route_kwargs)
    space = network.space
    explanations: List[HopExplanation] = []
    for index, node_id in enumerate(result.path):
        next_node = result.path[index + 1] if index + 1 < len(result.path) else None
        if next_node is None and result.reason == "en-route" and index > 0:
            rule = RULE_EN_ROUTE
        elif next_node is None and result.reason == "en-route":
            rule = RULE_EN_ROUTE
        else:
            rule = _classify_hop(network, node_id, key, next_node)
        explanations.append(
            HopExplanation(
                node_id=node_id,
                shared_prefix=space.shared_prefix_length(node_id, key),
                distance_to_key=space.distance(node_id, key),
                rule=rule,
                next_node=next_node,
            )
        )
    return explanations


def span_to_explanations(span: Span) -> List[HopExplanation]:
    """Convert a traced route span (``RouteResult.span``) into the same
    :class:`HopExplanation` rows :func:`explain_route` produces, so the
    decision-time trace renders through :func:`render_route` too."""
    hops = [child for child in span.children if child.name == "hop"]
    return [
        HopExplanation(
            node_id=child.attributes["node_id"],
            shared_prefix=child.attributes["shared_prefix"],
            distance_to_key=child.attributes["distance"],
            rule=child.attributes["rule"],
            next_node=child.attributes.get("next_node"),
        )
        for child in hops
    ]


def check_progress(explanations: List[HopExplanation]) -> bool:
    """The route-progress invariant: along the path, the shared prefix
    never shrinks unless the numeric distance shrinks instead."""
    for previous, current in zip(explanations, explanations[1:]):
        prefix_progress = current.shared_prefix >= previous.shared_prefix
        numeric_progress = current.distance_to_key < previous.distance_to_key
        if not (prefix_progress or numeric_progress):
            return False
    return True


def render_route(network: PastryNetwork, explanations: List[HopExplanation]) -> str:
    """ASCII rendering of an explained route."""
    fmt = network.space.format_id
    lines = []
    for index, hop in enumerate(explanations):
        arrow = "   " if index == 0 else "-> "
        lines.append(
            f"{arrow}{fmt(hop.node_id)}  prefix={hop.shared_prefix:2d}  {hop.rule}"
        )
    return "\n".join(lines)
