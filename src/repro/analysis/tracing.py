"""Deprecated shim: route explanation moved to :mod:`repro.obs.spans`.

The explanation API (:class:`HopExplanation`, :func:`explain_route`,
:func:`span_to_explanations`, :func:`check_progress`,
:func:`render_route`) now lives next to the :class:`Span` tree it
renders, in the unified observability layer under ``repro.obs``.  This
module re-exports it so existing imports keep working; new code should
import from :mod:`repro.obs.spans` directly.

The RULE_* taxonomy was always defined in :mod:`repro.pastry.routing`;
import it from there.
"""

from __future__ import annotations

import warnings

from repro.obs.spans import (
    HopExplanation,
    check_progress,
    explain_route,
    render_route,
    span_to_explanations,
)
from repro.pastry.routing import (
    RULE_DELIVER_SELF,
    RULE_EN_ROUTE,
    RULE_LEAF,
    RULE_RARE,
    RULE_TABLE,
)

warnings.warn(
    "repro.analysis.tracing is a deprecated shim; import the explanation "
    "API from repro.obs.spans (RULE_* from repro.pastry.routing)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "RULE_DELIVER_SELF",
    "RULE_LEAF",
    "RULE_TABLE",
    "RULE_RARE",
    "RULE_EN_ROUTE",
    "HopExplanation",
    "explain_route",
    "span_to_explanations",
    "check_progress",
    "render_route",
]
