"""Statistics helpers for experiment reporting.

Plain-Python implementations (no numpy dependency in the core library)
of the handful of statistics the benchmarks report.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance; 0.0 for fewer than two samples."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Exact percentile with linear interpolation; q in [0, 100]."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[int(rank)]
    weight = rank - low
    return ordered[low] + weight * (ordered[high] - ordered[low])


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% CI for the mean: mean +/- 1.96 * sem."""
    if len(values) < 2:
        m = mean(values)
        return (m, m)
    sem = stddev(values) / math.sqrt(len(values))
    m = mean(values)
    return (m - 1.96 * sem, m + 1.96 * sem)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Stddev over mean -- the dispersion measure for load balance (E11)."""
    m = mean(values)
    if m == 0:
        return 0.0
    return stddev(values) / m
