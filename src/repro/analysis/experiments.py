"""Shared experiment scaffolding.

Each benchmark builds a network, drives a workload, and reports a table.
The helpers here factor the repeated parts: building overlays of a given
size deterministically, sampling lookups, and the insert-to-exhaustion
driver that both storage experiments (E9, E10) run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.errors import InsertRejectedError
from repro.core.files import SyntheticData
from repro.core.network import PastNetwork
from repro.core.storage_manager import StoragePolicy
from repro.pastry.network import PastryNetwork
from repro.sim.rng import RngRegistry
from repro.workloads.filesizes import FileSizeDistribution


def build_pastry(
    n: int,
    seed: int = 0,
    b: int = 4,
    leaf_capacity: int = 32,
    method: str = "oracle",
    table_quality: str = "good",
    observer=None,
) -> PastryNetwork:
    """A deterministic Pastry overlay of *n* nodes."""
    from repro.pastry.nodeid import IdSpace

    network = PastryNetwork(
        space=IdSpace(128, b),
        rngs=RngRegistry(seed),
        leaf_capacity=leaf_capacity,
        table_quality=table_quality,
        observer=observer,
    )
    network.build(n, method=method)
    return network


def sample_lookups(
    network: PastryNetwork, count: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """(key, origin) pairs: uniform random keys from uniform random
    origins -- the standard routing-experiment workload."""
    origins = network.live_ids()
    return [
        (network.space.random_id(rng), rng.choice(origins)) for _ in range(count)
    ]


def expected_hop_bound(n: int, b: int) -> float:
    """The paper's bound: ceil(log_2^b N)."""
    return math.ceil(math.log(max(n, 2), 2 ** b))


@dataclass
class FillReport:
    """Result of inserting files until the network is saturated."""

    inserted: int = 0
    rejected: int = 0
    utilization_curve: List[Tuple[float, float]] = field(default_factory=list)
    # (global utilization, cumulative reject ratio) samples
    rejected_sizes: List[int] = field(default_factory=list)
    accepted_sizes: List[int] = field(default_factory=list)
    diversion_attempts: List[int] = field(default_factory=list)

    @property
    def reject_ratio(self) -> float:
        total = self.inserted + self.rejected
        return self.rejected / total if total else 0.0

    def reject_ratio_at_utilization(self, target: float) -> Optional[float]:
        """Cumulative reject ratio when utilization first crossed *target*
        (how the companion paper reports '>95% utilization, <5% rejects')."""
        for utilization, ratio in self.utilization_curve:
            if utilization >= target:
                return ratio
        return None


def fill_network(
    network: PastNetwork,
    sizes: FileSizeDistribution,
    rng: random.Random,
    replication_factor: int = 3,
    stop_reject_ratio: float = 0.5,
    min_attempts: int = 200,
    sample_every: int = 25,
    max_attempts: int = 200_000,
) -> FillReport:
    """Insert files until the recent reject ratio exceeds
    *stop_reject_ratio* -- the insert-to-exhaustion driver of E9/E10."""
    client = network.create_client(usage_quota=1 << 62)
    report = FillReport()
    recent: List[bool] = []
    serial = 0
    while serial < max_attempts:
        serial += 1
        size = sizes.sample(rng)
        data = SyntheticData(seed=serial, size=size)
        try:
            handle = client.insert(f"fill-{serial}", data, replication_factor)
            report.inserted += 1
            report.accepted_sizes.append(size)
            report.diversion_attempts.append(handle.attempts)
            recent.append(True)
        except InsertRejectedError:
            report.rejected += 1
            report.rejected_sizes.append(size)
            recent.append(False)
        if len(recent) > 100:
            recent.pop(0)
        if serial % sample_every == 0:
            utilization = network.utilization()["global_utilization"]
            report.utilization_curve.append((utilization, report.reject_ratio))
        if (
            serial >= min_attempts
            and len(recent) == 100
            and recent.count(False) / 100 >= stop_reject_ratio
        ):
            break
    return report


def make_storage_network(
    n: int,
    seed: int,
    policy: StoragePolicy,
    capacity_fn: Callable[[random.Random], int],
    cache_policy: str = "none",
    method: str = "join",
) -> PastNetwork:
    """A deterministic PAST deployment for the storage experiments."""
    network = PastNetwork(
        rngs=RngRegistry(seed),
        storage_policy=policy,
        cache_policy=cache_policy,
    )
    network.build(n, capacity_fn=capacity_fn, method=method)
    return network
