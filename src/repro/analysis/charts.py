"""ASCII charts: figure-shaped output for a terminal-only harness.

The companion papers present several results as *figures* (hops vs N,
utilization vs reject ratio, the failure cliff).  The benchmarks
regenerate the numbers; these renderers regenerate the *shape* --
an XY line chart and a horizontal bar chart in plain text, so
``bench_output.txt`` shows the curves, not just the rows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Point = Tuple[float, float]


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(int(position * (cells - 1) + 0.5), cells - 1)


def line_chart(
    series: Sequence[Tuple[str, Sequence[Point]]],
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
    title: Optional[str] = None,
) -> str:
    """Plot one or more (label, [(x, y), ...]) series as an ASCII chart.

    Each series gets its own marker character; the legend maps them.
    """
    if not series or all(not points for _, points in series):
        raise ValueError("nothing to plot")
    markers = "*o+x#@%&"
    all_points = [p for _, points in series for p in points]
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:
        y_low -= 1.0
        y_high += 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_, points) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_high:.2f}"), len(f"{y_low:.2f}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:.2f}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_low:.2f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(" " * (label_width + 2) + x_axis)
    if x_label or y_label:
        lines.append(" " * (label_width + 2) + f"x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, (label, _) in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bars, one per (label, value) row."""
    if not rows:
        raise ValueError("nothing to plot")
    peak = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        filled = _scale(value, 0.0, peak, width) + 1 if peak > 0 else 0
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)} {value:g}{unit}")
    return "\n".join(lines)
