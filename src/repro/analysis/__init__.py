"""Analysis utilities: statistics, table rendering, experiment scaffolding.

The benchmarks print the same rows/series the paper (and its companion
papers) report; this package provides the plumbing so every benchmark
renders consistently and computes statistics the same way.
"""

from repro.analysis.stats import confidence_interval_95, mean, percentile, stddev
from repro.analysis.tables import format_table

__all__ = [
    "mean",
    "stddev",
    "percentile",
    "confidence_interval_95",
    "format_table",
]
