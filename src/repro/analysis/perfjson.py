"""Machine-readable performance trajectory (``BENCH_perf.json``).

``benchmarks/perf_suite.py`` times the canonical hot paths and records
the numbers here, one labelled run per code revision, so successive PRs
have a perf history to regress against.  The file lives at the repo root
and is committed: a future change can compare itself against any
recorded label without rebuilding old revisions.

Schema (version 1)::

    {
      "schema": 1,
      "runs": [
        {
          "label": "seed",
          "timestamp": 1754500000.0,
          "python": "3.11.9",
          "results": {
            "join_build_512_s": 1.215,
            "routes_deterministic_10000_s": 0.54,
            ...
          }
        },
        ...
      ]
    }

Every metric is "seconds for the whole workload, best of R repetitions
after a warm-up" -- lower is better.  Throughput and speedup views are
derived, never stored, so the file stays free of redundant numbers.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def load_history(path: PathLike) -> dict:
    """Read a history file; an absent file yields an empty history."""
    path = Path(path)
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "runs": []}
    with path.open("r", encoding="utf-8") as handle:
        history = json.load(handle)
    if history.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported BENCH_perf schema {history.get('schema')!r} in {path}"
        )
    return history


def record_run(
    path: PathLike,
    label: str,
    results: Dict[str, float],
    timestamp: Optional[float] = None,
) -> dict:
    """Append (or replace) the run *label* and write the file back.

    Re-recording an existing label overwrites it in place, so re-running
    the suite on the same revision never accumulates duplicates.
    """
    if not label:
        raise ValueError("run label must be non-empty")
    history = load_history(path)
    run = {
        "label": label,
        "timestamp": time.time() if timestamp is None else timestamp,
        "python": platform.python_version(),
        "results": dict(sorted(results.items())),
    }
    runs: List[dict] = history["runs"]
    for index, existing in enumerate(runs):
        if existing["label"] == label:
            runs[index] = run
            break
    else:
        runs.append(run)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return history


def get_run(history: dict, label: str) -> Optional[dict]:
    for run in history["runs"]:
        if run["label"] == label:
            return run
    return None


def compare(
    history: dict, baseline_label: str, current_label: str
) -> List[Tuple[str, float, float, float]]:
    """Per-metric ``(name, baseline_s, current_s, speedup)`` rows for the
    metrics the two runs share.  Speedup > 1 means *current* is faster.
    """
    baseline = get_run(history, baseline_label)
    current = get_run(history, current_label)
    if baseline is None:
        raise KeyError(f"no run labelled {baseline_label!r}")
    if current is None:
        raise KeyError(f"no run labelled {current_label!r}")
    rows = []
    for metric, base_value in baseline["results"].items():
        cur_value = current["results"].get(metric)
        if cur_value is None:
            continue
        speedup = base_value / cur_value if cur_value > 0 else float("inf")
        rows.append((metric, base_value, cur_value, speedup))
    return rows


def regressions(
    history: dict,
    baseline_label: str,
    current_label: str,
    tolerance: float = 0.25,
) -> List[str]:
    """Metrics where *current* is slower than *baseline* by more than
    *tolerance* (fractional -- 0.25 allows 25% noise headroom).  Empty
    list means no regression.

    A baseline metric that the current run did not record at all is a
    hard failure, not a silent skip: a run that *loses* a workload
    (renamed, dropped, or checked against the wrong-scale label) must
    not pass the regression gate just because nothing intersected.
    """
    failing = []
    current = get_run(history, current_label)
    current_results = current["results"] if current is not None else {}
    for metric, base_value, cur_value, _ in compare(
        history, baseline_label, current_label
    ):
        if cur_value > base_value * (1.0 + tolerance):
            failing.append(
                f"{metric}: {cur_value:.3f}s vs baseline {base_value:.3f}s"
            )
    baseline = get_run(history, baseline_label)
    for metric in baseline["results"]:
        if metric not in current_results:
            failing.append(
                f"{metric}: missing from run {current_label!r} "
                f"(baseline has it -- a lost workload is a regression)"
            )
    return failing
