"""Replica-set diversity measurement.

Section 2: "with high probability, the set of nodes that store the file
is diverse in geographic location, administration, ownership, network
connectivity, rule of law, etc." -- because nodeIds are cryptographic
hashes, adjacency in the *id space* is independent of adjacency in any
real-world attribute.

We model the attributes with the topology (geography) and synthetic
administrative-domain labels, then compare each file's replica set
against two references:

* **random sets** of the same size -- diversity should be statistically
  indistinguishable from random placement (that is the claim);
* **proximity-clustered sets** (the k nodes nearest one point) -- what a
  naive "store on nearby nodes" policy would produce, and what an
  attacker would need to achieve to correlate failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.netsim.topology import Topology


def mean_pairwise_distance(topology: Topology, nodes: Sequence[int]) -> float:
    """Average proximity-metric distance over all node pairs: the
    geographic-spread measure."""
    nodes = list(nodes)
    if len(nodes) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            total += topology.distance(a, b)
            pairs += 1
    return total / pairs


def assign_domains(node_ids: Iterable[int], domains: int, rng: random.Random) -> Dict[int, int]:
    """Random administrative-domain labels (ownership / jurisdiction
    stand-in).  Independent of nodeIds, like the real world."""
    if domains < 1:
        raise ValueError("need at least one domain")
    return {node_id: rng.randrange(domains) for node_id in node_ids}


def distinct_domains(domain_of: Dict[int, int], nodes: Sequence[int]) -> int:
    """How many distinct administrative domains a replica set spans."""
    return len({domain_of[n] for n in nodes})


@dataclass
class DiversityReport:
    """Replica-set diversity vs the random and clustered references."""

    replica_spread: float          # mean pairwise distance, replica sets
    random_spread: float           # same measure for random sets
    clustered_spread: float        # same measure for proximity-clustered sets
    replica_domains: float         # mean distinct domains per replica set
    random_domains: float
    sets_measured: int

    @property
    def spread_vs_random(self) -> float:
        """~1.0 means replica placement is as diverse as random (the
        claim); << 1.0 would mean correlated placement."""
        if self.random_spread == 0:
            return 1.0
        return self.replica_spread / self.random_spread


def measure_diversity(
    topology: Topology,
    live_ids: Sequence[int],
    replica_sets: Sequence[Sequence[int]],
    rng: random.Random,
    domains: int = 20,
) -> DiversityReport:
    """Compare the given replica sets against random and clustered
    references of the same sizes drawn from *live_ids*."""
    if not replica_sets:
        raise ValueError("no replica sets to measure")
    domain_of = assign_domains(live_ids, domains, rng)
    ids = list(live_ids)

    replica_spreads: List[float] = []
    replica_domain_counts: List[float] = []
    random_spreads: List[float] = []
    random_domain_counts: List[float] = []
    clustered_spreads: List[float] = []

    for replica_set in replica_sets:
        k = len(replica_set)
        replica_spreads.append(mean_pairwise_distance(topology, replica_set))
        replica_domain_counts.append(distinct_domains(domain_of, replica_set))

        random_set = rng.sample(ids, k)
        random_spreads.append(mean_pairwise_distance(topology, random_set))
        random_domain_counts.append(distinct_domains(domain_of, random_set))

        anchor = rng.choice(ids)
        clustered = sorted(ids, key=lambda n: topology.distance(anchor, n))[:k]
        clustered_spreads.append(mean_pairwise_distance(topology, clustered))

    count = len(replica_sets)
    return DiversityReport(
        replica_spread=sum(replica_spreads) / count,
        random_spread=sum(random_spreads) / count,
        clustered_spread=sum(clustered_spreads) / count,
        replica_domains=sum(replica_domain_counts) / count,
        random_domains=sum(random_domain_counts) / count,
        sets_measured=count,
    )
