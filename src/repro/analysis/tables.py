"""Fixed-width table rendering for benchmark output.

Every benchmark prints one or more tables in this format, so the
`bench_output.txt` artefact reads like the paper's own tables.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table.

    >>> print(format_table(["n", "hops"], [[100, 1.87]], title="demo"))
    === demo ===
    n   | hops
    ----+------
    100 | 1.870
    """
    rendered: List[List[str]] = [[_render_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(f"=== {title} ===")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    """Render and print (the form the benchmarks call)."""
    print()
    print(format_table(headers, rows, title))
