"""The whole-program index the multi-file lint rules consume.

One :class:`ProjectIndex` is built per :func:`~repro.lint.engine.lint_paths`
run, after every file has parsed and before any
:class:`~repro.lint.engine.ProjectRule` executes.  It holds the facts a
single-file pass cannot see:

* the **module map** -- every parsed file keyed by its package-relative
  path, with its resolved :class:`~repro.lint.rules.ImportMap`;
* the **import graph** -- which ``repro.*`` modules each module pulls in
  (``import_edges``), so conformance rules can reason about who reaches
  the registries they check;
* **per-class symbol tables** (:class:`ClassInfo`) -- methods, which
  attributes each method assigns, attribute constructor types from
  ``__init__`` (``self.x = asyncio.Event()``), attributes holding
  caller-supplied callbacks, and the intra-class ``self.m()`` call
  graph;
* **coroutine bodies with await positions** (:class:`FunctionInfo`) --
  each function's directly-contained ``await`` expressions (nested
  ``def``/``lambda`` bodies excluded), which the async interleaving
  detector walks for check-then-act windows.

Everything is derived from the stdlib ``ast`` -- no imports of the
scanned code ever happen, so the index is safe to build over broken or
hostile trees (unparseable files simply are not in it; they were
already reported as PARSE001).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import FileContext
from repro.lint.rules import ImportMap, dotted_name


def direct_awaits(fn: ast.AST) -> List[ast.Await]:
    """``await`` expressions whose innermost enclosing function is *fn*.

    Awaits inside nested ``def`` / ``async def`` / ``lambda`` bodies
    belong to those functions, not to *fn*, and are excluded.
    """
    awaits: List[ast.Await] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Await):
            awaits.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(awaits, key=lambda n: (n.lineno, n.col_offset))


def self_attr_target(node: ast.AST) -> Optional[str]:
    """``A`` when *node* is a store to ``self.A``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attr_loads(node: ast.AST) -> Set[str]:
    """All attributes of ``self`` read anywhere inside *node*."""
    loads: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            loads.add(sub.attr)
    return loads


def _store_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from target.elts
            else:
                yield target
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        yield stmt.target


@dataclass
class FunctionInfo:
    """One function or method, with its await positions."""

    name: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    awaits: List[ast.Await] = field(default_factory=list)

    @property
    def await_lines(self) -> List[int]:
        return [node.lineno for node in self.awaits]


@dataclass
class ClassInfo:
    """Symbol table for one class definition."""

    name: str
    module_rel: str
    module_path: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute -> methods (excluding __init__) that assign ``self.attr``
    attr_writes: Dict[str, Set[str]] = field(default_factory=dict)
    #: attributes assigned in __init__
    init_attrs: Set[str] = field(default_factory=set)
    #: attribute -> resolved dotted constructor (``self.x = asyncio.Event()``)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attributes that store an ``__init__`` parameter (user callbacks etc.)
    callback_attrs: Set[str] = field(default_factory=set)
    #: method -> methods it calls on ``self``
    self_calls: Dict[str, Set[str]] = field(default_factory=dict)

    def close_path_methods(
        self, entry_names: Tuple[str, ...] = ("aclose", "close", "stop", "shutdown")
    ) -> List[FunctionInfo]:
        """Methods reachable from the shutdown entry points via self-calls."""
        reachable: List[str] = [n for n in entry_names if n in self.methods]
        seen: Set[str] = set(reachable)
        queue = list(reachable)
        while queue:
            current = queue.pop()
            for callee in sorted(self.self_calls.get(current, ())):
                if callee in self.methods and callee not in seen:
                    seen.add(callee)
                    reachable.append(callee)
                    queue.append(callee)
        return [self.methods[name] for name in reachable]


@dataclass
class ModuleInfo:
    """One parsed file plus its resolved names."""

    path: str  # reported path, used in findings
    rel: str  # package-relative scoping path
    domain: str  # src / tests / benchmarks
    tree: ast.Module
    source: str
    imports: ImportMap
    module_name: Optional[str]  # dotted repro.* name when in src
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    imported_modules: Set[str] = field(default_factory=set)


def _module_name(rel: str, domain: str) -> Optional[str]:
    if domain != "src" or not rel.endswith(".py"):
        return None
    stem = rel[: -len(".py")]
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    if stem == "__init__":
        return "repro"
    return "repro." + stem.replace("/", ".")


def _function_info(node: ast.AST, qualname: str) -> FunctionInfo:
    return FunctionInfo(
        name=node.name,
        qualname=qualname,
        node=node,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        awaits=direct_awaits(node),
    )


def _class_info(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    info = ClassInfo(
        name=node.name,
        module_rel=module.rel,
        module_path=module.path,
        node=node,
    )
    for child in node.body:
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        method = _function_info(child, f"{node.name}.{child.name}")
        info.methods[child.name] = method
        init_params: Set[str] = set()
        if child.name == "__init__":
            args = child.args
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                init_params.add(arg.arg)
            init_params.discard("self")
        calls: Set[str] = set()
        for sub in ast.walk(child):
            if isinstance(sub, ast.Call):
                target = self_attr_target(sub.func)
                if target is not None:
                    calls.add(target)
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in _store_targets(sub):
                    attr = self_attr_target(target)
                    if attr is None:
                        continue
                    if child.name == "__init__":
                        info.init_attrs.add(attr)
                        value = getattr(sub, "value", None)
                        if isinstance(value, ast.Call):
                            ctor = module.imports.resolve(dotted_name(value.func))
                            if ctor is not None and attr not in info.attr_types:
                                info.attr_types[attr] = ctor
                        elif (
                            isinstance(value, ast.Name)
                            and value.id in init_params
                        ):
                            info.callback_attrs.add(attr)
                    else:
                        info.attr_writes.setdefault(attr, set()).add(child.name)
        info.self_calls[child.name] = calls
    return info


class ProjectIndex:
    """All parsed modules of one lint run, cross-referenced."""

    def __init__(self, roots: List[Path]) -> None:
        self.roots = roots
        #: package-relative path -> module
        self.modules: Dict[str, ModuleInfo] = {}
        #: dotted module name -> module (src domain only)
        self.by_name: Dict[str, ModuleInfo] = {}
        #: dotted module name -> imported repro.* module names
        self.import_edges: Dict[str, Set[str]] = {}

    @classmethod
    def build(
        cls, contexts: List[FileContext], roots: Optional[List[Path]] = None
    ) -> "ProjectIndex":
        index = cls(roots=list(roots or []))
        for ctx in contexts:
            imports = ImportMap(ctx.tree)
            module = ModuleInfo(
                path=ctx.path,
                rel=ctx.rel,
                domain=ctx.domain,
                tree=ctx.tree,
                source=ctx.source,
                imports=imports,
                module_name=_module_name(ctx.rel, ctx.domain),
            )
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    module.classes[node.name] = _class_info(node, module)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    module.functions[node.name] = _function_info(node, node.name)
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        module.imported_modules.add(alias.name)
                elif isinstance(node, ast.ImportFrom) and node.module:
                    module.imported_modules.add(node.module)
            index.modules[ctx.rel] = module
            if module.module_name is not None:
                index.by_name[module.module_name] = module
                index.import_edges[module.module_name] = {
                    name
                    for name in module.imported_modules
                    if name == "repro" or name.startswith("repro.")
                }
        return index

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def module(self, rel: str) -> Optional[ModuleInfo]:
        return self.modules.get(rel)

    def iter_modules(
        self, domain: Optional[str] = None, prefix: Optional[str] = None
    ) -> Iterator[ModuleInfo]:
        for rel in sorted(self.modules):
            module = self.modules[rel]
            if domain is not None and module.domain != domain:
                continue
            if prefix is not None and not rel.startswith(prefix):
                continue
            yield module

    def iter_classes(
        self, domain: Optional[str] = None, prefix: Optional[str] = None
    ) -> Iterator[Tuple[ModuleInfo, ClassInfo]]:
        for module in self.iter_modules(domain=domain, prefix=prefix):
            for name in sorted(module.classes):
                yield module, module.classes[name]

    def doc_file(self, relative: str) -> Optional[Path]:
        """Locate a docs file (e.g. ``docs/PROTOCOLS.md``) near the scan roots.

        Checked under each scanned root and its parent, so scanning
        ``src`` from the repo root finds ``docs/`` beside it, and
        fixture trees can carry their own ``docs/`` directory.
        """
        seen: Set[Path] = set()
        for root in self.roots:
            for base in (root, root.parent):
                candidate = (base / relative).resolve()
                if candidate in seen:
                    continue
                seen.add(candidate)
                if candidate.is_file():
                    return candidate
        return None
