"""The rule engine behind ``python -m repro.lint``.

The analyzer is the static-analysis analogue of the runtime
:class:`~repro.faults.invariants.InvariantChecker`: where that class
sweeps a *running* deployment for broken invariants, this engine sweeps
the *source tree* for code that could break them later -- an unseeded
RNG in a deterministic layer, a wall-clock read inside the simulator, a
blocking call on the live event loop.  Everything is stdlib ``ast``;
there are no dependencies, so the gate can run anywhere the tests run.

Design:

* a :class:`Rule` has an id, a human title, a *rationale* (which paper
  claim or subsystem invariant it protects), a tuple of path *scopes*
  -- prefixes relative to the ``repro`` package root (empty = the whole
  tree) -- and a tuple of *domains* (``src``/``tests``/``benchmarks``)
  it runs in;
* a :class:`ProjectRule` sees the whole tree at once through a
  :class:`~repro.lint.index.ProjectIndex` (module map, import graph,
  per-class symbol tables, coroutine await positions) instead of one
  file -- the async interleaving detector and the protocol-conformance
  checker are built on it;
* rules register themselves in :data:`RULES` via :func:`register`;
* findings on a line carrying ``# lint: disable=RULEID -- why`` are
  suppressed, but only when the ``-- why`` justification text is
  present; a bare ``disable`` both fails to suppress and is itself
  reported (:data:`LINT000`), so every suppression in the tree is
  forced to explain itself;
* output is human-readable (``path:line:col: RULE message``), JSON
  (``--format json`` / ``--json``) or SARIF 2.1.0 (``--format sarif``,
  for code-scanning upload), and the process exits nonzero iff there
  are findings -- the CI ``lint`` job gates on exactly that.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Pseudo-rule id for malformed suppressions (``disable`` without a
#: ``-- justification``).  Not suppressible, by construction.
LINT000 = "LINT000"

#: Pseudo-rule id for files the parser rejects outright.
PARSE001 = "PARSE001"

#: The three scanned trees a rule can opt into.  ``src`` is anything
#: inside (or laid out like) the ``repro`` package; the other two are
#: the repo's test and benchmark trees, linted since PR 9 with
#: per-domain rule sets.
DOMAINS = ("src", "tests", "benchmarks")


@dataclass(frozen=True)
class Finding:
    """One problem at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One inline ``# lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


# ``# lint: disable=DET001`` or ``# lint: disable=DET001,ERR001 -- why``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s+--\s*(.*\S))?\s*$"
)


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every inline suppression comment from *source*."""
    suppressions: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group(1).split(","))
        suppressions.append(
            Suppression(line=lineno, rules=rules, justification=match.group(2) or "")
        )
    return suppressions


def path_domain(rel: str) -> str:
    """Which scanned domain a scoping path belongs to."""
    if rel == "tests" or rel.startswith("tests/"):
        return "tests"
    if rel == "benchmarks" or rel.startswith("benchmarks/"):
        return "benchmarks"
    return "src"


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str  # as reported in findings (relative to the scanned root)
    rel: str  # path relative to the ``repro`` package root, for scoping
    source: str
    tree: ast.Module
    domain: str = "src"  # src / tests / benchmarks (see path_domain)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class: subclass, set the class attributes, implement ``check``."""

    id: str = ""
    title: str = ""
    #: which paper claim / subsystem invariant the rule protects
    rationale: str = ""
    #: path prefixes relative to the ``repro`` package root; () = everywhere
    scopes: Tuple[str, ...] = ()
    #: paths exempt from the rule even when in scope
    exempt: Tuple[str, ...] = ()
    #: scanned trees the rule runs in; package scopes only apply in ``src``
    domains: Tuple[str, ...] = ("src",)

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.domain not in self.domains:
            return False
        if any(ctx.rel == path for path in self.exempt):
            return False
        if ctx.domain != "src":
            return True
        if not self.scopes:
            return True
        return any(
            ctx.rel == scope or ctx.rel.startswith(scope) for scope in self.scopes
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that analyses the whole scanned tree at once.

    Instead of ``check(ctx)`` per file, a project rule implements
    ``check_project(index)`` against the shared
    :class:`~repro.lint.index.ProjectIndex` built after every file has
    parsed.  Inline suppressions still apply: a project finding on a
    line carrying a justified ``# lint: disable=RULE -- why`` in its
    file is filtered exactly like a per-file finding.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError


#: The global registry; :func:`register` fills it at import time.
RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate the rule and add it to :data:`RULES`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, importing the built-in rule sets on demand."""
    from repro.lint import rules as _rules  # noqa: F401  (registration side effect)
    from repro.lint import analyses as _analyses  # noqa: F401  (same)

    return [RULES[rule_id] for rule_id in sorted(RULES)]


# ---------------------------------------------------------------------- #
# file discovery and scoping
# ---------------------------------------------------------------------- #

def iter_python_files(paths: Sequence[str]) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, root)`` pairs for every ``.py`` under *paths*.

    *root* is the argument the file was found under, used to build the
    reported (relative) path.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            yield root, root.parent
        elif root.is_dir():
            for file in sorted(root.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                if any(part.startswith(".") for part in file.parts):
                    continue
                yield file, root
        else:
            raise FileNotFoundError(raw)


def package_relative(file: Path, root: Path) -> str:
    """The scoping path: relative to the ``repro`` package root.

    Files under a ``repro`` directory scope by their position inside the
    package (``.../src/repro/pastry/routing.py`` -> ``pastry/routing.py``)
    regardless of where the tree was scanned from.  Files outside any
    ``repro`` directory (e.g. test fixture trees) scope relative to the
    scanned root, so fixture layouts like ``tmp/sim/x.py`` exercise the
    same per-layer scoping the real tree does.  Scanning the repo's
    ``tests`` or ``benchmarks`` directory itself prefixes the directory
    name, so those files land in their own rule domain.
    """
    parts = file.resolve().parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        inside = parts[index + 1:]
        if inside:
            return "/".join(inside)
    try:
        rel = file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = file.name
    if root.name in ("tests", "benchmarks"):
        return f"{root.name}/{rel}"
    return rel


# ---------------------------------------------------------------------- #
# running
# ---------------------------------------------------------------------- #

def _read_context(
    file: Path, root: Path
) -> Tuple[Optional[FileContext], List[Finding], Dict[int, Set[str]]]:
    """Parse one file into (context, pre-findings, justified suppressions).

    The context is None when the file does not parse; the PARSE001
    finding is then the only entry in the findings list.  Unjustified
    suppressions surface as LINT000 findings here, so both the per-file
    and the project pass see the same suppression discipline.
    """
    try:
        reported = file.relative_to(root).as_posix()
        if root.name in ("tests", "benchmarks"):
            reported = f"{root.name}/{reported}"
    except ValueError:
        reported = file.as_posix()
    source = file.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as exc:
        finding = Finding(
            rule=PARSE001,
            path=reported,
            line=exc.lineno or 1,
            col=(exc.offset or 0) or 1,
            message=f"file does not parse: {exc.msg}",
        )
        return None, [finding], {}
    rel = package_relative(file, root)
    ctx = FileContext(
        path=reported,
        rel=rel,
        source=source,
        tree=tree,
        domain=path_domain(rel),
    )
    findings: List[Finding] = []
    justified: Dict[int, Set[str]] = {}
    for suppression in parse_suppressions(source):
        if suppression.justified:
            justified.setdefault(suppression.line, set()).update(suppression.rules)
        else:
            findings.append(
                Finding(
                    rule=LINT000,
                    path=reported,
                    line=suppression.line,
                    col=1,
                    message=(
                        "suppression without a justification -- write "
                        "'# lint: disable=RULE -- <why this is safe>'"
                    ),
                )
            )
    return ctx, findings, justified


def lint_file(
    file: Path, root: Optional[Path] = None, rules: Optional[Iterable[Rule]] = None
) -> List[Finding]:
    """Lint one file; returns its (post-suppression) findings.

    Project rules need the whole tree and are skipped here -- use
    :func:`lint_paths` to run them.
    """
    root = root if root is not None else file.parent
    ctx, findings, justified = _read_context(file, root)
    if ctx is None:
        return findings
    for rule in rules if rules is not None else all_rules():
        if isinstance(rule, ProjectRule):
            continue
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule in justified.get(finding.line, ()):
                continue
            findings.append(finding)
    return findings


@dataclass
class Report:
    """The result of one lint run."""

    findings: List[Finding]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def to_sarif(self, rules: Optional[Sequence[Rule]] = None) -> str:
        """SARIF 2.1.0 for code-scanning upload (deterministic JSON)."""
        descriptors: Dict[str, dict] = {
            LINT000: {
                "id": LINT000,
                "shortDescription": {
                    "text": "suppression without a justification"
                },
            },
            PARSE001: {
                "id": PARSE001,
                "shortDescription": {"text": "file does not parse"},
            },
        }
        for rule in rules if rules is not None else all_rules():
            descriptors[rule.id] = {
                "id": rule.id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
            }
        for finding in self.findings:
            descriptors.setdefault(
                finding.rule,
                {"id": finding.rule, "shortDescription": {"text": finding.rule}},
            )
        rule_ids = sorted(descriptors)
        rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
        results = [
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
            }
            for finding in self.findings
        ]
        document = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro.lint",
                            "informationUri": (
                                "https://example.invalid/repro-lint"
                            ),
                            "rules": [descriptors[r] for r in rule_ids],
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(document, sort_keys=True, indent=2)

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def lint_paths(
    paths: Sequence[str], rules: Optional[Iterable[Rule]] = None
) -> Report:
    """Lint every Python file under *paths*; findings come back sorted.

    Two passes share one parse: the per-file rules run as each file is
    read, then the :class:`ProjectRule` set runs once over the
    :class:`~repro.lint.index.ProjectIndex` built from all parsed files.
    """
    rule_list = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in rule_list if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rule_list if isinstance(r, ProjectRule)]
    findings: List[Finding] = []
    contexts: List[FileContext] = []
    suppressed: Dict[str, Dict[int, Set[str]]] = {}
    roots: List[Path] = []
    files = 0
    for file, root in iter_python_files(paths):
        files += 1
        if root not in roots:
            roots.append(root)
        ctx, pre_findings, justified = _read_context(file, root)
        findings.extend(pre_findings)
        if ctx is None:
            continue
        contexts.append(ctx)
        suppressed[ctx.path] = justified
        for rule in file_rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if finding.rule in justified.get(finding.line, ()):
                    continue
                findings.append(finding)
    if project_rules and contexts:
        from repro.lint.index import ProjectIndex

        index = ProjectIndex.build(contexts, roots)
        for rule in project_rules:
            for finding in rule.check_project(index):
                lines = suppressed.get(finding.path, {})
                if finding.rule in lines.get(finding.line, ()):
                    continue
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return Report(findings=findings, files_checked=files)
