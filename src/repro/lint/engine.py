"""The rule engine behind ``python -m repro.lint``.

The analyzer is the static-analysis analogue of the runtime
:class:`~repro.faults.invariants.InvariantChecker`: where that class
sweeps a *running* deployment for broken invariants, this engine sweeps
the *source tree* for code that could break them later -- an unseeded
RNG in a deterministic layer, a wall-clock read inside the simulator, a
blocking call on the live event loop.  Everything is stdlib ``ast``;
there are no dependencies, so the gate can run anywhere the tests run.

Design:

* a :class:`Rule` has an id, a human title, a *rationale* (which paper
  claim or subsystem invariant it protects), and a tuple of path
  *scopes* -- prefixes relative to the ``repro`` package root (empty =
  the whole tree);
* rules register themselves in :data:`RULES` via :func:`register`;
* findings on a line carrying ``# lint: disable=RULEID -- why`` are
  suppressed, but only when the ``-- why`` justification text is
  present; a bare ``disable`` both fails to suppress and is itself
  reported (:data:`LINT000`), so every suppression in the tree is
  forced to explain itself;
* output is human-readable (``path:line:col: RULE message``) or JSON
  (``--json``), and the process exits nonzero iff there are findings
  -- the CI ``lint`` job gates on exactly that.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Pseudo-rule id for malformed suppressions (``disable`` without a
#: ``-- justification``).  Not suppressible, by construction.
LINT000 = "LINT000"

#: Pseudo-rule id for files the parser rejects outright.
PARSE001 = "PARSE001"


@dataclass(frozen=True)
class Finding:
    """One problem at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One inline ``# lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


# ``# lint: disable=DET001`` or ``# lint: disable=DET001,ERR001 -- why``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s+--\s*(.*\S))?\s*$"
)


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every inline suppression comment from *source*."""
    suppressions: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group(1).split(","))
        suppressions.append(
            Suppression(line=lineno, rules=rules, justification=match.group(2) or "")
        )
    return suppressions


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str  # as reported in findings (relative to the scanned root)
    rel: str  # path relative to the ``repro`` package root, for scoping
    source: str
    tree: ast.Module

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class: subclass, set the class attributes, implement ``check``."""

    id: str = ""
    title: str = ""
    #: which paper claim / subsystem invariant the rule protects
    rationale: str = ""
    #: path prefixes relative to the ``repro`` package root; () = everywhere
    scopes: Tuple[str, ...] = ()
    #: paths exempt from the rule even when in scope
    exempt: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if any(ctx.rel == path for path in self.exempt):
            return False
        if not self.scopes:
            return True
        return any(
            ctx.rel == scope or ctx.rel.startswith(scope) for scope in self.scopes
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


#: The global registry; :func:`register` fills it at import time.
RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate the rule and add it to :data:`RULES`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, importing the built-in rule set on demand."""
    from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

    return [RULES[rule_id] for rule_id in sorted(RULES)]


# ---------------------------------------------------------------------- #
# file discovery and scoping
# ---------------------------------------------------------------------- #

def iter_python_files(paths: Sequence[str]) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, root)`` pairs for every ``.py`` under *paths*.

    *root* is the argument the file was found under, used to build the
    reported (relative) path.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            yield root, root.parent
        elif root.is_dir():
            for file in sorted(root.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                if any(part.startswith(".") for part in file.parts):
                    continue
                yield file, root
        else:
            raise FileNotFoundError(raw)


def package_relative(file: Path, root: Path) -> str:
    """The scoping path: relative to the ``repro`` package root.

    Files under a ``repro`` directory scope by their position inside the
    package (``.../src/repro/pastry/routing.py`` -> ``pastry/routing.py``)
    regardless of where the tree was scanned from.  Files outside any
    ``repro`` directory (e.g. test fixture trees) scope relative to the
    scanned root, so fixture layouts like ``tmp/sim/x.py`` exercise the
    same per-layer scoping the real tree does.
    """
    parts = file.resolve().parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        inside = parts[index + 1:]
        if inside:
            return "/".join(inside)
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.name


# ---------------------------------------------------------------------- #
# running
# ---------------------------------------------------------------------- #

def lint_file(
    file: Path, root: Optional[Path] = None, rules: Optional[Iterable[Rule]] = None
) -> List[Finding]:
    """Lint one file; returns its (post-suppression) findings."""
    root = root if root is not None else file.parent
    try:
        reported = file.relative_to(root).as_posix()
    except ValueError:
        reported = file.as_posix()
    source = file.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE001,
                path=reported,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=reported,
        rel=package_relative(file, root),
        source=source,
        tree=tree,
    )
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for suppression in suppressions:
        if not suppression.justified:
            findings.append(
                Finding(
                    rule=LINT000,
                    path=reported,
                    line=suppression.line,
                    col=1,
                    message=(
                        "suppression without a justification -- write "
                        "'# lint: disable=RULE -- <why this is safe>'"
                    ),
                )
            )
    justified: Dict[int, set] = {}
    for suppression in suppressions:
        if suppression.justified:
            justified.setdefault(suppression.line, set()).update(suppression.rules)
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule in justified.get(finding.line, ()):
                continue
            findings.append(finding)
    return findings


@dataclass
class Report:
    """The result of one lint run."""

    findings: List[Finding]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def lint_paths(
    paths: Sequence[str], rules: Optional[Iterable[Rule]] = None
) -> Report:
    """Lint every Python file under *paths*; findings come back sorted."""
    rule_list = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    files = 0
    for file, root in iter_python_files(paths):
        files += 1
        findings.extend(lint_file(file, root, rule_list))
    findings.sort(key=Finding.sort_key)
    return Report(findings=findings, files_checked=files)
