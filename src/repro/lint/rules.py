"""The built-in rule set: this repo's real failure modes, machine-checked.

Each rule documents, in ``rationale``, which paper claim (PAPER.md §2,
C1--C11) or subsystem invariant (DESIGN.md §6--§8) it protects.  The
rules are deliberately narrow and syntactic: a finding should almost
always be a real bug, and the rare legitimate exception is expected to
carry an inline ``# lint: disable=RULE -- why`` with its justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule, register

#: Layers whose behaviour must be a pure function of the seed: the
#: simulator core, the overlay, the network model, fault plans and
#: workload generators.  (``crypto/`` and ``analysis/`` are exempt --
#: key generation may want OS entropy, and bench reports legitimately
#: record wall-clock timestamps.)
DETERMINISTIC_SCOPES: Tuple[str, ...] = (
    "sim/",
    "pastry/",
    "netsim/",
    "faults/",
    "workloads/",
    "core/",
)

#: Modules that were deleted after a deprecation cycle, with the
#: replacement any stale import must switch to.  Entries stay listed
#: after removal so a resurrected import is flagged with its fix.
DEPRECATED_MODULES: Dict[str, str] = {
    "repro.sim.trace": "repro.obs.metrics",
    "repro.analysis.tracing": "repro.obs.spans",
}


# ---------------------------------------------------------------------- #
# shared AST helpers
# ---------------------------------------------------------------------- #

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolve local names back to the modules they were imported from."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    head = alias.name.split(".")[0]
                    self.aliases[alias.asname or head] = (
                        alias.name if alias.asname else head
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Map ``dt.now`` -> ``datetime.datetime.now`` given the imports."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


def walk_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def contains(body: List[ast.stmt], node_type: type) -> bool:
    return any(
        isinstance(node, node_type) for stmt in body for node in ast.walk(stmt)
    )


# ---------------------------------------------------------------------- #
# DET: determinism
# ---------------------------------------------------------------------- #

#: ``random.<fn>`` calls that draw from (or reseed) the process-global RNG.
_GLOBAL_RNG_FNS: Set[str] = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
}


@register
class UnseededRandom(Rule):
    id = "DET001"
    title = "unseeded or process-global RNG in a deterministic layer"
    rationale = (
        "Every C1-C11 reproduction (PAPER.md §2) and every chaos run "
        "(DESIGN.md §8) is byte-deterministic per seed.  RNGs in these "
        "layers must flow in as parameters from sim/rng.py's RngRegistry; "
        "an unseeded random.Random() or a module-level random.* call "
        "silently re-couples results to process state."
    )
    scopes = DETERMINISTIC_SCOPES
    # Unseeded RNG in a test or benchmark is a flaky-run hazard, not just
    # a sim-layer one; deliberate exceptions suppress with a reason.
    domains = ("src", "tests", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name for alias in node.names
                    if alias.name in _GLOBAL_RNG_FNS
                )
                if bad:
                    yield ctx.finding(
                        self, node,
                        f"importing {', '.join(bad)} from the random module binds "
                        "the process-global RNG -- take a random.Random stream "
                        "from sim/rng.py RngRegistry instead",
                    )
        for call in walk_calls(ctx.tree):
            resolved = imports.resolve(dotted_name(call.func))
            if resolved == "random.Random" and not call.args and not call.keywords:
                yield ctx.finding(
                    self, call,
                    "unseeded random.Random() -- seed it from sim/rng.py "
                    "(stable_seed / RngRegistry.stream) or accept an rng "
                    "parameter",
                )
            elif (
                resolved is not None
                and resolved.startswith("random.")
                and resolved.split(".", 1)[1] in _GLOBAL_RNG_FNS
            ):
                yield ctx.finding(
                    self, call,
                    f"{resolved}() draws from the process-global RNG -- use a "
                    "seeded random.Random stream from sim/rng.py RngRegistry",
                )


#: Functions that read the host's wall clock.
_WALL_CLOCK_FNS: Set[str] = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRead(Rule):
    id = "DET002"
    title = "wall-clock read in a deterministic layer"
    rationale = (
        "Simulated time comes from the engine clock (sim/engine.py; the "
        "obs bus timestamps events with the same pluggable clock, "
        "DESIGN.md §7).  A wall-clock read in these layers makes event "
        "logs and chaos reports differ across identical seeded runs, "
        "breaking the byte-determinism the C6/C7 regression tests pin."
    )
    scopes = DETERMINISTIC_SCOPES
    # Tests asserting on wall-clock time are timing-flaky; benchmarks are
    # exempt -- measuring wall time is their whole point.
    domains = ("src", "tests")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for call in walk_calls(ctx.tree):
            resolved = imports.resolve(dotted_name(call.func))
            if resolved in _WALL_CLOCK_FNS:
                yield ctx.finding(
                    self, call,
                    f"{resolved}() reads the wall clock -- deterministic layers "
                    "must take time from the simulation engine clock",
                )


def _is_unordered(node: ast.AST) -> bool:
    """Syntactically a set (hash-ordered) expression?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union", "intersection", "difference", "symmetric_difference",
        }:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


@register
class UnsortedSetIteration(Rule):
    id = "DET003"
    title = "set materialised into ordered output without sorted()"
    rationale = (
        "Routing and repair decide real outcomes from candidate *lists* "
        "(next hop, replacement leaf, repair target); building those from "
        "set iteration order couples replica placement (paper §3.3) and "
        "repair (C6) to hash order, which PYTHONHASHSEED can silently "
        "reorder between runs.  Wrap the set in sorted(...) first."
    )
    scopes = ("pastry/", "core/maintenance.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"}
                and node.args
                and _is_unordered(node.args[0])
            ):
                yield ctx.finding(
                    self, node,
                    f"{node.func.id}() over a set fixes an arbitrary hash order "
                    "-- use sorted(...) to make the ordering explicit",
                )
            elif isinstance(node, ast.ListComp) and any(
                _is_unordered(generator.iter) for generator in node.generators
            ):
                yield ctx.finding(
                    self, node,
                    "list comprehension iterating a set fixes an arbitrary hash "
                    "order -- iterate sorted(...) instead",
                )


# ---------------------------------------------------------------------- #
# ASYNC: live-layer event-loop discipline
# ---------------------------------------------------------------------- #

_BLOCKING_FNS: Set[str] = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen",
    "socket.socket", "socket.create_connection",
    "urllib.request.urlopen",
}


class _AsyncCallCollector(ast.NodeVisitor):
    """Collect calls whose *innermost enclosing function* is async."""

    def __init__(self) -> None:
        self.stack: List[bool] = []
        self.calls: List[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.stack.append(False)
        self.generic_visit(node)
        self.stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.stack.append(True)
        self.generic_visit(node)
        self.stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.stack.append(False)
        self.generic_visit(node)
        self.stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self.stack and self.stack[-1]:
            self.calls.append(node)
        self.generic_visit(node)


@register
class BlockingCallInAsync(Rule):
    id = "ASYNC001"
    title = "blocking call inside an async function"
    rationale = (
        "The live cluster runs every node on one asyncio event loop "
        "(DESIGN.md §8): a single blocking call stalls all nodes' "
        "heartbeats and retry timers at once, turning one slow peer into "
        "a correlated whole-deployment pause -- exactly the failure mode "
        "the C7 retry/reroute path exists to mask."
    )
    scopes = ("live/",)
    # Async test/benchmark helpers share the one event loop with the
    # cluster under test -- a blocking call there stalls it identically.
    domains = ("src", "tests", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        collector = _AsyncCallCollector()
        collector.visit(ctx.tree)
        for call in collector.calls:
            resolved = imports.resolve(dotted_name(call.func))
            if resolved in _BLOCKING_FNS:
                yield ctx.finding(
                    self, call,
                    f"{resolved}() blocks the event loop -- use the asyncio "
                    "equivalent (e.g. await asyncio.sleep) or move it off-loop",
                )
            elif resolved == "open":
                yield ctx.finding(
                    self, call,
                    "open() blocks the event loop -- do file I/O outside async "
                    "code paths",
                )


@register
class LostTask(Rule):
    id = "ASYNC002"
    title = "created task whose handle is discarded"
    rationale = (
        "A task whose handle is dropped is garbage-collectable mid-flight "
        "and its exceptions vanish: a failed retry path would neither "
        "raise DegradedError (C7) nor surface in the invariant sweep.  "
        "Keep the handle (assign/await/gather) so failures propagate."
    )
    scopes = ("live/",)
    domains = ("src", "tests")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            body_lists = [
                getattr(node, attr, [])
                for attr in ("body", "orelse", "finalbody")
            ]
            for body in body_lists:
                if not isinstance(body, list):
                    continue
                for stmt in body:
                    if not isinstance(stmt, ast.Expr):
                        continue
                    value = stmt.value
                    if not isinstance(value, ast.Call):
                        continue
                    name = dotted_name(value.func)
                    if name is None:
                        continue
                    tail = name.rsplit(".", 1)[-1]
                    if tail in {"create_task", "ensure_future"}:
                        yield ctx.finding(
                            self, stmt,
                            f"{name}(...) discards the task handle -- assign it "
                            "and await/cancel it so exceptions are not lost",
                        )


# ---------------------------------------------------------------------- #
# OBS: observability discipline
# ---------------------------------------------------------------------- #

@register
class EventSchemaDiscipline(Rule):
    id = "OBS001"
    title = "event class not a frozen dataclass, or unregistered"
    rationale = (
        "EventRecord determinism (byte-identical JSONL across identical "
        "seeded runs, DESIGN.md §7) assumes events are immutable, and the "
        "CI schema-validation smoke step only checks kinds registered in "
        "EVENT_TYPES -- an unregistered event would ship unvalidated."
    )
    scopes = ("obs/events.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        registered: Set[str] = set()
        for node in ctx.tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if (
                isinstance(target, ast.Name)
                and target.id == "EVENT_TYPES"
                and node.value is not None
            ):
                registered = {
                    name.id
                    for name in ast.walk(node.value)
                    if isinstance(name, ast.Name) and isinstance(name.ctx, ast.Load)
                }
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            is_event = any(
                (isinstance(base, ast.Name) and base.id == "Event")
                or (isinstance(base, ast.Attribute) and base.attr == "Event")
                for base in node.bases
            )
            if not is_event:
                continue
            if not self._frozen_dataclass(node):
                yield ctx.finding(
                    self, node,
                    f"event class {node.name} must be decorated "
                    "@dataclass(frozen=True) -- mutable events break "
                    "EventRecord determinism",
                )
            if node.name not in registered:
                yield ctx.finding(
                    self, node,
                    f"event class {node.name} is missing from EVENT_TYPES -- "
                    "unregistered events skip JSONL schema validation",
                )

    @staticmethod
    def _frozen_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            name = dotted_name(decorator.func)
            if name is None or name.rsplit(".", 1)[-1] != "dataclass":
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        return False


# ---------------------------------------------------------------------- #
# ERR: error-handling discipline
# ---------------------------------------------------------------------- #

@register
class SwallowedException(Rule):
    id = "ERR001"
    title = "broad except that swallows the exception"
    rationale = (
        "The fault harness (DESIGN.md §8) relies on failures surfacing: "
        "either as a raised typed error (core/errors.py) or as a bus "
        "event the InvariantChecker and chaos reports can see.  A bare / "
        "except-Exception handler that does neither hides exactly the "
        "violations the chaos runs exist to catch."
    )

    domains = ("src", "tests", "benchmarks")

    _BROAD = {"Exception", "BaseException"}
    _EMITTERS = {"publish", "emit"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if contains(node.body, ast.Raise):
                continue
            if self._emits_event(node.body):
                continue
            label = "bare except" if node.type is None else "except Exception"
            yield ctx.finding(
                self, node,
                f"{label} swallows the exception -- re-raise a typed error or "
                "publish a bus event so the failure stays observable",
            )

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Attribute):
            return type_node.attr in self._BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(element) for element in type_node.elts)
        return False

    def _emits_event(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._EMITTERS
                ):
                    return True
        return False


# ---------------------------------------------------------------------- #
# NEW: deprecated-module hygiene
# ---------------------------------------------------------------------- #

@register
class DeprecatedImport(Rule):
    id = "NEW001"
    title = "import of a deprecated shim module"
    rationale = (
        "the PR 2/3 re-export shims (sim/trace.py, analysis/tracing.py) "
        "were deleted after their deprecation cycle; any import of them "
        "now fails at runtime.  This rule catches stale imports at lint "
        "time and names the replacement module."
    )
    domains = ("src", "tests", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    replacement = self._deprecated(alias.name)
                    if replacement:
                        yield ctx.finding(
                            self, node,
                            f"{alias.name} is a deprecated shim -- import "
                            f"{replacement} instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                modules = {node.module}
                modules.update(f"{node.module}.{a.name}" for a in node.names)
                for module in sorted(modules):
                    replacement = self._deprecated(module)
                    if replacement:
                        yield ctx.finding(
                            self, node,
                            f"{module} is a deprecated shim -- import "
                            f"{replacement} instead",
                        )
                        break

    @staticmethod
    def _deprecated(module: str) -> Optional[str]:
        for deprecated, replacement in DEPRECATED_MODULES.items():
            if module == deprecated or module.startswith(deprecated + "."):
                return replacement
        return None
