"""``repro.lint``: an AST-based determinism / async-safety / obs-discipline gate.

The runtime :class:`~repro.faults.invariants.InvariantChecker` (PR 3)
verifies a *running* deployment; this package is its static-analysis
analogue, verifying the *source tree* against the same invariants before
the code ever runs.  ``python -m repro.lint src`` walks the tree with a
small stdlib-``ast`` rule engine and exits nonzero on any finding; the
CI ``lint`` job gates every PR on exactly that.

Rules (see DESIGN.md §9 for the full table and rationales):

========  ==============================================================
DET001    unseeded / process-global RNG in a deterministic layer
DET002    wall-clock read in a deterministic layer
DET003    set materialised into ordered output without ``sorted()``
ASYNC001  blocking call inside an ``async def`` in the live layer
ASYNC002  ``create_task`` whose handle is discarded
OBS001    event class not a frozen dataclass / missing from EVENT_TYPES
ERR001    broad ``except`` that swallows the exception
NEW001    import of a deprecated shim module
========  ==============================================================

A legitimate exception carries ``# lint: disable=RULE -- why`` on the
flagged line; the justification text is mandatory (an unjustified
``disable`` is itself reported as LINT000 and suppresses nothing).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import (
    LINT000,
    PARSE001,
    RULES,
    FileContext,
    Finding,
    Report,
    Rule,
    Suppression,
    all_rules,
    lint_file,
    lint_paths,
    parse_suppressions,
    register,
)

__all__ = [
    "LINT000",
    "PARSE001",
    "RULES",
    "FileContext",
    "Finding",
    "Report",
    "Rule",
    "Suppression",
    "all_rules",
    "lint_file",
    "lint_paths",
    "parse_suppressions",
    "register",
    "main",
]


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based determinism / async-safety / observability gate "
            "(exit 0 = clean, 1 = findings, 2 = bad invocation)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src if present, else .)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report (findings, counts) as JSON",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (id, scopes, title, rationale) and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        scopes = ", ".join(rule.scopes) if rule.scopes else "(everywhere)"
        print(f"{rule.id}  {rule.title}")
        print(f"    scopes: {scopes}")
        print(f"    why: {rule.rationale}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    paths = args.paths or _default_paths()
    try:
        report = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro.lint: no such path: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.format_human())
    return 0 if report.clean else 1
