"""``repro.lint``: an AST-based determinism / async-safety / obs-discipline gate.

The runtime :class:`~repro.faults.invariants.InvariantChecker` (PR 3)
verifies a *running* deployment; this package is its static-analysis
analogue, verifying the *source tree* against the same invariants before
the code ever runs.  ``python -m repro.lint src tests benchmarks`` walks
the trees with a small stdlib-``ast`` rule engine and exits nonzero on
any finding; the CI ``lint`` job gates every PR on exactly that.

Since PR 9 the engine runs two passes over one parse: the per-file
syntactic rules, then the **whole-program** rules, which consume a
shared :class:`~repro.lint.index.ProjectIndex` (module map, import
graph, per-class symbol tables, coroutine await positions).

Per-file rules (see DESIGN.md §9):

========  ==============================================================
DET001    unseeded / process-global RNG in a deterministic layer
DET002    wall-clock read in a deterministic layer
DET003    set materialised into ordered output without ``sorted()``
ASYNC001  blocking call inside an ``async def`` in the live layer
ASYNC002  ``create_task`` whose handle is discarded
OBS001    event class not a frozen dataclass / missing from EVENT_TYPES
ERR001    broad ``except`` that swallows the exception
NEW001    import of a deprecated shim module
========  ==============================================================

Whole-program rules (see DESIGN.md §14):

========  ==============================================================
ASYNC101  check-then-act on a shared attribute across an await point
ASYNC102  task handle with no cancellation path from aclose/stop
ASYNC103  lock held across an await into a stored user callback
ASYNC104  Event/future waiter with no setter on the close path
CONF001   message kind constructed/charged but missing from MESSAGE_COSTS
CONF002   codec wire tag registered for only one of encode/decode
CONF003   event emitted or defined outside the EVENT_TYPES schema
CONF004   claim id produced but not declared in obs/claims.py
CONF005   docs/PROTOCOLS.md cost table out of sync with MESSAGE_COSTS
========  ==============================================================

A legitimate exception carries ``# lint: disable=RULE -- why`` on the
flagged line; the justification text is mandatory (an unjustified
``disable`` is itself reported as LINT000 and suppresses nothing).
Output formats: human (default), ``--format json`` (or ``--json``), and
``--format sarif`` for code-scanning upload.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import (
    LINT000,
    PARSE001,
    RULES,
    FileContext,
    Finding,
    ProjectRule,
    Report,
    Rule,
    Suppression,
    all_rules,
    lint_file,
    lint_paths,
    parse_suppressions,
    register,
)

__all__ = [
    "LINT000",
    "PARSE001",
    "RULES",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Report",
    "Rule",
    "Suppression",
    "all_rules",
    "lint_file",
    "lint_paths",
    "parse_suppressions",
    "register",
    "main",
]


def _default_paths() -> List[str]:
    paths = [p for p in ("src", "tests", "benchmarks") if Path(p).is_dir()]
    return paths or ["."]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based determinism / async-safety / observability gate "
            "(exit 0 = clean, 1 = findings, 2 = bad invocation)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=(
            "files or directories to lint "
            "(default: src, tests, benchmarks -- whichever exist)"
        ),
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default=None,
        help="output format (default: human)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json (kept for CI compatibility)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (id, scopes, title, rationale) and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        scopes = ", ".join(rule.scopes) if rule.scopes else "(everywhere)"
        kind = "project" if isinstance(rule, ProjectRule) else "file"
        print(f"{rule.id}  {rule.title}")
        print(f"    kind: {kind}  domains: {', '.join(rule.domains)}")
        print(f"    scopes: {scopes}")
        print(f"    why: {rule.rationale}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    output = args.format or ("json" if args.json else "human")
    paths = args.paths or _default_paths()
    try:
        report = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro.lint: no such path: {exc}", file=sys.stderr)
        return 2
    if output == "json":
        print(report.to_json())
    elif output == "sarif":
        print(report.to_sarif(all_rules()))
    else:
        print(report.format_human())
    return 0 if report.clean else 1
