"""The protocol-conformance checker (CONF001-CONF005).

Four hand-maintained registries price, encode, validate and declare the
protocol surface -- ``MESSAGE_COSTS`` in ``obs/cost_model.py``, the
codec tag set in ``live/net/codec.py``, ``EVENT_TYPES`` in
``obs/events.py``, ``_PROBES`` in ``obs/claims.py`` -- plus the human
kind->category table in ``docs/PROTOCOLS.md``.  Each can silently drift
from the code that uses it: an unpriced kind falls back to
``control@64B`` without a signal, a one-sided codec tag fails only on
the first real frame, a schemaless event ships unvalidated, an unknown
claim id raises at report time, an undocumented kind misleads readers.

These rules extract every *use* from the AST (kinds constructed or
charged, tags encoded vs decoded, events emitted, claim ids produced)
and cross-check them against the registries.  Each rule silently skips
when its anchor registry module is not in the scanned tree, so fixture
trees for unrelated rules stay clean.

The runtime twin of CONF001 is ``CostLedger.charge``'s ``unpriced``
counter + one-shot warning event -- the static rule catches the drift
at lint time, the ledger catches dynamically-computed kinds the AST
cannot see.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.analyses.async_races import finding_at
from repro.lint.engine import Finding, ProjectRule, register
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules import dotted_name

COST_MODEL_REL = "obs/cost_model.py"
EVENTS_REL = "obs/events.py"
CLAIMS_REL = "obs/claims.py"
CODEC_REL = "live/net/codec.py"
PROTOCOLS_DOC = "docs/PROTOCOLS.md"

#: ``| `kind` | category | ...`` rows of the PROTOCOLS.md cost tables.
_DOC_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*([A-Za-z-]+)\s*\|")


def _top_level_assign(tree: ast.Module, name: str) -> Optional[ast.expr]:
    """The value expression of a module-level ``name = ...`` assignment."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return node.value
    return None


def _string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (category constants)."""
    constants: Dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[node.targets[0].id] = node.value.value
    return constants


def message_costs(module: ModuleInfo) -> Dict[str, Tuple[Optional[str], int]]:
    """``MESSAGE_COSTS`` parsed from the AST: kind -> (category, line)."""
    value = _top_level_assign(module.tree, "MESSAGE_COSTS")
    if not isinstance(value, ast.Dict):
        return {}
    constants = _string_constants(module.tree)
    costs: Dict[str, Tuple[Optional[str], int]] = {}
    for key, entry in zip(value.keys, value.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        category: Optional[str] = None
        if isinstance(entry, ast.Tuple) and entry.elts:
            first = entry.elts[0]
            if isinstance(first, ast.Name):
                category = constants.get(first.id)
            elif isinstance(first, ast.Constant) and isinstance(first.value, str):
                category = first.value
        costs[key.value] = (category, key.lineno)
    return costs


@register
class UnpricedMessageKind(ProjectRule):
    id = "CONF001"
    title = "message kind constructed/charged but missing from MESSAGE_COSTS"
    rationale = (
        "Every kind either layer emits must map to one ledger category at "
        "a documented byte estimate (PROTOCOLS.md cost tables); an "
        "unlisted kind silently falls back to control@64B and corrupts "
        "the C11 maintenance-bandwidth curves the observatory gates on.  "
        "The CostLedger's `unpriced` counter is this rule's runtime twin."
    )
    scopes = ("live/", "pastry/", "core/", "obs/cost_model.py")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        anchor = index.module(COST_MODEL_REL)
        if anchor is None:
            return
        priced = message_costs(anchor)
        if not priced:
            return
        for module in index.iter_modules(domain="src"):
            if module.rel == COST_MODEL_REL:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                kind = self._literal_kind(node)
                if kind is None or kind in priced:
                    continue
                yield finding_at(
                    self, module.path, node,
                    f"message kind {kind!r} is not priced in MESSAGE_COSTS "
                    "(obs/cost_model.py) -- it would silently charge as "
                    "control@64B; add it to the table and to "
                    "docs/PROTOCOLS.md",
                )

    @staticmethod
    def _literal_kind(call: ast.Call) -> Optional[str]:
        """The constant message kind this call emits, if statically known."""
        name = dotted_name(call.func)
        tail = (name or "").rsplit(".", 1)[-1]
        if tail == "Message":
            for keyword in call.keywords:
                if (
                    keyword.arg == "kind"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                ):
                    return keyword.value.value
            return None
        if tail == "count_message":
            for keyword in call.keywords:
                if (
                    keyword.arg == "kind"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                ):
                    return keyword.value.value
            if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
                call.args[0].value, str
            ):
                return call.args[0].value
        return None


@register
class OneSidedCodecTag(ProjectRule):
    id = "CONF002"
    title = "codec wire tag registered for only one of encode/decode"
    rationale = (
        "Every tagged object under the `__past__` key must round-trip: a "
        "tag only the encoder knows produces frames the peer rejects as "
        "'unknown wire tag' (a protocol-level poison), and a decode-only "
        "tag is dead code that masks a missing encoder.  The socket "
        "conformance suite only exercises kinds the tests happen to send; "
        "this rule checks the whole table."
    )
    scopes = (CODEC_REL,)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        module = index.module(CODEC_REL)
        if module is None:
            return
        encoded: Dict[str, ast.AST] = {}
        decoded: Dict[str, ast.AST] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                tag = self._dict_tag(node)
                if tag is not None:
                    encoded.setdefault(tag, node)
            elif (
                isinstance(node, ast.Compare)
                and isinstance(node.left, ast.Name)
                and node.left.id == "tag"
                and len(node.ops) == 1
                and isinstance(node.ops[0], ast.Eq)
                and isinstance(node.comparators[0], ast.Constant)
                and isinstance(node.comparators[0].value, str)
            ):
                decoded.setdefault(node.comparators[0].value, node)
        for tag in sorted(set(encoded) - set(decoded)):
            yield finding_at(
                self, module.path, encoded[tag],
                f"wire tag {tag!r} is encoded but never decoded -- peers "
                "reject these frames as 'unknown wire tag'; add the decode "
                "branch in _decode_obj",
            )
        for tag in sorted(set(decoded) - set(encoded)):
            yield finding_at(
                self, module.path, decoded[tag],
                f"wire tag {tag!r} is decoded but never encoded -- dead "
                "decode branch, or the encoder for this type is missing",
            )

    @staticmethod
    def _dict_tag(node: ast.Dict) -> Optional[str]:
        """The tag of a ``{TAG: "x", ...}`` encode-side literal."""
        for key, value in zip(node.keys, node.values):
            is_tag_key = (isinstance(key, ast.Name) and key.id == "TAG") or (
                isinstance(key, ast.Constant) and key.value == "__past__"
            )
            if (
                is_tag_key
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                return value.value
        return None


def _registered_event_names(events_module: ModuleInfo) -> Set[str]:
    """Class names listed in the EVENT_TYPES registration."""
    value = _top_level_assign(events_module.tree, "EVENT_TYPES")
    if value is None:
        return set()
    return {
        node.id
        for node in ast.walk(value)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _event_subclass_names(events_module: ModuleInfo) -> Set[str]:
    names = set()
    for node in events_module.tree.body:
        if isinstance(node, ast.ClassDef) and any(
            (isinstance(base, ast.Name) and base.id == "Event")
            or (isinstance(base, ast.Attribute) and base.attr == "Event")
            for base in node.bases
        ):
            names.add(node.name)
    return names


@register
class SchemalessEvent(ProjectRule):
    id = "CONF003"
    title = "event emitted or defined outside the EVENT_TYPES schema"
    rationale = (
        "validate_jsonl only checks kinds registered in EVENT_TYPES "
        "(obs/events.py), and _FIELD_TYPES is derived from the same "
        "registration -- an Event subclass defined elsewhere, or emitted "
        "while unregistered, ships records the CI schema smoke never "
        "validates.  OBS001 polices events.py itself; this rule closes "
        "the whole-program gap."
    )
    scopes = ("obs/", "live/", "pastry/", "core/", "faults/")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        events_module = index.module(EVENTS_REL)
        registered: Set[str] = set()
        event_classes: Set[str] = set()
        if events_module is not None:
            registered = _registered_event_names(events_module)
            event_classes = _event_subclass_names(events_module)
        for module in index.iter_modules(domain="src"):
            if module.rel == EVENTS_REL:
                continue
            local_events: Set[str] = set()
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                for base in node.bases:
                    resolved = module.imports.resolve(dotted_name(base))
                    if resolved is not None and (
                        resolved == "repro.obs.events.Event"
                        or resolved.endswith("obs.events.Event")
                    ):
                        local_events.add(node.name)
                        yield finding_at(
                            self, module.path, node,
                            f"event class {node.name} is defined outside "
                            "obs/events.py -- it cannot be registered in "
                            "EVENT_TYPES, so its records skip schema "
                            "validation; move it into obs/events.py",
                        )
                        break
            if events_module is None:
                continue
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"emit", "publish"}
                    and node.args
                    and isinstance(node.args[0], ast.Call)
                ):
                    continue
                ctor = (dotted_name(node.args[0].func) or "").rsplit(".", 1)[-1]
                if ctor in event_classes and ctor not in registered:
                    yield finding_at(
                        self, module.path, node,
                        f"event {ctor} is emitted but not registered in "
                        "EVENT_TYPES -- its records skip JSONL schema "
                        "validation",
                    )


@register
class UndeclaredClaimId(ProjectRule):
    id = "CONF004"
    title = "claim id produced but not declared in obs/claims.py"
    rationale = (
        "evaluate_claims raises KeyError on an unknown claim id -- at "
        "*report* time, hours after the chaos or scale run that produced "
        "the artifact.  Every literal claim id a report or driver emits "
        "must exist in _PROBES, so the failure moves from the observatory "
        "to the lint gate."
    )
    scopes = ("obs/", "faults/", "cli.py")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        claims_module = index.module(CLAIMS_REL)
        if claims_module is None:
            return
        probes = _top_level_assign(claims_module.tree, "_PROBES")
        if not isinstance(probes, ast.Dict):
            return
        declared = {
            key.value
            for key in probes.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        if not declared:
            return
        for module in index.iter_modules(domain="src"):
            if module.rel == CLAIMS_REL:
                continue
            for claim, node in self._produced_claims(module.tree):
                if claim in declared:
                    continue
                yield finding_at(
                    self, module.path, node,
                    f"claim id {claim!r} is not declared in _PROBES "
                    "(obs/claims.py) -- evaluate_claims will raise at "
                    "report time",
                )

    @staticmethod
    def _produced_claims(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
        def literal_ids(value: ast.expr) -> Iterator[Tuple[str, ast.AST]]:
            if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        yield element.value, element

        for node in ast.walk(tree):
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == "claims"
                    ):
                        yield from literal_ids(value)
            elif isinstance(node, ast.Call):
                tail = (dotted_name(node.func) or "").rsplit(".", 1)[-1]
                if tail != "evaluate_claims":
                    continue
                for keyword in node.keywords:
                    if keyword.arg == "claims":
                        yield from literal_ids(keyword.value)
                if len(node.args) >= 3:
                    yield from literal_ids(node.args[2])


@register
class ProtocolsTableDrift(ProjectRule):
    id = "CONF005"
    title = "docs/PROTOCOLS.md cost table out of sync with MESSAGE_COSTS"
    rationale = (
        "The kind->category tables in docs/PROTOCOLS.md promise to mirror "
        "MESSAGE_COSTS; a row that drifts (missing, extra, or "
        "recategorised) turns the documented cost taxonomy into fiction "
        "exactly where operators audit bandwidth.  The note in "
        "PROTOCOLS.md saying the table is machine-checked refers to this "
        "rule."
    )
    scopes = ("obs/cost_model.py",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        anchor = index.module(COST_MODEL_REL)
        if anchor is None:
            return
        priced = message_costs(anchor)
        if not priced:
            return
        doc = index.doc_file(PROTOCOLS_DOC)
        if doc is None:
            return
        doc_path = self._reported_path(doc)
        documented: Dict[str, Tuple[str, int]] = {}
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _DOC_ROW_RE.match(line.strip())
            if match is None:
                continue
            documented.setdefault(match.group(1), (match.group(2), lineno))
        for kind in sorted(set(priced) - set(documented)):
            yield Finding(
                rule=self.id,
                path=anchor.path,
                line=priced[kind][1],
                col=1,
                message=(
                    f"kind {kind!r} is priced in MESSAGE_COSTS but missing "
                    f"from the {PROTOCOLS_DOC} cost table -- document it"
                ),
            )
        for kind in sorted(set(documented) - set(priced)):
            yield Finding(
                rule=self.id,
                path=doc_path,
                line=documented[kind][1],
                col=1,
                message=(
                    f"kind {kind!r} is documented in the cost table but "
                    "missing from MESSAGE_COSTS -- price it or drop the row"
                ),
            )
        for kind in sorted(set(documented) & set(priced)):
            doc_category, doc_line = documented[kind]
            cost_category = priced[kind][0]
            if cost_category is not None and doc_category != cost_category:
                yield Finding(
                    rule=self.id,
                    path=doc_path,
                    line=doc_line,
                    col=1,
                    message=(
                        f"kind {kind!r} is documented as category "
                        f"{doc_category!r} but MESSAGE_COSTS prices it as "
                        f"{cost_category!r}"
                    ),
                )

    @staticmethod
    def _reported_path(doc: Path) -> str:
        try:
            return doc.relative_to(Path.cwd()).as_posix()
        except ValueError:
            return doc.as_posix()
