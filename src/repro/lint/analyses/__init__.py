"""Whole-program analyses built on :class:`~repro.lint.index.ProjectIndex`.

Two rule families live here, both registered in the same
:data:`~repro.lint.engine.RULES` registry as the per-file rules:

* :mod:`repro.lint.analyses.async_races` -- the async interleaving
  detector for ``live/`` and ``live/net/`` (ASYNC101-ASYNC104), which
  reconstructs the two PR-8 pool races (retire-during-startup and the
  stranded-``ready``-waiter) as machine-checkable patterns;
* :mod:`repro.lint.analyses.conformance` -- the protocol-conformance
  checker (CONF001-CONF005), cross-checking message kinds, codec tags,
  event schemas, claim ids and the ``docs/PROTOCOLS.md`` table against
  the registries that price, encode, validate and declare them.

Importing this package registers every analysis (the ``all_rules()``
side-effect contract).
"""

from repro.lint.analyses import async_races, conformance  # noqa: F401
