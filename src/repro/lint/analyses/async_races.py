"""The async interleaving detector (ASYNC101-ASYNC104).

Every rule here targets ``live/`` and ``live/net/`` -- the only layers
that run on a real event loop -- and encodes an interleaving bug class
this repo has actually hit.  The two PR-8 pool races are the regression
anchors:

* **retire-during-startup** (``NodeEndpoint.start`` committing
  ``self._server`` after an await without re-checking ``self.closed``)
  is the ASYNC101 shape;
* the **stranded-``ready``-waiter** (``NodeEndpoint.aclose`` closing
  without ``self.ready.set()``, leaving ``resolve()`` parked forever)
  is the ASYNC104 shape.

The analyses are deliberately narrow -- plain ``self.attr`` flag
attributes, directly stored task handles, constructor-typed locks and
events -- so a finding is almost always a real interleaving window.
The rare deliberate exception carries a justified inline suppression,
same as every other rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.engine import Finding, ProjectRule, register
from repro.lint.index import (
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
    self_attr_loads,
    self_attr_target,
)
from repro.lint.rules import dotted_name

#: The event-loop layers the detector sweeps.
LIVE_PREFIX = "live/"

#: Method names treated as shutdown entry points; anything reachable
#: from them through ``self.m()`` calls is "on the close path".
CLOSE_ENTRY_POINTS: Tuple[str, ...] = ("aclose", "close", "stop", "shutdown")


def finding_at(rule, path: str, node: ast.AST, message: str) -> Finding:
    """A Finding anchored at an AST node of an indexed module."""
    return Finding(
        rule=rule.id,
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


def _has_await(node: ast.AST) -> bool:
    """Does *node* directly contain an await (nested defs excluded)?"""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(current, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
    )


def _self_writes(stmt: ast.stmt) -> List[str]:
    """Attributes of ``self`` this (simple) statement assigns."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
            else:
                targets.append(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets.append(stmt.target)
    writes = []
    for target in targets:
        attr = self_attr_target(target)
        if attr is not None:
            writes.append(attr)
    return writes


@register
class StaleCheckAcrossAwait(ProjectRule):
    id = "ASYNC101"
    title = "check-then-act on a shared attribute across an await point"
    rationale = (
        "Between an `if self.x:` guard and the state change it protects, "
        "every await is a scheduling point where another coroutine can "
        "mutate self.x -- the PR-8 retire-during-startup race was exactly "
        "this shape (NodeEndpoint.start committing self._server after "
        "`await start_server` without re-checking self.closed, resurrecting "
        "a listener aclose had already torn down).  Re-check the guard "
        "after the last await before committing."
    )
    scopes = (LIVE_PREFIX,)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for module, cls in index.iter_classes(domain="src", prefix=LIVE_PREFIX):
            for name in sorted(cls.methods):
                method = cls.methods[name]
                if not method.is_async or name == "__init__":
                    continue
                # Attributes some *other* method reassigns: only those can
                # change under this coroutine's feet mid-await.
                shared = {
                    attr
                    for attr, writers in cls.attr_writes.items()
                    if writers - {name}
                }
                if not shared:
                    continue
                yield from self._scan(
                    method.node.body, {}, {}, module, cls, name, shared
                )

    def _scan(
        self,
        stmts: List[ast.stmt],
        armed: Dict[str, int],
        stale: Dict[str, int],
        module: ModuleInfo,
        cls: ClassInfo,
        method: str,
        shared: Set[str],
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                for attr in sorted(self_attr_loads(stmt.test) & shared):
                    armed[attr] = stmt.lineno
                    stale.pop(attr, None)
                for branch in (stmt.body, stmt.orelse):
                    # A terminating branch never reaches the fall-through
                    # code, so its awaits do not stale the guard for it.
                    if branch and not _terminates(branch):
                        yield from self._scan(
                            branch, armed, stale, module, cls, method, shared
                        )
                continue
            if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
                if isinstance(stmt, ast.AsyncFor):
                    for attr, line in armed.items():
                        stale.setdefault(attr, stmt.lineno)
                for branch in (stmt.body, stmt.orelse):
                    if branch:
                        yield from self._scan(
                            branch, armed, stale, module, cls, method, shared
                        )
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if isinstance(stmt, ast.AsyncWith):
                    for attr, line in armed.items():
                        stale.setdefault(attr, stmt.lineno)
                yield from self._scan(
                    stmt.body, armed, stale, module, cls, method, shared
                )
                continue
            if isinstance(stmt, ast.Try):
                for branch in [stmt.body, stmt.orelse, stmt.finalbody] + [
                    handler.body for handler in stmt.handlers
                ]:
                    if branch:
                        yield from self._scan(
                            branch, armed, stale, module, cls, method, shared
                        )
                continue
            # Simple statement: an await stales every armed guard, then a
            # store to self.* with a stale guard is the race window.
            if _has_await(stmt):
                for attr, line in armed.items():
                    stale.setdefault(attr, stmt.lineno)
            if _self_writes(stmt) and stale:
                for attr in sorted(stale):
                    writers = ", ".join(
                        sorted(cls.attr_writes.get(attr, ()) - {method})
                    )
                    yield finding_at(
                        self, module.path, stmt,
                        f"self.{attr} was checked on line {armed[attr]} but "
                        f"the await on line {stale[attr]} can interleave "
                        f"{writers or 'another coroutine'} mutating it -- "
                        f"re-check self.{attr} after the await before this "
                        "state change",
                    )
                    armed.pop(attr, None)
                stale.clear()


@register
class TaskWithoutCancellationPath(ProjectRule):
    id = "ASYNC102"
    title = "task handle with no cancellation path from aclose/stop"
    rationale = (
        "A task stored on self but never cancelled or awaited by any "
        "method reachable from aclose/close/stop outlives its owner: "
        "shutdown returns while the task still runs, and its exceptions "
        "land after the harness stopped listening.  Every pool/transport "
        "task here (PeerLink._task, NodePool._starters, "
        "SocketTransport._retirements) is cancelled or awaited on the "
        "close path -- new tasks must be too."
    )
    scopes = (LIVE_PREFIX,)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for module, cls in index.iter_classes(domain="src", prefix=LIVE_PREFIX):
            task_sites = self._task_attributes(cls)
            if not task_sites:
                continue
            close_methods = cls.close_path_methods(CLOSE_ENTRY_POINTS)
            if not close_methods:
                yield finding_at(
                    self, module.path, cls.node,
                    f"class {cls.name} stores task handles "
                    f"({', '.join(sorted(task_sites))}) but defines no "
                    "aclose/close/stop to cancel them on shutdown",
                )
                continue
            handled: Set[str] = set()
            for fn in close_methods:
                mentions = self_attr_loads(fn.node)
                cancels = any(
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "cancel"
                    for node in ast.walk(fn.node)
                )
                awaits = bool(fn.awaits)
                if cancels or awaits:
                    handled.update(mentions & set(task_sites))
            for attr in sorted(task_sites):
                if attr in handled:
                    continue
                yield finding_at(
                    self, module.path, task_sites[attr],
                    f"task handle self.{attr} is never cancelled or awaited "
                    f"by any method reachable from "
                    f"{'/'.join(n for n in CLOSE_ENTRY_POINTS if n in cls.methods)}"
                    " -- shutdown leaks the running task",
                )

    @staticmethod
    def _task_attributes(cls: ClassInfo) -> Dict[str, ast.AST]:
        """self attributes holding task handles: direct assignment, or a
        local create_task result pushed into a self container."""
        sites: Dict[str, ast.AST] = {}
        for name in sorted(cls.methods):
            fn = cls.methods[name]
            task_locals: Set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    tail = (dotted_name(node.value.func) or "").rsplit(".", 1)[-1]
                    if tail not in {"create_task", "ensure_future"}:
                        continue
                    for target in node.targets:
                        attr = self_attr_target(target)
                        if attr is not None:
                            sites.setdefault(attr, node)
                        elif isinstance(target, ast.Name):
                            task_locals.add(target.id)
            if not task_locals:
                continue
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"add", "append"}
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in task_locals
                ):
                    attr = self_attr_target(node.func.value)
                    if attr is not None:
                        sites.setdefault(attr, node)
        return sites


@register
class LockHeldAcrossCallbackAwait(ProjectRule):
    id = "ASYNC103"
    title = "lock held across an await into a stored user callback"
    rationale = (
        "Awaiting a caller-supplied callback while holding an "
        "asyncio.Lock/Condition/Semaphore hands the lock's critical "
        "section to code the class does not control: a callback that "
        "(re)enters the same object deadlocks, and a slow one extends "
        "the lock hold over arbitrary protocol traffic.  Call callbacks "
        "after releasing, or snapshot state and await outside the lock."
    )
    scopes = (LIVE_PREFIX,)

    _LOCK_CTORS = {
        "asyncio.Lock", "asyncio.Condition",
        "asyncio.Semaphore", "asyncio.BoundedSemaphore",
    }

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for module, cls in index.iter_classes(domain="src", prefix=LIVE_PREFIX):
            lock_attrs = {
                attr for attr, ctor in cls.attr_types.items()
                if ctor in self._LOCK_CTORS
            }
            if not lock_attrs:
                continue
            for name in sorted(cls.methods):
                fn = cls.methods[name]
                if not fn.is_async:
                    continue
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.AsyncWith):
                        continue
                    held = {
                        attr
                        for item in node.items
                        for attr in [self_attr_target(item.context_expr)]
                        if attr in lock_attrs
                    }
                    if not held:
                        continue
                    for inner in ast.walk(node):
                        if not (
                            isinstance(inner, ast.Await)
                            and isinstance(inner.value, ast.Call)
                        ):
                            continue
                        callee = self_attr_target(inner.value.func)
                        if callee is None or callee not in cls.callback_attrs:
                            continue
                        yield finding_at(
                            self, module.path, inner,
                            f"await self.{callee}(...) runs a stored user "
                            f"callback while holding self."
                            f"{'/'.join(sorted(held))} -- release the lock "
                            "before awaiting foreign code",
                        )


@register
class StrandedWaiter(ProjectRule):
    id = "ASYNC104"
    title = "Event/future waiter with no setter on the close path"
    rationale = (
        "An asyncio.Event (or stored future) that coroutines await must "
        "be set on *every* exit, including teardown: the PR-8 stranded-"
        "ready-waiter race was NodeEndpoint.aclose closing the endpoint "
        "without self.ready.set(), parking NodePool.resolve forever on "
        "an event nobody would ever fire.  aclose/close/stop must wake "
        "waiters (who then re-check state and fail typed)."
    )
    scopes = (LIVE_PREFIX,)

    _FUTURE_SETTERS = {"set_result", "set_exception", "cancel"}

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        event_waits, future_waits = self._collect_waiters(index)
        for module, cls in index.iter_classes(domain="src", prefix=LIVE_PREFIX):
            event_attrs = {
                attr for attr, ctor in cls.attr_types.items()
                if ctor == "asyncio.Event"
            }
            future_attrs = {
                attr for attr, ctor in cls.attr_types.items()
                if ctor.rsplit(".", 1)[-1] == "create_future"
            }
            if not event_attrs and not future_attrs:
                continue
            close_methods = cls.close_path_methods(CLOSE_ENTRY_POINTS)
            if not close_methods:
                continue
            for attr in sorted(event_attrs):
                waiter = event_waits.get(attr)
                if waiter is None:
                    continue
                if self._close_path_calls(close_methods, attr, {"set"}):
                    continue
                yield finding_at(
                    self, module.path, close_methods[0].node,
                    f"asyncio.Event self.{attr} is awaited at "
                    f"{waiter[0]}:{waiter[1]} but no close-path method of "
                    f"{cls.name} calls self.{attr}.set() -- aclose strands "
                    "the waiter",
                )
            for attr in sorted(future_attrs):
                waiter = future_waits.get(attr)
                if waiter is None:
                    continue
                if self._close_path_calls(
                    close_methods, attr, self._FUTURE_SETTERS
                ):
                    continue
                yield finding_at(
                    self, module.path, close_methods[0].node,
                    f"future self.{attr} is awaited at "
                    f"{waiter[0]}:{waiter[1]} but no close-path method of "
                    f"{cls.name} resolves or cancels it -- aclose strands "
                    "the waiter",
                )

    @staticmethod
    def _collect_waiters(
        index: ProjectIndex,
    ) -> Tuple[Dict[str, Tuple[str, int]], Dict[str, Tuple[str, int]]]:
        """Attribute names awaited anywhere in the project.

        ``<x>.attr.wait()`` marks *attr* as an event waiter;
        ``await <x>.attr`` marks it as a future waiter.  Matching is by
        attribute name -- the index does not do points-to analysis, and
        name-level matching is exactly what catches the cross-module
        pool race (resolve() waiting on an endpoint's ``ready``).
        """
        events: Dict[str, Tuple[str, int]] = {}
        futures: Dict[str, Tuple[str, int]] = {}
        for module in index.iter_modules(domain="src"):
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Await):
                    continue
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "wait"
                    and isinstance(value.func.value, ast.Attribute)
                ):
                    attr = value.func.value.attr
                    events.setdefault(attr, (module.path, node.lineno))
                elif isinstance(value, ast.Attribute):
                    futures.setdefault(value.attr, (module.path, node.lineno))
        return events, futures

    @staticmethod
    def _close_path_calls(close_methods, attr: str, setters: Set[str]) -> bool:
        for fn in close_methods:
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in setters
                    and self_attr_target(node.func.value) == attr
                ):
                    return True
        return False
