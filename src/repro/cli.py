"""Command-line interface: ``python -m repro <command>``.

Small, self-contained demos and measurements runnable without writing
any code -- the kind of smoke tooling a downstream user reaches for
first:

* ``demo``        -- build a network, insert/lookup/reclaim, narrated;
* ``route``       -- build an overlay and trace one routed message
                     (``--json`` emits the span tree);
* ``hops``        -- the E1 measurement at chosen sizes;
* ``fill``        -- the E9 insert-to-exhaustion measurement, compact;
* ``churn``       -- the E15 availability measurement for one k;
* ``metrics``     -- drive a small deployment and dump the metrics
                     registry snapshot (optionally the event log too);
* ``chaos``       -- one deterministic fault-injection run with the
                     invariant checker sweeping after every event
                     (exits nonzero on any violation).

Every command takes ``--seed`` so results are reproducible.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    build_pastry,
    expected_hop_bound,
    fill_network,
    make_storage_network,
    sample_lookups,
)
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.churn_sim import ChurnSimulation
from repro.core.errors import InsertRejectedError
from repro.core.files import RealData, SyntheticData
from repro.core.network import PastNetwork
from repro.core.storage_manager import StoragePolicy
from repro.obs.recorder import Observer
from repro.sim.rng import RngRegistry
from repro.workloads.capacities import bounded_normal_capacities
from repro.workloads.filesizes import TraceLikeSizes


def _cmd_demo(args: argparse.Namespace) -> int:
    network = PastNetwork(rngs=RngRegistry(args.seed))
    network.build(args.nodes, method="join", capacity_fn=lambda r: 1_000_000)
    print(f"built a {network.pastry.live_count()}-node PAST network")
    alice = network.create_client(usage_quota=100_000)
    handle = alice.insert("demo.txt", RealData(b"stored by the repro CLI"), 3)
    print(f"inserted fileId {handle.file_id:040x} "
          f"({len(handle.receipts)} replicas, quota used {alice.card.quota_used})")
    bob = network.create_client(usage_quota=0)
    result = bob.lookup_verbose(handle.file_id)
    print(f"lookup: {result.data.to_bytes()!r} in {result.hops} hops "
          f"from a {result.response.source}")
    credited = alice.reclaim(handle)
    print(f"reclaimed; {credited} bytes credited back")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    observer = Observer()
    network = build_pastry(args.nodes, seed=args.seed, method="oracle", observer=observer)
    rng = random.Random(args.seed)
    key = network.space.random_id(rng)
    origin = rng.choice(network.live_ids())
    result = network.route(key, origin, trace=True)
    if args.json:
        document = {
            "key": key,
            "origin": origin,
            "delivered": result.delivered,
            "reason": result.reason,
            "hops": result.hops,
            "span": result.span.to_dict(),
        }
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    fmt = network.space.format_id
    # The span's hop children carry the rule that fired at decision time,
    # one per path element.
    rules = [child.attributes["rule"] for child in result.span.children]
    print(f"key    {fmt(key)}")
    print(f"origin {fmt(origin)}")
    for index, hop in enumerate(result.path):
        prefix = network.space.shared_prefix_length(hop, key)
        marker = "->" if index else "  "
        rule = f"  [{rules[index]}]" if index < len(rules) else ""
        print(f" {marker} {fmt(hop)}  (shared prefix {prefix} digits){rule}")
    print(f"delivered at the root in {result.hops} hops "
          f"(bound {expected_hop_bound(args.nodes, network.space.b)})")
    return 0


def _cmd_hops(args: argparse.Namespace) -> int:
    rows = []
    for n in args.sizes:
        network = build_pastry(n, seed=args.seed + n, method="oracle")
        rng = random.Random(n)
        hops = []
        for key, origin in sample_lookups(network, args.lookups, rng):
            result = network.route(key, origin)
            hops.append(result.hops)
        rows.append([n, round(mean(hops), 3), expected_hop_bound(n, 4)])
    print(format_table(["N", "mean hops", "bound"], rows,
                       title="routing hops vs N"))
    return 0


def _cmd_fill(args: argparse.Namespace) -> int:
    network = make_storage_network(
        args.nodes, seed=args.seed, policy=StoragePolicy(),
        capacity_fn=bounded_normal_capacities(args.capacity),
        cache_policy="none",
    )
    report = fill_network(
        network, TraceLikeSizes(), random.Random(args.seed), replication_factor=3
    )
    utilization = network.utilization()["global_utilization"]
    at95 = report.reject_ratio_at_utilization(0.95)
    print(f"inserted {report.inserted}, rejected {report.rejected}")
    print(f"final utilization {100 * utilization:.1f}%")
    print("reject ratio at 95% utilization: "
          + (f"{100 * at95:.1f}%" if at95 is not None else "never reached"))
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    network = PastNetwork(rngs=RngRegistry(args.seed))
    network.build(args.nodes, method="join", capacity_fn=lambda r: 1 << 22)
    client = network.create_client(usage_quota=1 << 40)
    handles = [
        client.insert(f"f{i}", SyntheticData(i, 1500), replication_factor=args.k)
        for i in range(args.files)
    ]
    simulation = ChurnSimulation(
        network, handles, arrival_rate=args.rate, departure_rate=args.rate,
        maintenance_interval=40.0, lookup_interval=1.0,
    )
    report = simulation.run(args.duration)
    print(f"k={args.k}: availability {100 * report.availability:.2f}%, "
          f"{report.files_lost} files lost, {report.departures} departures, "
          f"{report.replicas_restored} replicas restored")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Drive a small instrumented deployment, then dump the registry.

    The workload deliberately touches every instrumented subsystem:
    join-built overlay, inserts (some of which divert or reject at small
    capacities), routed lookups (cache hits along the path), one node
    failure with leaf-set repair, and a reclaim.
    """
    from repro.pastry.failure import notify_leafset_of_failure

    observer = Observer()
    network = PastNetwork(rngs=RngRegistry(args.seed), observer=observer)
    network.build(args.nodes, method="join", capacity_fn=lambda r: args.capacity)
    client = network.create_client(usage_quota=1 << 40)
    handles = []
    for serial in range(args.files):
        data = SyntheticData(seed=serial, size=2_000 + (serial % 7) * 500)
        try:
            handles.append(client.insert(f"metrics-{serial}", data, 3))
        except InsertRejectedError:
            pass
    rng = random.Random(args.seed + 1)
    for key, origin in sample_lookups(network.pastry, args.routes, rng):
        network.pastry.route(key, origin)
    for handle in handles:
        client.lookup(handle.file_id)
    if handles:
        client.reclaim(handles[0])
    live = network.pastry.live_ids()
    if len(live) > 2:
        failed = live[len(live) // 2]
        network.pastry.mark_failed(failed)
        notify_leafset_of_failure(network.pastry, failed)
    print(json.dumps(observer.metrics.snapshot(), sort_keys=True, indent=2))
    if args.events:
        observer.bus.write_jsonl(args.events)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    report = run_chaos(
        seed=args.seed,
        nodes=args.nodes,
        files=args.files,
        duration=args.duration,
        events_path=args.events,
    )
    print(json.dumps(report, sort_keys=True, indent=2))
    # CI greps this exit code: any invariant violation fails the run.
    return 1 if report["violations"] else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PAST (HotOS 2001) reproduction -- demos and measurements",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="insert/lookup/reclaim walkthrough")
    demo.add_argument("--nodes", type=int, default=64)
    demo.set_defaults(handler=_cmd_demo)

    route = commands.add_parser("route", help="trace one routed message")
    route.add_argument("--nodes", type=int, default=500)
    route.add_argument("--json", action="store_true",
                       help="emit the route's span tree as JSON")
    route.set_defaults(handler=_cmd_route)

    hops = commands.add_parser("hops", help="mean routing hops vs N")
    hops.add_argument("--sizes", type=int, nargs="+", default=[256, 1024, 4096])
    hops.add_argument("--lookups", type=int, default=500)
    hops.set_defaults(handler=_cmd_hops)

    fill = commands.add_parser("fill", help="storage utilization to exhaustion")
    fill.add_argument("--nodes", type=int, default=60)
    fill.add_argument("--capacity", type=int, default=8_000_000,
                      help="mean node capacity in bytes")
    fill.set_defaults(handler=_cmd_fill)

    churn = commands.add_parser("churn", help="availability under churn")
    churn.add_argument("--nodes", type=int, default=50)
    churn.add_argument("--files", type=int, default=25)
    churn.add_argument("--k", type=int, default=3)
    churn.add_argument("--rate", type=float, default=0.06)
    churn.add_argument("--duration", type=float, default=300.0)
    churn.set_defaults(handler=_cmd_churn)

    metrics = commands.add_parser(
        "metrics", help="drive a small deployment, dump the metrics registry"
    )
    metrics.add_argument("--nodes", type=int, default=24)
    metrics.add_argument("--files", type=int, default=12)
    metrics.add_argument("--routes", type=int, default=40)
    metrics.add_argument("--capacity", type=int, default=200_000,
                         help="per-node capacity in bytes")
    metrics.add_argument("--events", type=str, default=None,
                         help="also write the event log (JSONL) to this path")
    metrics.set_defaults(handler=_cmd_metrics)

    chaos = commands.add_parser(
        "chaos", help="deterministic fault-injection run with invariant sweeps"
    )
    # Also accepted after the subcommand (``repro chaos --seed 7``);
    # SUPPRESS keeps the global --seed value when it is not repeated.
    chaos.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    chaos.add_argument("--nodes", type=int, default=30)
    chaos.add_argument("--files", type=int, default=12)
    chaos.add_argument("--duration", type=float, default=200.0)
    chaos.add_argument("--events", type=str, nargs="?", const="chaos-events.jsonl",
                       default=None,
                       help="write the event log (JSONL) to this path "
                            "(default chaos-events.jsonl when given bare)")
    chaos.set_defaults(handler=_cmd_chaos)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
