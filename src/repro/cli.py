"""Command-line interface: ``python -m repro <command>``.

Small, self-contained demos and measurements runnable without writing
any code -- the kind of smoke tooling a downstream user reaches for
first:

* ``demo``        -- build a network, insert/lookup/reclaim, narrated;
* ``route``       -- build an overlay and trace one routed message
                     (``--json`` emits the span tree);
* ``hops``        -- the E1 measurement at chosen sizes;
* ``fill``        -- the E9 insert-to-exhaustion measurement, compact;
* ``churn``       -- the E15 availability measurement for one k;
* ``metrics``     -- drive a small deployment and dump the metrics
                     registry snapshot (optionally the event log too);
* ``chaos``       -- one deterministic fault-injection run with the
                     invariant checker sweeping after every event
                     (exits nonzero on any violation);
* ``trace``       -- distributed trace of one live insert + lookup:
                     per-operation span trees (hops, fan-out, retries)
                     and the top-N slow-op log;
* ``deploy``      -- large-scale bare overlay (oracle cold start +
                     incremental churn maintenance) probed against
                     claims C1 and C2 (exits nonzero on failure);
* ``scale-curves`` -- sweep overlay sizes, fit log/power scaling
                     curves for hops, per-node state, join cost and
                     maintenance bandwidth, and gate on the asymptotic
                     claims (exits nonzero on regression).

Every command takes ``--seed`` so results are reproducible.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    build_pastry,
    expected_hop_bound,
    fill_network,
    make_storage_network,
    sample_lookups,
)
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.churn_sim import ChurnSimulation
from repro.core.errors import InsertRejectedError
from repro.core.files import RealData, SyntheticData
from repro.core.network import PastNetwork
from repro.core.storage_manager import StoragePolicy
from repro.obs.recorder import Observer
from repro.sim.rng import RngRegistry
from repro.workloads.capacities import bounded_normal_capacities
from repro.workloads.filesizes import TraceLikeSizes


def _cmd_demo(args: argparse.Namespace) -> int:
    network = PastNetwork(rngs=RngRegistry(args.seed))
    network.build(args.nodes, method="join", capacity_fn=lambda r: 1_000_000)
    print(f"built a {network.pastry.live_count()}-node PAST network")
    alice = network.create_client(usage_quota=100_000)
    handle = alice.insert("demo.txt", RealData(b"stored by the repro CLI"), 3)
    print(f"inserted fileId {handle.file_id:040x} "
          f"({len(handle.receipts)} replicas, quota used {alice.card.quota_used})")
    bob = network.create_client(usage_quota=0)
    result = bob.lookup_verbose(handle.file_id)
    print(f"lookup: {result.data.to_bytes()!r} in {result.hops} hops "
          f"from a {result.response.source}")
    credited = alice.reclaim(handle)
    print(f"reclaimed; {credited} bytes credited back")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    observer = Observer()
    network = build_pastry(args.nodes, seed=args.seed, method="oracle", observer=observer)
    rng = random.Random(args.seed)
    key = network.space.random_id(rng)
    origin = rng.choice(network.live_ids())
    result = network.route(key, origin, trace=True)
    if args.json:
        document = {
            "key": key,
            "origin": origin,
            "delivered": result.delivered,
            "reason": result.reason,
            "hops": result.hops,
            "span": result.span.to_dict(),
        }
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    fmt = network.space.format_id
    # The span's hop children carry the rule that fired at decision time,
    # one per path element.
    rules = [child.attributes["rule"] for child in result.span.children]
    print(f"key    {fmt(key)}")
    print(f"origin {fmt(origin)}")
    for index, hop in enumerate(result.path):
        prefix = network.space.shared_prefix_length(hop, key)
        marker = "->" if index else "  "
        rule = f"  [{rules[index]}]" if index < len(rules) else ""
        print(f" {marker} {fmt(hop)}  (shared prefix {prefix} digits){rule}")
    print(f"delivered at the root in {result.hops} hops "
          f"(bound {expected_hop_bound(args.nodes, network.space.b)})")
    return 0


def _cmd_hops(args: argparse.Namespace) -> int:
    rows = []
    for n in args.sizes:
        network = build_pastry(n, seed=args.seed + n, method="oracle")
        rng = random.Random(n)
        hops = []
        for key, origin in sample_lookups(network, args.lookups, rng):
            result = network.route(key, origin)
            hops.append(result.hops)
        rows.append([n, round(mean(hops), 3), expected_hop_bound(n, 4)])
    print(format_table(["N", "mean hops", "bound"], rows,
                       title="routing hops vs N"))
    return 0


def _cmd_fill(args: argparse.Namespace) -> int:
    network = make_storage_network(
        args.nodes, seed=args.seed, policy=StoragePolicy(),
        capacity_fn=bounded_normal_capacities(args.capacity),
        cache_policy="none",
    )
    report = fill_network(
        network, TraceLikeSizes(), random.Random(args.seed), replication_factor=3
    )
    utilization = network.utilization()["global_utilization"]
    at95 = report.reject_ratio_at_utilization(0.95)
    print(f"inserted {report.inserted}, rejected {report.rejected}")
    print(f"final utilization {100 * utilization:.1f}%")
    print("reject ratio at 95% utilization: "
          + (f"{100 * at95:.1f}%" if at95 is not None else "never reached"))
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    network = PastNetwork(rngs=RngRegistry(args.seed))
    network.build(args.nodes, method="join", capacity_fn=lambda r: 1 << 22)
    client = network.create_client(usage_quota=1 << 40)
    handles = [
        client.insert(f"f{i}", SyntheticData(i, 1500), replication_factor=args.k)
        for i in range(args.files)
    ]
    simulation = ChurnSimulation(
        network, handles, arrival_rate=args.rate, departure_rate=args.rate,
        maintenance_interval=40.0, lookup_interval=1.0,
    )
    report = simulation.run(args.duration)
    print(f"k={args.k}: availability {100 * report.availability:.2f}%, "
          f"{report.files_lost} files lost, {report.departures} departures, "
          f"{report.replicas_restored} replicas restored")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Drive a small instrumented deployment, then dump the registry.

    The workload deliberately touches every instrumented subsystem:
    join-built overlay, inserts (some of which divert or reject at small
    capacities), routed lookups (cache hits along the path), one node
    failure with leaf-set repair, and a reclaim.
    """
    from repro.pastry.failure import notify_leafset_of_failure

    observer = Observer()
    network = PastNetwork(rngs=RngRegistry(args.seed), observer=observer)
    network.build(args.nodes, method="join", capacity_fn=lambda r: args.capacity)
    client = network.create_client(usage_quota=1 << 40)
    handles = []
    for serial in range(args.files):
        data = SyntheticData(seed=serial, size=2_000 + (serial % 7) * 500)
        try:
            handles.append(client.insert(f"metrics-{serial}", data, 3))
        except InsertRejectedError:
            pass
    rng = random.Random(args.seed + 1)
    for key, origin in sample_lookups(network.pastry, args.routes, rng):
        network.pastry.route(key, origin)
    for handle in handles:
        client.lookup(handle.file_id)
    if handles:
        client.reclaim(handles[0])
    live = network.pastry.live_ids()
    if len(live) > 2:
        failed = live[len(live) // 2]
        network.pastry.mark_failed(failed)
        notify_leafset_of_failure(network.pastry, failed)
    print(json.dumps(observer.metrics.snapshot(), sort_keys=True, indent=2))
    if args.events:
        observer.bus.write_jsonl(args.events)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    report = run_chaos(
        seed=args.seed,
        nodes=args.nodes,
        files=args.files,
        duration=args.duration,
        events_path=args.events,
        traces_path=args.traces,
    )
    print(json.dumps(report, sort_keys=True, indent=2))
    # CI greps this exit code: any invariant violation fails the run.
    return 1 if report["violations"] else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One seeded live insert + lookup, traced end to end.

    Prints the assembled span tree per operation (routing hops, replica
    fan-out, en-route serves, retries) followed by the slow-op log --
    the top-N spans by logical duration.  ``--drop-rate`` puts the
    transport under a message-drop fault plan, so the trees show wire
    faults and the retry/reroute attempts they trigger.
    """
    import asyncio

    from repro.core.errors import DegradedError
    from repro.core.smartcard import make_uncertified_card
    from repro.faults.plan import FaultPlan
    from repro.live.storage import LiveStorageCluster

    async def drive() -> LiveStorageCluster:
        cluster = LiveStorageCluster(seed=args.seed)
        await cluster.start(args.nodes)
        if args.drop_rate > 0:
            # Installed after bootstrap: join traffic stays clean, the
            # traced operations run under fire.
            cluster.transport.faults = FaultPlan(
                seed=args.seed, drop_rate=args.drop_rate
            )
        rng = random.Random(args.seed)
        card = make_uncertified_card(
            rng, usage_quota=1 << 40, backend="insecure_fast"
        )
        data = SyntheticData(0, 1500)
        certificate = card.issue_file_certificate(
            "trace-demo", data, 3, salt=0, insertion_date=0
        )
        origins = cluster.live_ids()
        try:
            await cluster.insert(certificate, data, origin=origins[0])
            await cluster.lookup(certificate.file_id, origin=origins[-1])
        except DegradedError as degraded:
            print(f"operation degraded: {degraded}", file=sys.stderr)
        cluster.transport.faults = None
        await cluster.shutdown()
        return cluster

    cluster = asyncio.run(drive())
    collector = cluster.obs.traces
    if args.out:
        written = collector.write_jsonl(args.out)
        print(f"wrote {written} span records to {args.out}", file=sys.stderr)
    if args.json:
        document = {
            trace_id: collector.assemble(trace_id).to_dict()
            for trace_id in collector.trace_ids()
        }
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    for trace_id in collector.trace_ids():
        print(f"trace {trace_id}")
        print(collector.assemble(trace_id).render())
    print(f"slow-op log (top {args.top} spans by logical duration):")
    for record in collector.top_spans(args.top):
        print(f"  {record.duration:7.1f}  {record.name:<14} "
              f"trace {record.trace_id[:8]} span {record.span_id}")
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    """Deploy a large bare overlay and watch the scale claims.

    Oracle-builds ``--nodes`` nodes (the cold start), attaches the
    incremental oracle so subsequent churn is maintained in place,
    applies ``--churn`` random joins/failures, drives ``--lookups``
    routed lookups, then evaluates claims C1 (hop bound) and C2
    (per-node state bound) over the live census.  Exits nonzero if
    either claim fails -- this is the 100k-node smoke a deployment
    operator runs first.
    """
    import time

    from repro.obs.claims import evaluate_claims, record_overlay_census, to_json_dict
    from repro.pastry.network import PastryNetwork
    from repro.pastry.nodeid import IdSpace

    observer = Observer()
    space = IdSpace(b=args.b)
    network = PastryNetwork(
        space=space,
        rngs=RngRegistry(args.seed),
        leaf_capacity=args.leaf_capacity,
        observer=observer,
    )
    start = time.perf_counter()
    network.build(args.nodes, method="oracle")
    build_seconds = time.perf_counter() - start
    print(
        f"built {network.live_count()}-node overlay (oracle) "
        f"in {build_seconds:.1f}s",
        file=sys.stderr,
    )

    network.attach_incremental_oracle()
    rng = random.Random(args.seed + 1)
    joins = failures = 0
    start = time.perf_counter()
    for _ in range(args.churn):
        if rng.random() < 0.5 or network.live_count() <= args.nodes // 2:
            network.add_node()
            joins += 1
        else:
            live = network.live_ids()
            network.mark_failed(live[rng.randrange(len(live))])
            failures += 1
    churn_seconds = time.perf_counter() - start
    if args.churn:
        print(
            f"incremental maintenance: {joins} joins + {failures} failures "
            f"in {churn_seconds:.2f}s",
            file=sys.stderr,
        )

    live = network.live_ids()
    for _ in range(args.lookups):
        key = space.random_id(rng)
        network.route(key, live[rng.randrange(len(live))], category="lookup")
    record_overlay_census(network)
    params = {
        "final_node_count": network.live_count(),
        "bits_per_digit": space.b,
        "leaf_capacity": args.leaf_capacity,
        "neighborhood_capacity": network.neighborhood_capacity,
    }
    verdicts = evaluate_claims(
        observer.metrics.snapshot(), params, claims=["C1", "C2"]
    )
    if args.json:
        document = to_json_dict(verdicts, params)
        document["build_seconds"] = round(build_seconds, 3)
        document["churn_seconds"] = round(churn_seconds, 3)
        # What the deployment spent: per-category bytes plus the five
        # most expensive nodes under the wire-size cost model.
        document["ledger"] = observer.ledger.summary(top=5)
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        for verdict in verdicts:
            status = "PASS" if verdict.passed else "FAIL"
            print(f"{verdict.claim} {status}: {verdict.observed} "
                  f"(target: {verdict.target})")
    return 0 if all(verdict.passed for verdict in verdicts) else 1


def _cmd_scale_curves(args: argparse.Namespace) -> int:
    """Sweep overlay sizes and gate on the fitted scaling curves.

    Runs :func:`repro.obs.scaling.run_scale_curves` over ``--sizes``,
    prints the curve report (markdown by default, the full artifact with
    ``--json``), optionally writes both artifacts, then evaluates the
    asymptotic claims (C1-curve, C2-curve, C11) over the fitted
    exponents.  Exits nonzero when any curve claim fails -- the same
    regression gate ``repro.obs.report`` applies to the JSON artifact.
    """
    from repro.obs.claims import evaluate_claims
    from repro.obs.scaling import render_scale_markdown, run_scale_curves

    report = run_scale_curves(
        sizes=args.sizes,
        seed=args.seed,
        lookups=args.lookups,
        joins=args.joins,
        churn_duration=args.churn_duration,
        crashes=args.crashes,
        restarts=args.restarts,
    )
    verdicts = evaluate_claims(
        report["metrics"], report["params"], claims=report["claims"]
    )
    rendered_json = json.dumps(report, sort_keys=True, indent=2) + "\n"
    rendered_md = render_scale_markdown(report, verdicts)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered_json)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.md is not None:
        with open(args.md, "w", encoding="utf-8") as handle:
            handle.write(rendered_md)
        print(f"wrote {args.md}", file=sys.stderr)
    sys.stdout.write(rendered_json if args.json else rendered_md)
    failed = [verdict for verdict in verdicts if not verdict.passed]
    for verdict in failed:
        print(f"claim regression: {verdict.claim} ({verdict.observed})",
              file=sys.stderr)
    return 1 if failed else 0


def _cmd_load(args: argparse.Namespace) -> int:
    """Drive a live cluster with the 1:3 store:retrieve load harness.

    Boots ``--nodes`` storage nodes over the asyncio TCP transport
    (``--transport inproc`` falls back to the mailbox baseline), runs
    the seeded load profile, and prints per-op p50/p95/p99 latencies
    from the obs histograms.  ``--rate`` switches from the closed loop
    (``--clients`` concurrent clients) to open-loop seeded Poisson
    arrivals.

    The exit code is the SLO verdict: ``--slo p99_ms=50,degraded_pct=1``
    gates the run on explicit objectives; without the flag the default
    objective is zero degraded operations -- the same gate the old
    binary degraded-op check applied.  While the load runs, metrics are
    sampled into windowed series every ``--scrape-interval`` (through a
    :class:`~repro.obs.telemetry.TelemetryCollector` scraping over the
    live wire when ``--prom-out``/``--series-out`` ask for artifacts),
    feeding the verdict's multi-window burn rates.
    """
    import asyncio

    from repro.live.net import SocketTransport
    from repro.live.storage import LiveStorageCluster
    from repro.obs.events import SloBreached
    from repro.obs.slo import DEFAULT_LOAD_SLO, evaluate_load_slo, parse_slo
    from repro.obs.telemetry import TelemetryCollector
    from repro.workloads.load_harness import LoadHarness, LoadProfile

    spec = parse_slo(args.slo) if args.slo else dict(DEFAULT_LOAD_SLO)
    profile = LoadProfile(
        clients=args.clients,
        operations=args.ops,
        arrival_rate=args.rate,
        file_size=args.file_size,
        replication_factor=args.k,
    )
    interval = args.scrape_interval

    async def watch(cluster, collector, stop: "asyncio.Event") -> None:
        """Sample every window until *stop*; the stop flag is read
        before each sample, so one final post-run sample always lands."""
        tick = 0
        while True:
            stopping = stop.is_set()
            at = tick * interval
            if collector is not None:
                await collector.scrape_all()
                await collector.subscribe_all(at=at)
            else:
                cluster.transport.publish_wire_gauges(cluster.obs.metrics)
                cluster.obs.timeseries.sample(cluster.obs.metrics, at=at)
            tick += 1
            if stopping:
                return
            try:
                await asyncio.wait_for(stop.wait(), interval)
            except asyncio.TimeoutError:
                pass

    async def scenario():
        transport = SocketTransport() if args.transport == "socket" else None
        cluster = LiveStorageCluster(seed=args.seed, transport=transport)
        await cluster.start(args.nodes,
                            join_concurrency=args.join_concurrency)
        obs = cluster.obs
        collector = None
        if args.prom_out or args.series_out:
            collector = TelemetryCollector(cluster, window=interval)
        stop = asyncio.Event()
        watcher = asyncio.create_task(watch(cluster, collector, stop))
        harness = LoadHarness(cluster, profile, seed=args.seed)
        report = await harness.run()
        stop.set()
        await watcher
        series = (collector.merged_series() if collector is not None
                  else obs.timeseries.snapshot())
        report.slo = evaluate_load_slo(
            spec, report, obs.ledger.unpriced_total(), series_snapshot=series
        )
        for target in report.slo["targets"]:
            if not target["ok"]:
                obs.emit(SloBreached(
                    name=target["name"],
                    objective=target["objective"],
                    observed=(target["observed"]
                              if target["observed"] is not None else -1.0),
                ))
        artifacts = {}
        if collector is not None:
            artifacts["prom"] = collector.to_prometheus()
            artifacts["series"] = series
        stats = {
            "transport": args.transport,
            "bytes_sent": getattr(cluster.transport, "bytes_sent", None),
            "messages_sent": cluster.transport.messages_sent,
        }
        await cluster.shutdown()
        return report, stats, artifacts

    report, stats, artifacts = asyncio.run(scenario())
    if args.prom_out is not None:
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(artifacts["prom"])
        print(f"wrote {args.prom_out}", file=sys.stderr)
    if args.series_out is not None:
        with open(args.series_out, "w", encoding="utf-8") as handle:
            json.dump(artifacts["series"], handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote {args.series_out}", file=sys.stderr)
    if args.json:
        document = json.loads(report.to_json())
        document["transport"] = stats
        rendered = json.dumps(document, sort_keys=True, indent=2)
    else:
        rendered = report.format_text()
        if stats["bytes_sent"] is not None:
            rendered += (f"\n  wire: {stats['messages_sent']} messages, "
                         f"{stats['bytes_sent']} frame bytes")
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print(rendered)
    if not report.slo["ok"]:
        missed = [target["name"] for target in report.slo["targets"]
                  if not target["ok"]]
        print(f"SLO breached: {', '.join(missed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live ops console: watch a socket cluster while load runs.

    Boots a storage cluster, starts the load harness in the background,
    and renders one console frame per ``--interval``: federated message
    counters, latency percentiles, and per-node health rows -- all read
    over the wire through the telemetry message kinds, exactly what an
    external operator's console would see.  Stops after ``--frames``
    frames or when the load completes, whichever is first.
    """
    import asyncio

    from repro.live.net import SocketTransport
    from repro.live.storage import LiveStorageCluster
    from repro.obs.telemetry import TelemetryCollector, render_console
    from repro.workloads.load_harness import LoadHarness, LoadProfile

    profile = LoadProfile(clients=args.clients, operations=args.ops)

    async def scenario():
        transport = SocketTransport() if args.transport == "socket" else None
        cluster = LiveStorageCluster(seed=args.seed, transport=transport)
        await cluster.start(args.nodes,
                            join_concurrency=args.join_concurrency)
        collector = TelemetryCollector(cluster, window=args.interval)
        harness = LoadHarness(cluster, profile, seed=args.seed)
        load_task = asyncio.create_task(harness.run())
        clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
        frame = 0
        try:
            while frame < args.frames:
                finishing = load_task.done()
                await collector.scrape_all()
                await collector.subscribe_all(at=frame * args.interval)
                health = await collector.probe_all()
                text = render_console(collector, health, frame)
                print(clear + text if clear else text + "\n", flush=True)
                frame += 1
                if finishing or frame >= args.frames:
                    break
                await asyncio.sleep(args.interval)
        finally:
            report = await load_task
            await cluster.shutdown()
        return report, frame

    report, frames = asyncio.run(scenario())
    print(f"rendered {frames} frames; load: {report.total_operations} ops, "
          f"{sum(report.errors.values())} degraded", file=sys.stderr)
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Probe every node of a live cluster for a structured health verdict.

    Boots the cluster, sends each node a ``health-probe`` over the wire,
    and prints the verdicts (``--json`` for the machine-readable block).
    Exit code 0 iff every node reports healthy -- the CI gate.
    """
    import asyncio

    from repro.live.net import SocketTransport
    from repro.live.storage import LiveStorageCluster
    from repro.obs.telemetry import TelemetryCollector

    async def scenario():
        transport = SocketTransport() if args.transport == "socket" else None
        cluster = LiveStorageCluster(seed=args.seed, transport=transport)
        await cluster.start(args.nodes,
                            join_concurrency=args.join_concurrency)
        collector = TelemetryCollector(cluster)
        verdict = await collector.probe_all()
        await cluster.shutdown()
        return verdict

    verdict = asyncio.run(scenario())
    if args.json:
        print(json.dumps(verdict, sort_keys=True, indent=2))
    else:
        print(f"cluster: {'HEALTHY' if verdict['healthy'] else 'DEGRADED'} "
              f"({len(verdict['nodes'])} nodes probed)")
        for node in verdict["nodes"]:
            status = "ok  " if node.get("healthy") else "FAIL"
            checks = node.get("checks", {})
            failed = [name for name, ok in sorted(checks.items()) if not ok]
            detail = f" failed: {', '.join(failed)}" if failed else ""
            print(f"  [{status}] {node['node'][:16]} "
                  f"mailbox={node.get('mailbox_depth', 0)}"
                  f"/{node.get('mailbox_limit', 0)} "
                  f"inflight={node.get('in_flight', 0)} "
                  f"resynced={node.get('resynced_bytes', 0)}{detail}")
    return 0 if verdict["healthy"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PAST (HotOS 2001) reproduction -- demos and measurements",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="insert/lookup/reclaim walkthrough")
    demo.add_argument("--nodes", type=int, default=64)
    demo.set_defaults(handler=_cmd_demo)

    route = commands.add_parser("route", help="trace one routed message")
    route.add_argument("--nodes", type=int, default=500)
    route.add_argument("--json", action="store_true",
                       help="emit the route's span tree as JSON")
    route.set_defaults(handler=_cmd_route)

    hops = commands.add_parser("hops", help="mean routing hops vs N")
    hops.add_argument("--sizes", type=int, nargs="+", default=[256, 1024, 4096])
    hops.add_argument("--lookups", type=int, default=500)
    hops.set_defaults(handler=_cmd_hops)

    fill = commands.add_parser("fill", help="storage utilization to exhaustion")
    fill.add_argument("--nodes", type=int, default=60)
    fill.add_argument("--capacity", type=int, default=8_000_000,
                      help="mean node capacity in bytes")
    fill.set_defaults(handler=_cmd_fill)

    churn = commands.add_parser("churn", help="availability under churn")
    churn.add_argument("--nodes", type=int, default=50)
    churn.add_argument("--files", type=int, default=25)
    churn.add_argument("--k", type=int, default=3)
    churn.add_argument("--rate", type=float, default=0.06)
    churn.add_argument("--duration", type=float, default=300.0)
    churn.set_defaults(handler=_cmd_churn)

    metrics = commands.add_parser(
        "metrics", help="drive a small deployment, dump the metrics registry"
    )
    metrics.add_argument("--nodes", type=int, default=24)
    metrics.add_argument("--files", type=int, default=12)
    metrics.add_argument("--routes", type=int, default=40)
    metrics.add_argument("--capacity", type=int, default=200_000,
                         help="per-node capacity in bytes")
    metrics.add_argument("--events", type=str, default=None,
                         help="also write the event log (JSONL) to this path")
    metrics.set_defaults(handler=_cmd_metrics)

    chaos = commands.add_parser(
        "chaos", help="deterministic fault-injection run with invariant sweeps"
    )
    # Also accepted after the subcommand (``repro chaos --seed 7``);
    # SUPPRESS keeps the global --seed value when it is not repeated.
    chaos.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    chaos.add_argument("--nodes", type=int, default=30)
    chaos.add_argument("--files", type=int, default=12)
    chaos.add_argument("--duration", type=float, default=200.0)
    chaos.add_argument("--events", type=str, nargs="?", const="chaos-events.jsonl",
                       default=None,
                       help="write the event log (JSONL) to this path "
                            "(default chaos-events.jsonl when given bare)")
    chaos.add_argument("--traces", type=str, nargs="?", const="chaos-traces.jsonl",
                       default=None,
                       help="write collected span records (JSONL) to this "
                            "path (default chaos-traces.jsonl when given bare)")
    chaos.set_defaults(handler=_cmd_chaos)

    trace = commands.add_parser(
        "trace",
        help="distributed trace of one live insert + lookup (span trees "
             "+ slow-op log)",
    )
    trace.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    trace.add_argument("--nodes", type=int, default=12)
    trace.add_argument("--drop-rate", type=float, default=0.0,
                       help="message drop probability during the traced "
                            "operations (exercises retries/reroutes)")
    trace.add_argument("--top", type=int, default=10,
                       help="slow-op log length")
    trace.add_argument("--json", action="store_true",
                       help="emit the span trees as JSON")
    trace.add_argument("--out", type=str, default=None,
                       help="also export the flat span records (JSONL)")
    trace.set_defaults(handler=_cmd_trace)

    deploy = commands.add_parser(
        "deploy",
        help="large-scale overlay deployment: oracle build, incremental "
             "churn, C1/C2 claim probes",
    )
    deploy.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    deploy.add_argument("--nodes", type=int, default=10_000,
                        help="overlay size (100000 is the paper's scale)")
    deploy.add_argument("--b", type=int, default=4,
                        help="bits per digit (2^b routing-table columns)")
    deploy.add_argument("--leaf-capacity", type=int, default=32)
    deploy.add_argument("--churn", type=int, default=200,
                        help="random joins/failures applied incrementally "
                             "after the build")
    deploy.add_argument("--lookups", type=int, default=500)
    deploy.add_argument("--json", action="store_true",
                        help="emit the claim verdicts and timings as JSON")
    deploy.set_defaults(handler=_cmd_deploy)

    curves = commands.add_parser(
        "scale-curves",
        help="N-sweep scaling observatory: fit log/power curves for "
             "hops, state, join cost and maintenance bandwidth",
    )
    curves.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    curves.add_argument("--sizes", type=int, nargs="+",
                        default=[512, 1024, 2048, 4096, 8192],
                        help="overlay sizes to sweep (>= 4 for the "
                             "curve claims to fit)")
    curves.add_argument("--lookups", type=int, default=400,
                        help="routed lookups measured per size")
    curves.add_argument("--joins", type=int, default=16,
                        help="protocol joins measured per size")
    curves.add_argument("--churn-duration", type=float, default=60.0,
                        help="sim-seconds of seeded churn per size")
    curves.add_argument("--crashes", type=int, default=6)
    curves.add_argument("--restarts", type=int, default=3)
    curves.add_argument("--json", action="store_true",
                        help="print the full JSON artifact instead of "
                             "the markdown report")
    curves.add_argument("--out", type=str, default=None,
                        help="write the JSON artifact here (observatory-"
                             "ready: repro.obs.report --report <out>)")
    curves.add_argument("--md", type=str, default=None,
                        help="write the markdown report here")
    curves.set_defaults(handler=_cmd_scale_curves)

    load = commands.add_parser(
        "load",
        help="load-test a live cluster over real sockets: 1:3 "
             "store:retrieve mix, p50/p95/p99 latency report",
    )
    load.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    load.add_argument("--nodes", type=int, default=32)
    load.add_argument("--clients", type=int, default=8,
                      help="closed-loop concurrent clients")
    load.add_argument("--ops", type=int, default=200,
                      help="total operations (stores + retrieves)")
    load.add_argument("--rate", type=float, default=0.0,
                      help="> 0: open-loop Poisson arrivals at this "
                           "rate (ops/s) instead of the closed loop")
    load.add_argument("--file-size", type=int, default=2048,
                      help="bytes of real content per stored file")
    load.add_argument("--k", type=int, default=3,
                      help="replication factor for stores")
    load.add_argument("--join-concurrency", type=int, default=8)
    load.add_argument("--transport", choices=["socket", "inproc"],
                      default="socket")
    load.add_argument("--json", action="store_true",
                      help="emit the latency report as JSON")
    load.add_argument("--out", type=str, default=None,
                      help="also write the report to this path")
    load.add_argument("--slo", type=str, default=None,
                      help="gate the run on objectives, e.g. "
                           "p99_ms=50,degraded_pct=1 (default: "
                           "degraded_pct=0); exits nonzero on breach")
    load.add_argument("--scrape-interval", type=float, default=0.5,
                      help="windowed-series sample interval in seconds")
    load.add_argument("--prom-out", type=str, default=None,
                      help="write the federated Prometheus exposition "
                           "(scraped over the wire) to this path")
    load.add_argument("--series-out", type=str, default=None,
                      help="write the federated windowed series (JSON) "
                           "to this path")
    load.set_defaults(handler=_cmd_load)

    top = commands.add_parser(
        "top",
        help="live ops console: scrape a running cluster over the wire "
             "while the load harness drives it",
    )
    top.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    top.add_argument("--nodes", type=int, default=8)
    top.add_argument("--clients", type=int, default=4)
    top.add_argument("--ops", type=int, default=200,
                     help="load operations driven while the console runs")
    top.add_argument("--frames", type=int, default=20,
                     help="console frames to render before exiting")
    top.add_argument("--interval", type=float, default=0.5,
                     help="seconds between frames (= the series window)")
    top.add_argument("--join-concurrency", type=int, default=8)
    top.add_argument("--transport", choices=["socket", "inproc"],
                     default="socket")
    top.set_defaults(handler=_cmd_top)

    health = commands.add_parser(
        "health",
        help="probe every live node for a structured health verdict "
             "(exit 0 iff all healthy)",
    )
    health.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    health.add_argument("--nodes", type=int, default=8)
    health.add_argument("--join-concurrency", type=int, default=8)
    health.add_argument("--transport", choices=["socket", "inproc"],
                        default="socket")
    health.add_argument("--json", action="store_true",
                        help="emit the verdict block as JSON")
    health.set_defaults(handler=_cmd_health)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
