"""Command-line interface: ``python -m repro <command>``.

Small, self-contained demos and measurements runnable without writing
any code -- the kind of smoke tooling a downstream user reaches for
first:

* ``demo``        -- build a network, insert/lookup/reclaim, narrated;
* ``route``       -- build an overlay and trace one routed message;
* ``hops``        -- the E1 measurement at chosen sizes;
* ``fill``        -- the E9 insert-to-exhaustion measurement, compact;
* ``churn``       -- the E15 availability measurement for one k.

Every command takes ``--seed`` so results are reproducible.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    build_pastry,
    expected_hop_bound,
    fill_network,
    make_storage_network,
    sample_lookups,
)
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.churn_sim import ChurnSimulation
from repro.core.files import RealData, SyntheticData
from repro.core.network import PastNetwork
from repro.core.storage_manager import StoragePolicy
from repro.sim.rng import RngRegistry
from repro.workloads.capacities import bounded_normal_capacities
from repro.workloads.filesizes import TraceLikeSizes


def _cmd_demo(args: argparse.Namespace) -> int:
    network = PastNetwork(rngs=RngRegistry(args.seed))
    network.build(args.nodes, method="join", capacity_fn=lambda r: 1_000_000)
    print(f"built a {network.pastry.live_count()}-node PAST network")
    alice = network.create_client(usage_quota=100_000)
    handle = alice.insert("demo.txt", RealData(b"stored by the repro CLI"), 3)
    print(f"inserted fileId {handle.file_id:040x} "
          f"({len(handle.receipts)} replicas, quota used {alice.card.quota_used})")
    bob = network.create_client(usage_quota=0)
    result = bob.lookup_verbose(handle.file_id)
    print(f"lookup: {result.data.to_bytes()!r} in {result.hops} hops "
          f"from a {result.response.source}")
    credited = alice.reclaim(handle)
    print(f"reclaimed; {credited} bytes credited back")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    network = build_pastry(args.nodes, seed=args.seed, method="oracle")
    rng = random.Random(args.seed)
    key = network.space.random_id(rng)
    origin = rng.choice(network.live_ids())
    result = network.route(key, origin)
    fmt = network.space.format_id
    print(f"key    {fmt(key)}")
    print(f"origin {fmt(origin)}")
    for index, hop in enumerate(result.path):
        prefix = network.space.shared_prefix_length(hop, key)
        marker = "->" if index else "  "
        print(f" {marker} {fmt(hop)}  (shared prefix {prefix} digits)")
    print(f"delivered at the root in {result.hops} hops "
          f"(bound {expected_hop_bound(args.nodes, network.space.b)})")
    return 0


def _cmd_hops(args: argparse.Namespace) -> int:
    rows = []
    for n in args.sizes:
        network = build_pastry(n, seed=args.seed + n, method="oracle")
        rng = random.Random(n)
        hops = []
        for key, origin in sample_lookups(network, args.lookups, rng):
            result = network.route(key, origin)
            hops.append(result.hops)
        rows.append([n, round(mean(hops), 3), expected_hop_bound(n, 4)])
    print(format_table(["N", "mean hops", "bound"], rows,
                       title="routing hops vs N"))
    return 0


def _cmd_fill(args: argparse.Namespace) -> int:
    network = make_storage_network(
        args.nodes, seed=args.seed, policy=StoragePolicy(),
        capacity_fn=bounded_normal_capacities(args.capacity),
        cache_policy="none",
    )
    report = fill_network(
        network, TraceLikeSizes(), random.Random(args.seed), replication_factor=3
    )
    utilization = network.utilization()["global_utilization"]
    at95 = report.reject_ratio_at_utilization(0.95)
    print(f"inserted {report.inserted}, rejected {report.rejected}")
    print(f"final utilization {100 * utilization:.1f}%")
    print("reject ratio at 95% utilization: "
          + (f"{100 * at95:.1f}%" if at95 is not None else "never reached"))
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    network = PastNetwork(rngs=RngRegistry(args.seed))
    network.build(args.nodes, method="join", capacity_fn=lambda r: 1 << 22)
    client = network.create_client(usage_quota=1 << 40)
    handles = [
        client.insert(f"f{i}", SyntheticData(i, 1500), replication_factor=args.k)
        for i in range(args.files)
    ]
    simulation = ChurnSimulation(
        network, handles, arrival_rate=args.rate, departure_rate=args.rate,
        maintenance_interval=40.0, lookup_interval=1.0,
    )
    report = simulation.run(args.duration)
    print(f"k={args.k}: availability {100 * report.availability:.2f}%, "
          f"{report.files_lost} files lost, {report.departures} departures, "
          f"{report.replicas_restored} replicas restored")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PAST (HotOS 2001) reproduction -- demos and measurements",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="insert/lookup/reclaim walkthrough")
    demo.add_argument("--nodes", type=int, default=64)
    demo.set_defaults(handler=_cmd_demo)

    route = commands.add_parser("route", help="trace one routed message")
    route.add_argument("--nodes", type=int, default=500)
    route.set_defaults(handler=_cmd_route)

    hops = commands.add_parser("hops", help="mean routing hops vs N")
    hops.add_argument("--sizes", type=int, nargs="+", default=[256, 1024, 4096])
    hops.add_argument("--lookups", type=int, default=500)
    hops.set_defaults(handler=_cmd_hops)

    fill = commands.add_parser("fill", help="storage utilization to exhaustion")
    fill.add_argument("--nodes", type=int, default=60)
    fill.add_argument("--capacity", type=int, default=8_000_000,
                      help="mean node capacity in bytes")
    fill.set_defaults(handler=_cmd_fill)

    churn = commands.add_parser("churn", help="availability under churn")
    churn.add_argument("--nodes", type=int, default=50)
    churn.add_argument("--files", type=int, default=25)
    churn.add_argument("--k", type=int, default=3)
    churn.add_argument("--rate", type=float, default=0.06)
    churn.add_argument("--duration", type=float, default=300.0)
    churn.set_defaults(handler=_cmd_churn)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
