"""Symmetric encryption for private files.

Section 2.1 (Data privacy and integrity): "Users may use encryption to
protect the privacy of their data, using a cryptosystem of their choice.
Data encryption does not involve the smartcards."

This module provides that client-side cryptosystem, from scratch on top
of SHA-256 (the only primitive the environment offers):

* a **stream cipher** in counter mode -- the keystream is
  ``SHA-256(key || nonce || counter)`` blocks XORed with the plaintext;
* an **encrypt-then-MAC** envelope -- a keyed-hash tag over the nonce and
  ciphertext, with a key derived from (but not equal to) the encryption
  key, so tampering is detected before decryption.

Storage nodes see only ciphertext; sharing a file means distributing the
fileId *and* the key (section 1: "files can be shared at the owner's
discretion by distributing the fileId ... and, if necessary, a
decryption key").
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass

KEY_BYTES = 32
NONCE_BYTES = 16
TAG_BYTES = 32
_BLOCK = 32  # SHA-256 output size


class DecryptionError(Exception):
    """Wrong key, or the ciphertext was tampered with."""


def generate_key(rng: random.Random) -> bytes:
    """A fresh 256-bit symmetric key (deterministic under a seeded rng,
    for reproducible simulations)."""
    return rng.getrandbits(KEY_BYTES * 8).to_bytes(KEY_BYTES, "big")


def _keystream_block(key: bytes, nonce: bytes, counter: int) -> bytes:
    return hashlib.sha256(
        b"past-ctr" + key + nonce + counter.to_bytes(8, "big")
    ).digest()


def _mac_key(key: bytes) -> bytes:
    # Domain-separated derivation: the MAC key differs from the cipher key.
    return hashlib.sha256(b"past-mac" + key).digest()


def _xor_stream(key: bytes, nonce: bytes, data: bytes) -> bytes:
    out = bytearray(len(data))
    for block_index in range((len(data) + _BLOCK - 1) // _BLOCK):
        stream = _keystream_block(key, nonce, block_index)
        base = block_index * _BLOCK
        chunk = data[base:base + _BLOCK]
        for i, byte in enumerate(chunk):
            out[base + i] = byte ^ stream[i]
    return bytes(out)


@dataclass(frozen=True)
class SealedBox:
    """nonce || ciphertext || tag, as stored in PAST."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.ciphertext + self.tag

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SealedBox":
        if len(blob) < NONCE_BYTES + TAG_BYTES:
            raise DecryptionError("sealed blob too short")
        return cls(
            nonce=blob[:NONCE_BYTES],
            ciphertext=blob[NONCE_BYTES:-TAG_BYTES],
            tag=blob[-TAG_BYTES:],
        )


def encrypt(key: bytes, plaintext: bytes, rng: random.Random) -> SealedBox:
    """Encrypt-then-MAC under a fresh random nonce."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"key must be {KEY_BYTES} bytes")
    nonce = rng.getrandbits(NONCE_BYTES * 8).to_bytes(NONCE_BYTES, "big")
    ciphertext = _xor_stream(key, nonce, plaintext)
    tag = hmac.new(_mac_key(key), nonce + ciphertext, hashlib.sha256).digest()
    return SealedBox(nonce=nonce, ciphertext=ciphertext, tag=tag)


def decrypt(key: bytes, box: SealedBox) -> bytes:
    """Verify the tag, then decrypt.  Raises :class:`DecryptionError` on
    a wrong key or any ciphertext/nonce/tag tampering."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"key must be {KEY_BYTES} bytes")
    expected = hmac.new(_mac_key(key), box.nonce + box.ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, box.tag):
        raise DecryptionError("authentication tag mismatch (wrong key or tampering)")
    return _xor_stream(key, box.nonce, box.ciphertext)
