"""From-scratch RSA: key generation, signing, verification.

PAST's security model assumes an unbreakable public-key cryptosystem; we
implement a real one rather than stubbing it, so that the security tests
exercise genuine verification semantics (any forged certificate field
changes the hash and fails the signature check).

Keys default to 512 bits -- far too small for real-world security, but the
*semantics* (not the work factor) are what the reproduction needs, and
512-bit keygen is fast enough to mint thousands of simulated smartcards.

The scheme is hash-then-sign: ``signature = H(message)^d mod n`` and
verification checks ``signature^e mod n == H(message)``.  This is the
textbook construction (a simplified RSA-FDH); we do not implement PKCS#1
padding because no interoperability is required.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.crypto.hashing import hash_bytes

# The 40 smallest odd primes: trial division by these rejects ~88% of
# random candidates before the expensive Miller-Rabin rounds run.
_SMALL_PRIMES = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179,
]

_PUBLIC_EXPONENT = 65537


def _is_probable_prime(candidate: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller-Rabin primality test with *rounds* random witnesses."""
    if candidate < 2:
        return False
    if candidate == 2:
        return True
    if candidate % 2 == 0:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    # write candidate - 1 as d * 2^r with d odd
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly *bits* bits."""
    if bits < 8:
        raise ValueError("prime size too small to be meaningful")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """The (n, e) half of an RSA key; safe to share."""

    n: int
    e: int

    def verify(self, message: bytes, signature: int) -> bool:
        """Check that *signature* is H(message)^d mod n."""
        if not 0 < signature < self.n:
            return False
        expected = int.from_bytes(hash_bytes(message), "big") % self.n
        return pow(signature, self.e, self.n) == expected

    def fingerprint(self) -> bytes:
        """Canonical byte encoding used to derive nodeIds from keys."""
        n_bytes = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        e_bytes = self.e.to_bytes((self.e.bit_length() + 7) // 8, "big")
        return hash_bytes(n_bytes, e_bytes)


@dataclass(frozen=True)
class RsaPrivateKey:
    """The full RSA key. Held only inside simulated smartcards."""

    n: int
    e: int
    d: int

    def sign(self, message: bytes) -> int:
        """Produce H(message)^d mod n."""
        digest = int.from_bytes(hash_bytes(message), "big") % self.n
        return pow(digest, self.d, self.n)

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)


def generate_rsa_keypair(
    bits: int = 512, rng: random.Random | None = None
) -> Tuple[RsaPrivateKey, RsaPublicKey]:
    """Generate an RSA keypair with modulus of roughly *bits* bits."""
    if rng is None:
        rng = random.Random()
    if bits < 64:
        raise ValueError("modulus below 64 bits cannot carry a SHA-256 digest residue safely")
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue  # e must be invertible mod phi
        d = pow(_PUBLIC_EXPONENT, -1, phi)
        private = RsaPrivateKey(n=n, e=_PUBLIC_EXPONENT, d=d)
        return private, private.public_key()
