"""Cryptographic hashing mapped onto PAST's identifier widths.

PAST assigns each node a 128-bit nodeId (hash of the node's public key)
and each file a 160-bit fileId (hash of the file's textual name, the
owner's public key and a random salt).  The helpers here produce those
integers from arbitrary byte strings using SHA-1/SHA-256 truncation, which
preserves the property the paper relies on: identifiers are uniformly and
quasi-randomly distributed, so an attacker cannot bias them.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

NODE_ID_BITS = 128
FILE_ID_BITS = 160

_FIELD_SEPARATOR = b"\x1f"


def hash_bytes(*parts: bytes) -> bytes:
    """SHA-256 over length-prefixed parts.

    Length-prefixing (rather than bare concatenation) prevents ambiguity
    attacks where ``(b"ab", b"c")`` and ``(b"a", b"bc")`` would otherwise
    hash identically.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
        h.update(_FIELD_SEPARATOR)
    return h.digest()


def _truncate_to_bits(digest: bytes, bits: int) -> int:
    value = int.from_bytes(digest, "big")
    excess = len(digest) * 8 - bits
    if excess < 0:
        raise ValueError(f"digest too short for {bits} bits")
    return value >> excess


def sha1_id(*parts: bytes, bits: int = FILE_ID_BITS) -> int:
    """SHA-1 of the parts truncated to *bits* (SHA-1 is exactly 160 bits,
    matching the paper's fileId width)."""
    h = hashlib.sha1()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
        h.update(_FIELD_SEPARATOR)
    return _truncate_to_bits(h.digest(), bits)


def sha256_id(*parts: bytes, bits: int = NODE_ID_BITS) -> int:
    """SHA-256 of the parts truncated to *bits* (128 for nodeIds)."""
    return _truncate_to_bits(hash_bytes(*parts), bits)


def content_hash(data: bytes) -> int:
    """The cryptographic hash of a file's contents carried in its
    file certificate (160 bits, like the fileId)."""
    return sha1_id(data, bits=FILE_ID_BITS)


def int_to_bytes(value: int, bits: int) -> bytes:
    """Fixed-width big-endian encoding of an identifier."""
    if value < 0 or value >= (1 << bits):
        raise ValueError(f"value {value} does not fit in {bits} bits")
    return value.to_bytes(bits // 8, "big")


def combine_ids(values: Iterable[int], bits: int) -> int:
    """Hash several identifiers into one (used for audit challenges)."""
    return sha256_id(*(int_to_bytes(v, bits) for v in values), bits=bits)
