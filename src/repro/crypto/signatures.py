"""Signed-envelope helpers shared by all PAST certificates.

Every certificate in PAST (file certificate, store receipt, reclaim
certificate, reclaim receipt) is "a set of named fields, signed".  The
helpers here canonicalise the fields into bytes deterministically so that
signing and verification agree, and so that changing *any* field breaks
the signature -- the property each security test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.crypto.keys import KeyPair, PublicKey

FieldValue = Union[int, str, bytes]


def _encode_value(value: FieldValue) -> bytes:
    """Unambiguous, type-tagged encoding of a field value."""
    if isinstance(value, bool):  # bool is an int subclass; tag it separately
        return b"B" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"I" + str(value).encode()
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"Y" + value
    raise TypeError(f"unsupported certificate field type: {type(value).__name__}")


def canonical_bytes(fields: Mapping[str, FieldValue]) -> bytes:
    """Deterministic byte encoding of a field mapping.

    Fields are sorted by name and length-prefixed, so reordering keys or
    splitting/joining values cannot produce a colliding encoding.
    """
    chunks = []
    for name in sorted(fields):
        encoded = _encode_value(fields[name])
        name_bytes = name.encode("utf-8")
        chunks.append(len(name_bytes).to_bytes(4, "big"))
        chunks.append(name_bytes)
        chunks.append(len(encoded).to_bytes(4, "big"))
        chunks.append(encoded)
    return b"".join(chunks)


def sign_fields(keypair: KeyPair, kind: str, fields: Mapping[str, FieldValue]) -> int:
    """Sign a certificate of the given *kind* over canonicalised fields.

    The kind tag is mixed into the signed bytes so that, e.g., a reclaim
    certificate can never be replayed as a file certificate even if their
    field sets coincided.
    """
    return keypair.sign(kind.encode("utf-8") + b"\x00" + canonical_bytes(fields))


def verify_fields(
    public: PublicKey, kind: str, fields: Mapping[str, FieldValue], signature: int
) -> bool:
    """Verify a certificate signed by :func:`sign_fields`."""
    return public.verify(kind.encode("utf-8") + b"\x00" + canonical_bytes(fields), signature)


@dataclass(frozen=True)
class SignedEnvelope:
    """A generic signed message: fields + signer + signature.

    Concrete certificate classes in :mod:`repro.core.certificates` wrap
    this with typed accessors; the envelope keeps the signing mechanics in
    one place.
    """

    kind: str
    fields: Mapping[str, FieldValue]
    signer: PublicKey
    signature: int

    @classmethod
    def create(
        cls, keypair: KeyPair, kind: str, fields: Mapping[str, FieldValue]
    ) -> "SignedEnvelope":
        signature = sign_fields(keypair, kind, fields)
        return cls(kind=kind, fields=dict(fields), signer=keypair.public, signature=signature)

    def verify(self) -> bool:
        """Self-check against the embedded signer key."""
        return verify_fields(self.signer, self.kind, self.fields, self.signature)

    def verify_with(self, public: PublicKey) -> bool:
        """Check against an externally supplied key (e.g. the one a broker
        certified), guarding against envelope substitution."""
        return verify_fields(public, self.kind, self.fields, self.signature)
