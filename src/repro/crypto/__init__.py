"""Simulated cryptographic substrate for PAST.

The paper assumes (security model, section 2.1) a public-key cryptosystem
and a cryptographic hash function that cannot feasibly be broken.  We
provide both from scratch:

* :mod:`repro.crypto.hashing` -- SHA-1/SHA-256 (via :mod:`hashlib`) mapped
  onto the fixed-width integer identifiers PAST uses (128-bit nodeIds and
  160-bit fileIds).
* :mod:`repro.crypto.rsa` -- a from-scratch RSA implementation
  (Miller-Rabin key generation, hash-then-sign).  Small keys (default 512
  bits) keep simulations fast while preserving the *semantics* that the
  security claims need: certificates really verify, and forging any field
  really breaks verification.
* :mod:`repro.crypto.keys` -- the :class:`KeyPair`/:class:`PublicKey`
  abstraction used by smartcards and brokers, including an "insecure fast"
  mode that swaps RSA for keyed hashing when an experiment pushes millions
  of messages and does not exercise the security path.
"""

from repro.crypto.hashing import hash_bytes, sha1_id, sha256_id
from repro.crypto.keys import KeyPair, PublicKey, generate_keypair
from repro.crypto.signatures import SignedEnvelope, sign_fields, verify_fields

__all__ = [
    "sha1_id",
    "sha256_id",
    "hash_bytes",
    "KeyPair",
    "PublicKey",
    "generate_keypair",
    "SignedEnvelope",
    "sign_fields",
    "verify_fields",
]
