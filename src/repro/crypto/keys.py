"""Key abstraction used by smartcards, brokers, and users.

Two interchangeable backends:

* ``rsa`` -- real signatures via :mod:`repro.crypto.rsa`.  Default; used by
  all the security tests and by any experiment that exercises certificate
  verification.
* ``insecure_fast`` -- a keyed-hash tag.  Verification recomputes the tag
  from a *secret* the public key object carries.  This is obviously not a
  signature scheme (anyone holding the "public" key can forge), but it is
  two orders of magnitude faster and behaviourally identical for the
  performance experiments, which never attempt forgery.  The mode is an
  explicit opt-in so no security-relevant code path can select it silently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.crypto.hashing import NODE_ID_BITS, hash_bytes, sha256_id
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair

RSA_BACKEND = "rsa"
INSECURE_FAST_BACKEND = "insecure_fast"


@dataclass(frozen=True)
class _FastPublicKey:
    """Keyed-hash 'public key' for the insecure fast backend."""

    secret: bytes

    def verify(self, message: bytes, signature: int) -> bool:
        expected = int.from_bytes(hash_bytes(self.secret, message), "big")
        return signature == expected

    def fingerprint(self) -> bytes:
        return hash_bytes(b"fast-key", self.secret)


@dataclass(frozen=True)
class _FastPrivateKey:
    secret: bytes

    def sign(self, message: bytes) -> int:
        return int.from_bytes(hash_bytes(self.secret, message), "big")

    def public_key(self) -> _FastPublicKey:
        return _FastPublicKey(secret=self.secret)


class PublicKey:
    """Backend-agnostic public key: verify signatures, derive identifiers."""

    def __init__(self, impl: Union[RsaPublicKey, _FastPublicKey]) -> None:
        self._impl = impl

    def verify(self, message: bytes, signature: int) -> bool:
        """True iff *signature* was produced by the matching private key
        over exactly *message*."""
        return self._impl.verify(message, signature)

    def fingerprint(self) -> bytes:
        """Canonical bytes identifying this key (hash of its material)."""
        return self._impl.fingerprint()

    def derive_id(self, bits: int = NODE_ID_BITS) -> int:
        """The identifier PAST derives from a public key (e.g. a nodeId is
        the 128-bit hash of the smartcard's public key)."""
        return sha256_id(self.fingerprint(), bits=bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PublicKey) and other._impl == self._impl

    def __hash__(self) -> int:
        return hash(self._impl)

    def __repr__(self) -> str:
        return f"PublicKey({self.fingerprint().hex()[:12]}…)"


class KeyPair:
    """A private/public key pair.

    The private half never leaves this object; smartcards hold a KeyPair
    and expose only signing operations, mirroring tamper-proof hardware.
    """

    def __init__(self, private: Union[RsaPrivateKey, _FastPrivateKey], backend: str) -> None:
        self._private = private
        self.backend = backend
        self.public = PublicKey(private.public_key())

    def sign(self, message: bytes) -> int:
        """Sign *message*; verify with ``self.public.verify``."""
        return self._private.sign(message)

    def __repr__(self) -> str:
        return f"KeyPair(backend={self.backend}, public={self.public!r})"


def generate_keypair(
    rng: Optional[random.Random] = None,
    backend: str = RSA_BACKEND,
    bits: int = 512,
) -> KeyPair:
    """Mint a new keypair with the requested backend.

    *rng* makes key generation deterministic under a seeded stream, which
    keeps whole-network simulations reproducible.
    """
    if rng is None:
        rng = random.Random()
    if backend == RSA_BACKEND:
        private, _ = generate_rsa_keypair(bits=bits, rng=rng)
        return KeyPair(private, backend)
    if backend == INSECURE_FAST_BACKEND:
        secret = rng.getrandbits(256).to_bytes(32, "big")
        return KeyPair(_FastPrivateKey(secret=secret), backend)
    raise ValueError(f"unknown key backend: {backend!r}")
