"""CAN (Ratnasamy et al., SIGCOMM 2001) -- the d-dimensional baseline.

Nodes own hyperrectangular zones of a d-dimensional unit torus.  A
joining node picks a random point; the node owning that point splits its
zone in half (cycling through dimensions) and hands one half over.
Routing is greedy: forward to the neighbour (zone sharing a face) whose
zone is closest to the target point, until the target falls in the
current node's zone.

The contrast with Pastry (benchmark E13): per-node state is O(d)
(independent of N), but route length grows as O(d N^(1/d)) -- faster
than log N.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

Point = Tuple[float, ...]


@dataclass
class Zone:
    """A half-open hyperrectangle [low_i, high_i) per dimension."""

    lows: Tuple[float, ...]
    highs: Tuple[float, ...]

    def contains(self, point: Point) -> bool:
        return all(
            low <= coordinate < high
            for coordinate, low, high in zip(point, self.lows, self.highs)
        )

    def center(self) -> Point:
        return tuple((low + high) / 2.0 for low, high in zip(self.lows, self.highs))

    def split(self, dimension: int) -> Tuple["Zone", "Zone"]:
        """Halve the zone along *dimension*; returns (kept, given-away)."""
        mid = (self.lows[dimension] + self.highs[dimension]) / 2.0
        lows_hi = list(self.lows)
        lows_hi[dimension] = mid
        highs_lo = list(self.highs)
        highs_lo[dimension] = mid
        kept = Zone(self.lows, tuple(highs_lo))
        given = Zone(tuple(lows_hi), self.highs)
        return kept, given

    def widest_dimension(self) -> int:
        extents = [high - low for low, high in zip(self.lows, self.highs)]
        return max(range(len(extents)), key=lambda i: extents[i])


def _interval_overlap(a_low: float, a_high: float, b_low: float, b_high: float) -> bool:
    """Open-interval overlap (shared extent, not just a touching edge)."""
    return a_low < b_high and b_low < a_high


def _interval_touch(a_low: float, a_high: float, b_low: float, b_high: float, wrap: bool) -> bool:
    """Closed abutment: the intervals share an endpoint (torus-aware)."""
    if a_high == b_low or b_high == a_low:
        return True
    if wrap and ((a_low == 0.0 and b_high == 1.0) or (b_low == 0.0 and a_high == 1.0)):
        return True
    return False


def zones_adjacent(a: Zone, b: Zone) -> bool:
    """Face adjacency on the torus: abut in exactly one dimension and
    overlap in all others."""
    touching = 0
    for dim in range(len(a.lows)):
        if _interval_overlap(a.lows[dim], a.highs[dim], b.lows[dim], b.highs[dim]):
            continue
        if _interval_touch(a.lows[dim], a.highs[dim], b.lows[dim], b.highs[dim], wrap=True):
            touching += 1
            continue
        return False
    return touching == 1


def torus_distance(a: Point, b: Point) -> float:
    """Squared Euclidean distance on the unit torus."""
    total = 0.0
    for xa, xb in zip(a, b):
        delta = abs(xa - xb)
        delta = min(delta, 1.0 - delta)
        total += delta * delta
    return total


def _coordinate_gap(value: float, low: float, high: float) -> float:
    """Torus distance from *value* to the interval [low, high)."""
    if low <= value < high:
        return 0.0
    gap_low = abs(value - low)
    gap_high = abs(value - high)
    return min(gap_low, 1.0 - gap_low, gap_high, 1.0 - gap_high)


def zone_distance(zone: Zone, point: Point) -> float:
    """Squared torus distance from *point* to the nearest point of *zone*.

    Greedy routing on zone distance (rather than zone-center distance)
    cannot loop: the next zone always strictly reduces the distance to
    the target, because zones tile the space."""
    total = 0.0
    for value, low, high in zip(point, zone.lows, zone.highs):
        gap = _coordinate_gap(value, low, high)
        total += gap * gap
    return total


@dataclass
class CanNode:
    node_id: int
    zone: Zone
    neighbours: List[int] = field(default_factory=list)

    def state_size(self) -> int:
        return len(self.neighbours)


@dataclass
class CanRouteResult:
    target: Point
    path: List[int]
    delivered: bool

    @property
    def hops(self) -> int:
        return max(len(self.path) - 1, 0)

    @property
    def destination(self) -> Optional[int]:
        return self.path[-1] if self.delivered else None


class CanNetwork:
    """A CAN overlay on the d-dimensional unit torus."""

    def __init__(self, dimensions: int = 2) -> None:
        if dimensions < 1:
            raise ValueError("need at least one dimension")
        self.dimensions = dimensions
        self.nodes: Dict[int, CanNode] = {}
        self._next_id = 0

    def build(self, n: int, rng: random.Random) -> None:
        """Grow the overlay one join at a time (real zone splits)."""
        if n < 1:
            raise ValueError("need at least one node")
        first = CanNode(
            node_id=self._take_id(),
            zone=Zone(lows=(0.0,) * self.dimensions, highs=(1.0,) * self.dimensions),
        )
        self.nodes[first.node_id] = first
        for _ in range(n - 1):
            self._join(rng)

    def _take_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def owner_of(self, point: Point) -> int:
        """Ground truth: the node whose zone contains *point*."""
        for node in self.nodes.values():
            if node.zone.contains(point):
                return node.node_id
        raise ValueError(f"no zone contains {point}")

    def _join(self, rng: random.Random) -> CanNode:
        point = tuple(rng.random() for _ in range(self.dimensions))
        owner = self.nodes[self.owner_of(point)]
        kept, given = owner.zone.split(owner.zone.widest_dimension())
        owner.zone = kept
        newcomer = CanNode(node_id=self._take_id(), zone=given)
        self.nodes[newcomer.node_id] = newcomer
        # Recompute adjacency for the two affected nodes and everyone who
        # bordered the old zone.  O(n) per join: fine at baseline scale.
        self._refresh_neighbours(owner)
        self._refresh_neighbours(newcomer)
        return newcomer

    def _refresh_neighbours(self, node: CanNode) -> None:
        node.neighbours = [
            other.node_id
            for other in self.nodes.values()
            if other.node_id != node.node_id and zones_adjacent(node.zone, other.zone)
        ]
        for other_id in list(self.nodes):
            other = self.nodes[other_id]
            if other.node_id == node.node_id:
                continue
            adjacent = zones_adjacent(node.zone, other.zone)
            has = node.node_id in other.neighbours
            if adjacent and not has:
                other.neighbours.append(node.node_id)
            elif not adjacent and has:
                other.neighbours.remove(node.node_id)

    def route(self, target: Point, origin: int, max_hops: Optional[int] = None) -> CanRouteResult:
        """Greedy torus routing towards the zone containing *target*."""
        if origin not in self.nodes:
            raise ValueError("unknown origin")
        if len(target) != self.dimensions:
            raise ValueError("target dimensionality mismatch")
        if max_hops is None:
            side = int(round(len(self.nodes) ** (1.0 / self.dimensions) + 1))
            max_hops = 8 * side * self.dimensions + 32
        current = self.nodes[origin]
        path = [origin]
        while not current.zone.contains(target):
            best = None
            best_distance = None
            for neighbour_id in current.neighbours:
                neighbour = self.nodes[neighbour_id]
                distance = zone_distance(neighbour.zone, target)
                if best_distance is None or distance < best_distance:
                    best_distance = distance
                    best = neighbour
            if best is None:
                return CanRouteResult(target=target, path=path, delivered=False)
            path.append(best.node_id)
            if len(path) - 1 > max_hops:
                return CanRouteResult(target=target, path=path, delivered=False)
            current = best
        return CanRouteResult(target=target, path=path, delivered=True)

    def average_state_size(self) -> float:
        if not self.nodes:
            return 0.0
        return sum(n.state_size() for n in self.nodes.values()) / len(self.nodes)
