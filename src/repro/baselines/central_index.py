"""Napster-style central index -- the centralised baseline.

A single index server maps every file to its holders; a lookup is one
query to the server plus a direct fetch.  Constant cost -- and a single
point of failure, which is why the paper calls Napster "not a pure
peer-to-peer system".  The benchmark kills the server to show the
availability cliff that PAST's decentralisation avoids.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set


class IndexUnavailableError(RuntimeError):
    """The central index is down; every lookup in the system fails."""


@dataclass
class CentralLookupResult:
    found: bool
    messages: int
    holder: Optional[int]


class CentralIndexNetwork:
    """Peers plus one index server."""

    def __init__(self) -> None:
        self.peers: Set[int] = set()
        self._index: Dict[int, List[int]] = {}
        self.server_alive = True

    def build(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one peer")
        self.peers = set(range(n))

    def publish(self, file_id: int, node_id: int) -> None:
        """A peer registers a file with the index (one message)."""
        if node_id not in self.peers:
            raise ValueError("unknown peer")
        if not self.server_alive:
            raise IndexUnavailableError("cannot publish: index server down")
        self._index.setdefault(file_id, []).append(node_id)

    def kill_server(self) -> None:
        self.server_alive = False

    def restore_server(self) -> None:
        self.server_alive = True

    def lookup(self, file_id: int, origin: int, rng: random.Random) -> CentralLookupResult:
        """Query the index (2 messages), then fetch from a holder (2
        messages).  Raises when the server is down -- the whole system's
        lookups fail together."""
        if origin not in self.peers:
            raise ValueError("unknown peer")
        if not self.server_alive:
            raise IndexUnavailableError("index server down")
        holders = [h for h in self._index.get(file_id, []) if h in self.peers]
        if not holders:
            return CentralLookupResult(found=False, messages=2, holder=None)
        holder = rng.choice(holders)
        return CentralLookupResult(found=True, messages=4, holder=holder)

    def average_state_size(self) -> float:
        """Peers hold one reference (the server); the server holds the
        whole index.  This asymmetry is the scalability argument."""
        if not self.peers:
            return 0.0
        index_entries = sum(len(h) for h in self._index.values())
        return (len(self.peers) * 1 + index_entries) / (len(self.peers) + 1)
