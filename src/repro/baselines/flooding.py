"""Gnutella-style flooding -- the no-structure baseline.

Nodes form an unstructured random graph; a lookup floods a query with a
TTL.  Files live on the nodes that inserted them (no placement rule), so
there is no routing to speak of: coverage -- and therefore success
probability -- is bought with exponentially growing message counts.
This is the contrast the paper draws in section 3: earlier peer-to-peer
systems offer "no definite answer in a bounded number of hops".
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class FloodResult:
    """Outcome of one flooded query."""

    found: bool
    messages: int
    hops_to_hit: Optional[int]  # hop count of the first copy found
    nodes_reached: int


@dataclass
class FloodingNode:
    node_id: int
    neighbours: List[int] = field(default_factory=list)
    files: Set[int] = field(default_factory=set)


class FloodingNetwork:
    """An unstructured overlay with TTL-flooded queries."""

    def __init__(self, degree: int = 4) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.nodes: Dict[int, FloodingNode] = {}

    def build(self, n: int, rng: random.Random) -> None:
        """A connected random graph: ring + random chords (Gnutella
        crawls show a similar small-world shape)."""
        if n < 2:
            raise ValueError("need at least two nodes")
        for node_id in range(n):
            self.nodes[node_id] = FloodingNode(node_id)
        ids = list(self.nodes)
        for index, node_id in enumerate(ids):
            self._connect(node_id, ids[(index + 1) % n])
        for node_id in ids:
            while len(self.nodes[node_id].neighbours) < self.degree:
                other = rng.choice(ids)
                if other != node_id:
                    self._connect(node_id, other)

    def _connect(self, a: int, b: int) -> None:
        if b not in self.nodes[a].neighbours:
            self.nodes[a].neighbours.append(b)
        if a not in self.nodes[b].neighbours:
            self.nodes[b].neighbours.append(a)

    def place_file(self, file_id: int, node_id: int, replicas: int = 1,
                   rng: Optional[random.Random] = None) -> List[int]:
        """Place a file on *node_id* plus (replicas - 1) random others --
        unstructured systems replicate by popularity, not by rule."""
        holders = [node_id]
        if replicas > 1:
            if rng is None:
                raise ValueError("extra replicas need an rng")
            pool = [n for n in self.nodes if n != node_id]
            holders.extend(rng.sample(pool, min(replicas - 1, len(pool))))
        for holder in holders:
            self.nodes[holder].files.add(file_id)
        return holders

    def query(self, file_id: int, origin: int, ttl: int) -> FloodResult:
        """Breadth-first flood with the given TTL; every edge traversal
        is one message."""
        if origin not in self.nodes:
            raise ValueError("unknown origin")
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        visited: Set[int] = {origin}
        queue = deque([(origin, 0)])
        messages = 0
        hops_to_hit: Optional[int] = None
        while queue:
            node_id, depth = queue.popleft()
            node = self.nodes[node_id]
            if file_id in node.files and hops_to_hit is None:
                hops_to_hit = depth
                # The real protocol keeps flooding (other branches are
                # already in flight); we do too, so message counts are
                # honest rather than best-case.
            if depth >= ttl:
                continue
            for neighbour in node.neighbours:
                messages += 1  # the query copy sent over this edge
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append((neighbour, depth + 1))
        return FloodResult(
            found=hops_to_hit is not None,
            messages=messages,
            hops_to_hit=hops_to_hit,
            nodes_reached=len(visited),
        )

    def average_state_size(self) -> float:
        if not self.nodes:
            return 0.0
        return sum(len(n.neighbours) for n in self.nodes.values()) / len(self.nodes)
