"""Baseline peer-to-peer location schemes (section 3, Related work).

Implemented for the comparison benchmark (E13):

* :mod:`repro.baselines.chord` -- Chord: numeric-difference routing with
  finger tables; O(log N) hops, no locality awareness.
* :mod:`repro.baselines.can_routing` -- CAN: greedy routing in a
  d-dimensional torus of zones; O(d N^(1/d)) hops, constant state.
* :mod:`repro.baselines.flooding` -- Gnutella-style TTL-bounded flooding:
  no guarantees, message cost explodes with coverage.
* :mod:`repro.baselines.central_index` -- Napster-style central index:
  constant-hop lookups, single point of failure.
"""

from repro.baselines.can_routing import CanNetwork
from repro.baselines.central_index import CentralIndexNetwork
from repro.baselines.chord import ChordNetwork
from repro.baselines.flooding import FloodingNetwork

__all__ = [
    "ChordNetwork",
    "CanNetwork",
    "FloodingNetwork",
    "CentralIndexNetwork",
]
