"""Chord (Stoica et al., SIGCOMM 2001) -- the numeric-difference baseline.

Each node keeps a finger table: finger[i] is the first node whose id
succeeds ``n + 2^i`` on the ring, plus a successor list.  Lookups walk
greedily via the closest *preceding* finger until the key falls between a
node and its successor.  Hop count is O(log2 N) -- about ``0.5 log2 N``
expected -- versus Pastry's ``log_2^b N``; Chord makes no attempt at
network locality, which is the contrast benchmark E13 draws.

The overlay is built directly from global membership (the equivalent of
Pastry's oracle bootstrap) since the comparison concerns routing state
and hop counts, not arrival protocols.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ChordRouteResult:
    key: int
    path: List[int]
    delivered: bool

    @property
    def hops(self) -> int:
        return max(len(self.path) - 1, 0)

    @property
    def destination(self) -> Optional[int]:
        return self.path[-1] if self.delivered else None


@dataclass
class ChordNode:
    node_id: int
    fingers: List[int] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    predecessor: int = 0

    def state_size(self) -> int:
        """Distinct node references held (comparable to Pastry's C2)."""
        return len(set(self.fingers) | set(self.successors) | {self.predecessor})


class ChordNetwork:
    """A Chord ring over an m-bit identifier space."""

    def __init__(self, bits: int = 128, successor_count: int = 16) -> None:
        if bits < 8:
            raise ValueError("identifier space too small")
        if successor_count < 1:
            raise ValueError("need at least one successor")
        self.bits = bits
        self.size = 1 << bits
        self.successor_count = successor_count
        self.nodes: Dict[int, ChordNode] = {}
        self._sorted: List[int] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def build(self, n: int, rng: random.Random) -> None:
        """Create n nodes with random ids and exact finger tables."""
        if n < 1:
            raise ValueError("need at least one node")
        while len(self.nodes) < n:
            node_id = rng.getrandbits(self.bits)
            if node_id not in self.nodes:
                self.nodes[node_id] = ChordNode(node_id)
        self._sorted = sorted(self.nodes)
        for node in self.nodes.values():
            self._fill_state(node)

    def _successor_of(self, value: int) -> int:
        """First node id clockwise from *value* (inclusive)."""
        index = bisect.bisect_left(self._sorted, value % self.size)
        return self._sorted[index % len(self._sorted)]

    def _fill_state(self, node: ChordNode) -> None:
        node.fingers = [
            self._successor_of(node.node_id + (1 << i)) for i in range(self.bits)
        ]
        index = bisect.bisect_right(self._sorted, node.node_id)
        count = min(self.successor_count, len(self._sorted) - 1)
        node.successors = [
            self._sorted[(index + j) % len(self._sorted)] for j in range(count)
        ]
        pred_index = (bisect.bisect_left(self._sorted, node.node_id) - 1) % len(self._sorted)
        node.predecessor = self._sorted[pred_index]

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def _in_interval_open_closed(self, value: int, low: int, high: int) -> bool:
        """value in (low, high] on the ring."""
        if low == high:
            return True  # whole ring
        span = (high - low) % self.size
        offset = (value - low) % self.size
        return 0 < offset <= span

    def _closest_preceding(self, node: ChordNode, key: int) -> Optional[int]:
        """The finger most closely preceding *key* (Chord's greedy step)."""
        best = None
        best_offset = -1
        for finger in set(node.fingers) | set(node.successors):
            if finger == node.node_id:
                continue
            # finger in (node, key]: it precedes (or owns) the key, so
            # jumping there makes clockwise progress without overshooting.
            if self._in_interval_open_closed(finger, node.node_id, key):
                offset = (finger - node.node_id) % self.size
                if offset > best_offset:
                    best_offset = offset
                    best = finger
        return best

    def route(self, key: int, origin: int, max_hops: Optional[int] = None) -> ChordRouteResult:
        """Route to the key's successor node (the node that owns the key)."""
        if origin not in self.nodes:
            raise ValueError("unknown origin")
        if max_hops is None:
            max_hops = 4 * self.bits
        key %= self.size
        owner = self._successor_of(key)
        current = self.nodes[origin]
        path = [origin]
        while True:
            if current.node_id == owner:
                return ChordRouteResult(key=key, path=path, delivered=True)
            # Deliver when the key lies in (current, successor]: the
            # successor owns it.
            successor = current.successors[0] if current.successors else current.node_id
            if self._in_interval_open_closed(key, current.node_id, successor):
                path.append(successor)
                return ChordRouteResult(key=key, path=path, delivered=True)
            next_hop = self._closest_preceding(current, key)
            if next_hop is None or next_hop == current.node_id:
                next_hop = successor
            path.append(next_hop)
            if len(path) - 1 > max_hops:
                return ChordRouteResult(key=key, path=path, delivered=False)
            current = self.nodes[next_hop]

    def owner_of(self, key: int) -> int:
        """Ground truth: the node responsible for *key*."""
        return self._successor_of(key % self.size)

    def average_state_size(self) -> float:
        if not self.nodes:
            return 0.0
        return sum(n.state_size() for n in self.nodes.values()) / len(self.nodes)
