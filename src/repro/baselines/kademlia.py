"""Kademlia (Maymounkov & Mazieres, 2002) -- the XOR-metric baseline.

Included alongside Chord/CAN because it became the dominant deployed DHT
(BitTorrent, IPFS/libp2p) of the design family the paper helped start.
Each node keeps k-buckets: for each bit position i, up to ``bucket_size``
contacts whose ids share exactly an i-bit prefix with the node's id.
Lookups are iterative: the querying node repeatedly asks the
``alpha`` closest known contacts for *their* closest contacts until the
closest node to the target stops improving.

Metrics reported in benchmark E13x: lookup hop count (iterations of the
query loop), total messages (each probed contact costs one
request/response), and per-node state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class KademliaNode:
    node_id: int
    buckets: List[List[int]] = field(default_factory=list)

    def contacts(self) -> Set[int]:
        return {c for bucket in self.buckets for c in bucket}

    def state_size(self) -> int:
        return sum(len(bucket) for bucket in self.buckets)


@dataclass
class KademliaLookupResult:
    target: int
    found: int
    iterations: int
    messages: int

    @property
    def hops(self) -> int:
        return self.iterations


class KademliaNetwork:
    """A Kademlia overlay with exact bucket construction."""

    def __init__(self, bits: int = 128, bucket_size: int = 20, alpha: int = 3) -> None:
        if bits < 8:
            raise ValueError("identifier space too small")
        if bucket_size < 1 or alpha < 1:
            raise ValueError("bucket_size and alpha must be >= 1")
        self.bits = bits
        self.bucket_size = bucket_size
        self.alpha = alpha
        self.nodes: Dict[int, KademliaNode] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def build(self, n: int, rng: random.Random) -> None:
        """Create n nodes and fill each node's k-buckets from the global
        membership (the steady state a long-running network converges to)."""
        if n < 1:
            raise ValueError("need at least one node")
        while len(self.nodes) < n:
            node_id = rng.getrandbits(self.bits)
            if node_id not in self.nodes:
                self.nodes[node_id] = KademliaNode(node_id)
        ids = list(self.nodes)
        for node in self.nodes.values():
            node.buckets = [[] for _ in range(self.bits)]
            for other in ids:
                if other == node.node_id:
                    continue
                index = self._bucket_index(node.node_id, other)
                bucket = node.buckets[index]
                if len(bucket) < self.bucket_size:
                    bucket.append(other)

    def _bucket_index(self, a: int, b: int) -> int:
        """Index of the k-bucket of *a* that holds *b*: the position of
        the most significant differing bit."""
        distance = a ^ b
        return distance.bit_length() - 1

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def owner_of(self, target: int) -> int:
        """Ground truth: the node with minimal XOR distance to *target*."""
        return min(self.nodes, key=lambda n: n ^ target)

    def _closest_known(self, node: KademliaNode, target: int, count: int) -> List[int]:
        return sorted(node.contacts(), key=lambda c: c ^ target)[:count]

    def lookup(
        self, target: int, origin: int, max_iterations: Optional[int] = None
    ) -> KademliaLookupResult:
        """Iterative node lookup as in the Kademlia paper.

        The querier maintains a shortlist of the closest contacts seen,
        probes the alpha closest unprobed ones each iteration (each probe
        returning that node's closest contacts), and stops when an
        iteration fails to improve the closest known node.
        """
        if origin not in self.nodes:
            raise ValueError("unknown origin")
        if max_iterations is None:
            max_iterations = 4 * self.bits
        origin_node = self.nodes[origin]
        shortlist: Set[int] = set(self._closest_known(origin_node, target, self.bucket_size))
        shortlist.add(origin)
        probed: Set[int] = {origin}
        messages = 0
        iterations = 0
        best = min(shortlist, key=lambda c: c ^ target)
        while iterations < max_iterations:
            candidates = sorted(
                (c for c in shortlist if c not in probed),
                key=lambda c: c ^ target,
            )[: self.alpha]
            if not candidates:
                break
            iterations += 1
            improved = False
            for contact in candidates:
                probed.add(contact)
                messages += 2  # FIND_NODE request + reply
                learned = self._closest_known(self.nodes[contact], target, self.bucket_size)
                shortlist.update(learned)
            new_best = min(shortlist, key=lambda c: c ^ target)
            if (new_best ^ target) < (best ^ target):
                best = new_best
                improved = True
            if not improved:
                break
        return KademliaLookupResult(
            target=target, found=best, iterations=iterations, messages=messages
        )

    def average_state_size(self) -> float:
        if not self.nodes:
            return 0.0
        return sum(n.state_size() for n in self.nodes.values()) / len(self.nodes)
