"""Network substrate: topologies, proximity metrics, latency.

Pastry's locality properties (section 2.2 of the paper) are defined
against "a scalar proximity metric, such as the number of IP hops,
geographic distance, or a combination".  This package supplies such
metrics over synthetic topologies:

* Euclidean plane / sphere point sets -- geographic distance, the metric
  the Pastry paper's own simulations use;
* random-graph shortest-path hop counts -- an IP-hop-like metric built on
  a sparse connected graph.
"""

from repro.netsim.index import (
    GridProximityIndex,
    LinearProximityIndex,
    ProximityIndex,
)
from repro.netsim.latency import LatencyModel, ProximityLatency, UniformLatency
from repro.netsim.topology import (
    EuclideanPlaneTopology,
    RandomGraphTopology,
    SphereTopology,
    Topology,
)

__all__ = [
    "Topology",
    "EuclideanPlaneTopology",
    "SphereTopology",
    "RandomGraphTopology",
    "ProximityIndex",
    "GridProximityIndex",
    "LinearProximityIndex",
    "LatencyModel",
    "UniformLatency",
    "ProximityLatency",
]
