"""Latency models mapping proximity to message delay.

The discrete-event protocols (keep-alives, failure detection) need a delay
per message.  The models here turn the topology's scalar proximity into a
latency, optionally with jitter, so that experiments can study timeout
tuning without hard-coding delay constants throughout the protocol code.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

from repro.netsim.topology import Topology


class LatencyModel(ABC):
    """Maps an (origin, destination) endpoint pair to a one-way delay."""

    @abstractmethod
    def delay(self, origin: int, destination: int) -> float:
        """One-way message delay in simulated time units."""


class UniformLatency(LatencyModel):
    """Every message takes the same fixed delay (plus optional jitter).

    Useful as a control: it removes proximity effects entirely, which is
    how we isolate the contribution of locality-aware table construction.
    """

    def __init__(self, base: float = 1.0, jitter: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if base <= 0:
            raise ValueError("base delay must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.base = base
        self.jitter = jitter
        self._rng = rng

    def delay(self, origin: int, destination: int) -> float:
        if origin == destination:
            return 0.0
        if self.jitter > 0 and self._rng is not None:
            return self.base + self._rng.uniform(0.0, self.jitter)
        return self.base


class FaultyLatency(LatencyModel):
    """Wraps any latency model with a fault plan's perturbations.

    Slow nodes see all their traffic stretched by the plan's
    ``slow_factor``; planned delay faults add seeded extra latency.  The
    wrapped model stays untouched, so the same experiment runs clean or
    chaotic by swapping one object.
    """

    def __init__(self, base: LatencyModel, plan) -> None:
        """*plan* is a :class:`repro.faults.plan.FaultPlan` (duck-typed
        to avoid a dependency cycle: anything with ``perturb_delay``)."""
        self.base = base
        self.plan = plan

    def delay(self, origin: int, destination: int) -> float:
        return self.plan.perturb_delay(
            origin, destination, self.base.delay(origin, destination)
        )


class ProximityLatency(LatencyModel):
    """Delay proportional to the topology's proximity metric.

    ``delay = fixed + scale * distance(origin, destination)``, modelling a
    per-hop processing cost plus propagation proportional to distance.
    """

    def __init__(self, topology: Topology, scale: float = 0.01, fixed: float = 0.5) -> None:
        if scale < 0 or fixed < 0:
            raise ValueError("scale and fixed must be non-negative")
        if scale == 0 and fixed == 0:
            raise ValueError("delay model would always return zero")
        self.topology = topology
        self.scale = scale
        self.fixed = fixed

    def delay(self, origin: int, destination: int) -> float:
        if origin == destination:
            return 0.0
        return self.fixed + self.scale * self.topology.distance(origin, destination)
