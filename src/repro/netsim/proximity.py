"""Helpers over the proximity metric.

These are the small selection utilities Pastry's locality heuristics use:
pick the proximally nearest candidate, rank a set of candidates by
distance from a reference endpoint, measure route stretch.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.netsim.topology import Topology


def nearest(
    topology: Topology, origin: int, candidates: Optional[Iterable[int]] = None
) -> Optional[int]:
    """The candidate proximally closest to *origin*, or None if empty.

    With ``candidates=None`` the pool is every registered endpoint except
    *origin*; when the topology maintains a spatial endpoint index
    (:meth:`~repro.netsim.topology.Topology.endpoint_index`) the query
    delegates to it instead of scanning.  Ties are broken by the
    candidate address, which keeps the choice deterministic across runs
    and identical between the indexed and linear paths.
    """
    if candidates is None:
        index = topology.endpoint_index()
        if index is not None:
            return index.nearest(origin, exclude=(origin,))
        candidates = (c for c in _all_endpoints(topology) if c != origin)
    distance = topology.distance
    best: Optional[int] = None
    best_key: Optional[Tuple[float, int]] = None
    for candidate in candidates:
        key = (distance(origin, candidate), candidate)
        if best_key is None or key < best_key:
            best_key = key
            best = candidate
    return best


def _all_endpoints(topology: Topology) -> List[int]:
    for attr in ("_points", "_attachment"):
        registry = getattr(topology, attr, None)
        if registry is not None:
            return list(registry)
    raise TypeError(
        f"{type(topology).__name__} does not expose its endpoints; "
        "pass an explicit candidate iterable"
    )


def rank_by_proximity(topology: Topology, origin: int, candidates: Iterable[int]) -> List[int]:
    """Candidates sorted nearest-first from *origin* (ties by address)."""
    return sorted(candidates, key=lambda c: (topology.distance(origin, c), c))


def k_nearest(topology: Topology, origin: int, candidates: Iterable[int], k: int) -> List[int]:
    """The *k* proximally nearest candidates, nearest first.

    Uses a bounded heap (``heapq.nsmallest``, O(n log k)) instead of
    sorting the whole candidate pool; the (distance, address) key makes
    the result identical to ``rank_by_proximity(...)[:k]``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    distance = topology.distance
    return heapq.nsmallest(k, candidates, key=lambda c: (distance(origin, c), c))


def route_stretch(topology: Topology, route: Sequence[int]) -> float:
    """Ratio of the distance travelled along *route* to the direct
    distance between its endpoints.

    This is the quantity the paper reports as "only 50% higher than the
    corresponding distance of the source and destination" (a stretch of
    about 1.5).  Returns 1.0 for degenerate routes (identical endpoints).
    """
    if len(route) < 2:
        return 1.0
    direct = topology.distance(route[0], route[-1])
    if direct <= 0.0:
        return 1.0
    return topology.path_distance(list(route)) / direct
