"""Helpers over the proximity metric.

These are the small selection utilities Pastry's locality heuristics use:
pick the proximally nearest candidate, rank a set of candidates by
distance from a reference endpoint, measure route stretch.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.netsim.topology import Topology


def nearest(topology: Topology, origin: int, candidates: Iterable[int]) -> Optional[int]:
    """The candidate proximally closest to *origin*, or None if empty.

    Ties are broken by the candidate address, which keeps the choice
    deterministic across runs.
    """
    best: Optional[int] = None
    best_key: Optional[Tuple[float, int]] = None
    for candidate in candidates:
        key = (topology.distance(origin, candidate), candidate)
        if best_key is None or key < best_key:
            best_key = key
            best = candidate
    return best


def rank_by_proximity(topology: Topology, origin: int, candidates: Iterable[int]) -> List[int]:
    """Candidates sorted nearest-first from *origin* (ties by address)."""
    return sorted(candidates, key=lambda c: (topology.distance(origin, c), c))


def k_nearest(topology: Topology, origin: int, candidates: Iterable[int], k: int) -> List[int]:
    """The *k* proximally nearest candidates."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return rank_by_proximity(topology, origin, candidates)[:k]


def route_stretch(topology: Topology, route: Sequence[int]) -> float:
    """Ratio of the distance travelled along *route* to the direct
    distance between its endpoints.

    This is the quantity the paper reports as "only 50% higher than the
    corresponding distance of the source and destination" (a stretch of
    about 1.5).  Returns 1.0 for degenerate routes (identical endpoints).
    """
    if len(route) < 2:
        return 1.0
    direct = topology.distance(route[0], route[-1])
    if direct <= 0.0:
        return 1.0
    return topology.path_distance(list(route)) / direct
