"""Spatial proximity indexes over a topology's endpoints.

The simulator's hottest scan is "which registered endpoint is proximally
nearest to X?" -- asked once per arrival during join-mode overlay
construction, which makes ``build(n, method="join")`` quadratic when the
answer comes from a linear sweep.  A :class:`ProximityIndex` maintains a
*membership set* (a subset of the topology's endpoints, e.g. only the
live nodes) and answers ``nearest`` / ``k_nearest`` queries against it.

Two implementations:

* :class:`GridProximityIndex` -- a uniform grid over the plane of a
  :class:`~repro.netsim.topology.EuclideanPlaneTopology`, searched with
  an expanding ring of cells.  Near-constant query cost at the node
  densities the experiments use, and it rebuilds itself at a finer
  resolution as membership grows so cell occupancy stays bounded.
* :class:`LinearProximityIndex` -- the generic fallback for topologies
  with no geometric structure (graphs, spheres): a plain scan, but
  behind the same interface so callers never branch.

Both produce *bit-identical* answers: the nearest member under the key
``(distance, address)`` (ties broken towards the smaller address), and
``k_nearest`` ordered by that same key.  The equivalence test suite
asserts this on hundreds of random configurations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Collection, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.topology import EuclideanPlaneTopology, Topology

_EMPTY: frozenset = frozenset()


class ProximityIndex(ABC):
    """A maintained membership set supporting nearest-member queries."""

    @abstractmethod
    def add(self, address: int) -> None:
        """Insert an endpoint into the membership set (idempotent).

        The endpoint must already be registered with the topology."""

    @abstractmethod
    def discard(self, address: int) -> None:
        """Remove an endpoint from the membership set (idempotent)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of members."""

    @abstractmethod
    def __contains__(self, address: int) -> bool:
        """Membership test."""

    @abstractmethod
    def nearest(
        self, origin: int, exclude: Collection[int] = _EMPTY
    ) -> Optional[int]:
        """The member proximally closest to *origin*, or None if the
        membership set (minus *exclude*) is empty.

        Ties are broken towards the smaller address, so the answer is
        deterministic and identical across implementations.  *origin*
        need not itself be a member, but must be a registered endpoint.
        """

    @abstractmethod
    def k_nearest(
        self, origin: int, k: int, exclude: Collection[int] = _EMPTY
    ) -> List[int]:
        """The k members nearest *origin*, ordered by ``(distance,
        address)``.  Returns fewer than k when membership is smaller."""


class LinearProximityIndex(ProximityIndex):
    """Generic fallback: a plain scan over the membership set."""

    def __init__(self, topology: "Topology") -> None:
        self._topology = topology
        self._members: Set[int] = set()

    def add(self, address: int) -> None:
        self._members.add(address)

    def discard(self, address: int) -> None:
        self._members.discard(address)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, address: int) -> bool:
        return address in self._members

    def nearest(
        self, origin: int, exclude: Collection[int] = _EMPTY
    ) -> Optional[int]:
        distance = self._topology.distance
        best: Optional[int] = None
        best_key: Optional[Tuple[float, int]] = None
        for member in self._members:
            if member in exclude:
                continue
            key = (distance(origin, member), member)
            if best_key is None or key < best_key:
                best_key = key
                best = member
        return best

    def k_nearest(
        self, origin: int, k: int, exclude: Collection[int] = _EMPTY
    ) -> List[int]:
        if k < 0:
            raise ValueError("k must be non-negative")
        distance = self._topology.distance
        ranked = sorted(
            (m for m in self._members if m not in exclude),
            key=lambda m: (distance(origin, m), m),
        )
        return ranked[:k]


class GridProximityIndex(ProximityIndex):
    """Uniform-grid index over a Euclidean plane topology.

    Members are bucketed into square cells; a query scans the origin's
    cell and then expanding Chebyshev rings of cells, stopping once no
    unscanned ring can contain a closer point.  Because every point in a
    ring-``r`` cell is *strictly* farther than ``(r-1) * cell_size`` from
    the origin, stopping when the current best distance is ``<=`` that
    bound can never skip a closer member or an equidistant tie-breaker.

    The grid re-buckets itself (doubling the per-axis resolution) when
    mean cell occupancy exceeds ``target_occupancy``, keeping queries
    ~O(occupancy) as membership grows.
    """

    def __init__(
        self,
        topology: "EuclideanPlaneTopology",
        resolution: int = 8,
        target_occupancy: int = 4,
    ) -> None:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        if target_occupancy < 1:
            raise ValueError("target_occupancy must be >= 1")
        self._topology = topology
        self._side = topology.side
        self._target_occupancy = target_occupancy
        self._resolution = resolution
        self._cell_size = self._side / resolution
        self._members: Dict[int, Tuple[int, int]] = {}  # address -> cell
        self._cells: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------ #
    # bucketing
    # ------------------------------------------------------------------ #

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        last = self._resolution - 1
        return (
            min(int(x / self._cell_size), last),
            min(int(y / self._cell_size), last),
        )

    def _maybe_grow(self) -> None:
        capacity = self._resolution * self._resolution * self._target_occupancy
        if len(self._members) <= capacity:
            return
        while len(self._members) > self._resolution * self._resolution * self._target_occupancy:
            self._resolution *= 2
        self._cell_size = self._side / self._resolution
        members = list(self._members)
        self._members.clear()
        self._cells.clear()
        position = self._topology.position
        for address in members:
            x, y = position(address)
            cell = self._cell_of(x, y)
            self._members[address] = cell
            self._cells.setdefault(cell, []).append(address)

    def add(self, address: int) -> None:
        if address in self._members:
            return
        x, y = self._topology.position(address)
        cell = self._cell_of(x, y)
        self._members[address] = cell
        self._cells.setdefault(cell, []).append(address)
        self._maybe_grow()

    def discard(self, address: int) -> None:
        cell = self._members.pop(address, None)
        if cell is None:
            return
        bucket = self._cells[cell]
        bucket.remove(address)
        if not bucket:
            del self._cells[cell]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, address: int) -> bool:
        return address in self._members

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _ring_cells(self, center: Tuple[int, int], ring: int) -> List[Tuple[int, int]]:
        """Grid cells at Chebyshev distance *ring* from *center* that
        currently hold at least one member."""
        cx, cy = center
        res = self._resolution
        cells = self._cells
        if ring == 0:
            return [(cx, cy)] if (cx, cy) in cells else []
        out: List[Tuple[int, int]] = []
        x_lo, x_hi = cx - ring, cx + ring
        y_lo, y_hi = cy - ring, cy + ring
        for x in range(max(x_lo, 0), min(x_hi, res - 1) + 1):
            if y_lo >= 0 and (x, y_lo) in cells:
                out.append((x, y_lo))
            if y_hi < res and (x, y_hi) in cells:
                out.append((x, y_hi))
        for y in range(max(y_lo + 1, 0), min(y_hi - 1, res - 1) + 1):
            if x_lo >= 0 and (x_lo, y) in cells:
                out.append((x_lo, y))
            if x_hi < res and (x_hi, y) in cells:
                out.append((x_hi, y))
        return out

    def nearest(
        self, origin: int, exclude: Collection[int] = _EMPTY
    ) -> Optional[int]:
        if not self._members:
            return None
        x, y = self._topology.position(origin)
        center = self._cell_of(x, y)
        distance = self._topology.distance
        cell_size = self._cell_size
        best: Optional[int] = None
        best_key: Optional[Tuple[float, int]] = None
        # Every point in a ring-r cell is strictly farther than
        # (r-1)*cell_size, so once best <= that bound we can stop.
        max_ring = self._resolution  # covers the whole grid from any cell
        for ring in range(max_ring + 1):
            if best_key is not None and best_key[0] <= (ring - 1) * cell_size:
                break
            for cell in self._ring_cells(center, ring):
                for member in self._cells[cell]:
                    if member in exclude:
                        continue
                    key = (distance(origin, member), member)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = member
        return best

    def k_nearest(
        self, origin: int, k: int, exclude: Collection[int] = _EMPTY
    ) -> List[int]:
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0 or not self._members:
            return []
        x, y = self._topology.position(origin)
        center = self._cell_of(x, y)
        distance = self._topology.distance
        cell_size = self._cell_size
        found: List[Tuple[float, int]] = []
        max_ring = self._resolution
        for ring in range(max_ring + 1):
            if len(found) >= k:
                found.sort()
                found = found[:k]
                # The k-th best so far; unscanned rings are strictly
                # farther than (ring-1)*cell_size, so they cannot improve.
                if found[-1][0] <= (ring - 1) * cell_size:
                    break
            for cell in self._ring_cells(center, ring):
                for member in self._cells[cell]:
                    if member in exclude:
                        continue
                    found.append((distance(origin, member), member))
        found.sort()
        return [member for _, member in found[:k]]
