"""Synthetic network topologies with a scalar proximity metric.

A topology assigns each endpoint (keyed by an opaque address, here an int)
a position, and answers ``distance(a, b)``.  Pastry uses the metric in two
places: choosing among candidate routing-table entries (prefer the
proximally closest) and evaluating locality (route stretch, nearest-replica
hit rate).
"""

from __future__ import annotations

import heapq
import math
import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.index import (
    GridProximityIndex,
    LinearProximityIndex,
    ProximityIndex,
)


class Topology(ABC):
    """Abstract topology: endpoints with pairwise scalar distances."""

    @abstractmethod
    def add_endpoint(self, address: int) -> None:
        """Register a new endpoint and assign it a position."""

    @abstractmethod
    def distance(self, a: int, b: int) -> float:
        """Scalar proximity between two registered endpoints.

        Must be symmetric and zero iff ``a == b`` (for distinct positions).
        """

    @abstractmethod
    def remove_endpoint(self, address: int) -> None:
        """Forget an endpoint (a node that left the network)."""

    def path_distance(self, hops: List[int]) -> float:
        """Total distance along a sequence of endpoint addresses."""
        return sum(self.distance(a, b) for a, b in zip(hops, hops[1:]))

    def unary_distance(self, origin: int) -> Callable[[int], float]:
        """A one-argument ``distance(other)`` with *origin* fixed.

        The oracle build evaluates millions of distances from the same
        origin in a row; topologies with per-endpoint positions override
        this to hoist the origin's coordinates out of the inner loop.
        The default simply binds :meth:`distance`.
        """
        full_distance = self.distance
        return lambda other: full_distance(origin, other)

    def batch_distance(self, origin: int) -> Callable[[List[int]], List[float]]:
        """A ``distances(others) -> [float]`` evaluator with *origin* fixed.

        The oracle's table fill ranks whole candidate pools at once; a
        batch evaluator lets topologies run the pool in one comprehension
        instead of one closure call per candidate.  The default wraps
        :meth:`unary_distance`.
        """
        unary = self.unary_distance(origin)
        return lambda others: [unary(other) for other in others]

    def make_index(self) -> ProximityIndex:
        """A fresh, empty :class:`~repro.netsim.index.ProximityIndex`
        suited to this topology's geometry.

        The caller owns the membership: it adds/discards endpoints as
        its own notion of "eligible" changes (e.g. the overlay tracks
        live nodes only).  Metric topologies with exploitable structure
        override this to return a sublinear index; the default is the
        linear-scan fallback, which is correct for any topology.
        """
        return LinearProximityIndex(self)

    def endpoint_index(self) -> Optional[ProximityIndex]:
        """An index over *all* currently registered endpoints, kept in
        sync automatically -- or None when the topology does not maintain
        one.  Query helpers (:func:`repro.netsim.proximity.nearest`)
        delegate to it when present.
        """
        return None


class EuclideanPlaneTopology(Topology):
    """Endpoints are uniform random points in a [0, side) x [0, side) square.

    This is the simplest geographic-distance model and the one used for
    the locality experiments (E5, E6): distances satisfy the triangle
    inequality exactly, so route stretch is well defined.
    """

    def __init__(self, rng: random.Random, side: float = 1000.0) -> None:
        if side <= 0:
            raise ValueError("side must be positive")
        self._rng = rng
        self.side = side
        self._points: Dict[int, Tuple[float, float]] = {}
        self._endpoint_index: Optional[GridProximityIndex] = None

    def add_endpoint(self, address: int) -> None:
        if address in self._points:
            raise ValueError(f"endpoint {address} already registered")
        self._points[address] = (
            self._rng.uniform(0.0, self.side),
            self._rng.uniform(0.0, self.side),
        )
        if self._endpoint_index is not None:
            self._endpoint_index.add(address)

    def remove_endpoint(self, address: int) -> None:
        if address in self._points and self._endpoint_index is not None:
            self._endpoint_index.discard(address)
        self._points.pop(address, None)

    def position(self, address: int) -> Tuple[float, float]:
        return self._points[address]

    def distance(self, a: int, b: int) -> float:
        xa, ya = self._points[a]
        xb, yb = self._points[b]
        return math.hypot(xa - xb, ya - yb)

    def unary_distance(self, origin: int) -> Callable[[int], float]:
        points = self._points
        ox, oy = points[origin]
        hypot = math.hypot

        def from_origin(other: int) -> float:
            x, y = points[other]
            return hypot(x - ox, y - oy)

        return from_origin

    def batch_distance(self, origin: int) -> Callable[[List[int]], List[float]]:
        points = self._points
        ox, oy = points[origin]
        hypot = math.hypot
        get = points.__getitem__

        def distances(others: List[int]) -> List[float]:
            return [hypot(p[0] - ox, p[1] - oy) for p in map(get, others)]

        return distances

    def make_index(self) -> ProximityIndex:
        return GridProximityIndex(self)

    def endpoint_index(self) -> ProximityIndex:
        """Lazily built grid over every registered endpoint; kept in sync
        by ``add_endpoint`` / ``remove_endpoint`` once created."""
        if self._endpoint_index is None:
            index = GridProximityIndex(self)
            for address in self._points:
                index.add(address)
            self._endpoint_index = index
        return self._endpoint_index

    def __len__(self) -> int:
        return len(self._points)


class SphereTopology(Topology):
    """Endpoints are uniform random points on a sphere; distance is the
    great-circle distance.

    The Pastry paper's simulations place nodes on a sphere; we offer the
    same model so locality results can be cross-checked between metrics.
    """

    def __init__(self, rng: random.Random, radius: float = 6371.0) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        self._rng = rng
        self.radius = radius
        self._points: Dict[int, Tuple[float, float, float]] = {}

    def add_endpoint(self, address: int) -> None:
        if address in self._points:
            raise ValueError(f"endpoint {address} already registered")
        # Uniform on the sphere: normalise a 3D Gaussian sample.
        while True:
            x = self._rng.gauss(0.0, 1.0)
            y = self._rng.gauss(0.0, 1.0)
            z = self._rng.gauss(0.0, 1.0)
            norm = math.sqrt(x * x + y * y + z * z)
            if norm > 1e-9:
                break
        self._points[address] = (x / norm, y / norm, z / norm)

    def remove_endpoint(self, address: int) -> None:
        self._points.pop(address, None)

    def distance(self, a: int, b: int) -> float:
        if a == b:
            return 0.0  # acos(dot) would return a float-noise epsilon
        xa, ya, za = self._points[a]
        xb, yb, zb = self._points[b]
        dot = max(-1.0, min(1.0, xa * xb + ya * yb + za * zb))
        return self.radius * math.acos(dot)

    def __len__(self) -> int:
        return len(self._points)


class RandomGraphTopology(Topology):
    """An IP-hop-like metric: shortest-path hop count in a random graph.

    Endpoints attach to routers of a fixed random ``k``-neighbour router
    core; distance between endpoints is the hop distance between their
    routers (+2 access hops).  Distances are computed on demand with a
    BFS per source router and memoised.
    """

    def __init__(
        self,
        rng: random.Random,
        routers: int = 200,
        degree: int = 4,
    ) -> None:
        if routers < 2:
            raise ValueError("need at least 2 routers")
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self._rng = rng
        self.router_count = routers
        self._adjacency: List[List[int]] = [[] for _ in range(routers)]
        self._build_router_core(degree)
        self._attachment: Dict[int, int] = {}
        self._bfs_cache: Dict[int, List[int]] = {}

    def _build_router_core(self, degree: int) -> None:
        # Ring + random chords: guarantees connectivity, approximates a
        # small-world AS graph.
        for i in range(self.router_count):
            self._connect(i, (i + 1) % self.router_count)
        for i in range(self.router_count):
            for _ in range(degree - 2):
                j = self._rng.randrange(self.router_count)
                if j != i:
                    self._connect(i, j)

    def _connect(self, a: int, b: int) -> None:
        if b not in self._adjacency[a]:
            self._adjacency[a].append(b)
        if a not in self._adjacency[b]:
            self._adjacency[b].append(a)

    def add_endpoint(self, address: int) -> None:
        if address in self._attachment:
            raise ValueError(f"endpoint {address} already registered")
        self._attachment[address] = self._rng.randrange(self.router_count)

    def remove_endpoint(self, address: int) -> None:
        self._attachment.pop(address, None)

    def _hops_from(self, router: int) -> List[int]:
        cached = self._bfs_cache.get(router)
        if cached is not None:
            return cached
        dist = [-1] * self.router_count
        dist[router] = 0
        frontier = [router]
        while frontier:
            next_frontier = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        next_frontier.append(v)
            frontier = next_frontier
        self._bfs_cache[router] = dist
        return dist

    def distance(self, a: int, b: int) -> float:
        ra = self._attachment[a]
        rb = self._attachment[b]
        if a == b:
            return 0.0
        if ra == rb:
            return 2.0  # both access links through the same router
        return float(self._hops_from(ra)[rb] + 2)

    def __len__(self) -> int:
        return len(self._attachment)


class WeightedGraphTopology(Topology):
    """Shortest-path metric over a randomly weighted router graph.

    Like :class:`RandomGraphTopology` but edges carry latency-like
    weights, so the metric is continuous rather than integral.  Uses
    Dijkstra with memoised single-source results.
    """

    def __init__(
        self,
        rng: random.Random,
        routers: int = 200,
        degree: int = 4,
        min_weight: float = 1.0,
        max_weight: float = 20.0,
    ) -> None:
        if min_weight <= 0 or max_weight < min_weight:
            raise ValueError("need 0 < min_weight <= max_weight")
        self._rng = rng
        self.router_count = routers
        self._edges: Dict[int, List[Tuple[int, float]]] = {i: [] for i in range(routers)}
        self._build(degree, min_weight, max_weight)
        self._attachment: Dict[int, int] = {}
        self._sssp_cache: Dict[int, List[float]] = {}

    def _build(self, degree: int, lo: float, hi: float) -> None:
        def connect(a: int, b: int) -> None:
            if a == b or any(nbr == b for nbr, _ in self._edges[a]):
                return
            w = self._rng.uniform(lo, hi)
            self._edges[a].append((b, w))
            self._edges[b].append((a, w))

        for i in range(self.router_count):
            connect(i, (i + 1) % self.router_count)
        for i in range(self.router_count):
            for _ in range(max(degree - 2, 0)):
                connect(i, self._rng.randrange(self.router_count))

    def add_endpoint(self, address: int) -> None:
        if address in self._attachment:
            raise ValueError(f"endpoint {address} already registered")
        self._attachment[address] = self._rng.randrange(self.router_count)

    def remove_endpoint(self, address: int) -> None:
        self._attachment.pop(address, None)

    def _dist_from(self, router: int) -> List[float]:
        cached = self._sssp_cache.get(router)
        if cached is not None:
            return cached
        dist = [math.inf] * self.router_count
        dist[router] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, router)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self._edges[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        self._sssp_cache[router] = dist
        return dist

    def distance(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        ra = self._attachment[a]
        rb = self._attachment[b]
        if ra == rb:
            return 1.0
        return self._dist_from(ra)[rb] + 1.0

    def __len__(self) -> int:
        return len(self._attachment)
