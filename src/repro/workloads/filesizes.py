"""File-size distributions.

Storage-management behaviour under high utilization is driven by the
file-size distribution's heavy tail: most files are small, but a few
large files dominate the bytes and are the ones diversion must place
carefully (and the ones rejected first -- claim C9).  The SOSP'01
evaluation uses web-proxy and filesystem traces with exactly this shape;
the generators below are parameterised to match it.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List


class FileSizeDistribution(ABC):
    """Draws file sizes in bytes."""

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """One file size (always >= 1 byte)."""

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]


class LognormalSizes(FileSizeDistribution):
    """Lognormal sizes: the classic fit for filesystem file sizes.

    ``median`` is the distribution's median in bytes; ``sigma`` controls
    tail weight (1.0-1.5 matches published filesystem studies).  An
    optional cap models the trace's maximum object size.
    """

    def __init__(self, median: int = 8192, sigma: float = 1.3, cap: int = 0) -> None:
        if median < 1:
            raise ValueError("median must be >= 1 byte")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if cap < 0:
            raise ValueError("cap must be non-negative (0 disables)")
        self.median = median
        self.sigma = sigma
        self.cap = cap
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> int:
        size = int(rng.lognormvariate(self._mu, self.sigma)) + 1
        if self.cap:
            size = min(size, self.cap)
        return size

    def __repr__(self) -> str:
        return f"LognormalSizes(median={self.median}, sigma={self.sigma}, cap={self.cap})"


class ParetoSizes(FileSizeDistribution):
    """Pareto sizes: an even heavier tail (web object sizes).

    ``alpha`` around 1.1-1.3 reproduces web-trace byte distributions;
    the cap keeps single files from exceeding any plausible node.
    """

    def __init__(self, minimum: int = 1024, alpha: float = 1.2, cap: int = 1 << 28) -> None:
        if minimum < 1:
            raise ValueError("minimum must be >= 1 byte")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if cap < minimum:
            raise ValueError("cap must be >= minimum")
        self.minimum = minimum
        self.alpha = alpha
        self.cap = cap

    def sample(self, rng: random.Random) -> int:
        size = int(self.minimum * rng.paretovariate(self.alpha))
        return min(max(size, self.minimum), self.cap)

    def __repr__(self) -> str:
        return f"ParetoSizes(min={self.minimum}, alpha={self.alpha}, cap={self.cap})"


class TraceLikeSizes(FileSizeDistribution):
    """A web-proxy-trace-like mixture: mostly small lognormal objects
    with a Pareto tail of large ones.

    This is the distribution the storage benchmarks use by default: it
    produces the size skew that makes the no-diversion baseline stall
    well below full utilization while diversion keeps accepting files.
    """

    def __init__(
        self,
        median: int = 8192,
        sigma: float = 1.1,
        tail_fraction: float = 0.05,
        tail_minimum: int = 262144,
        tail_alpha: float = 1.3,
        cap: int = 1 << 26,
    ) -> None:
        if not 0.0 <= tail_fraction < 1.0:
            raise ValueError("tail_fraction must be in [0, 1)")
        self.body = LognormalSizes(median=median, sigma=sigma, cap=cap)
        self.tail = ParetoSizes(minimum=tail_minimum, alpha=tail_alpha, cap=cap)
        self.tail_fraction = tail_fraction

    def sample(self, rng: random.Random) -> int:
        if rng.random() < self.tail_fraction:
            return self.tail.sample(rng)
        return self.body.sample(rng)

    def __repr__(self) -> str:
        return (
            f"TraceLikeSizes(body={self.body!r}, tail={self.tail!r}, "
            f"tail_fraction={self.tail_fraction})"
        )
