"""Node storage-capacity distributions.

PAST nodes advertise widely differing capacities (desktop disks vs
dedicated servers).  The SOSP'01 evaluation draws node capacities from a
truncated normal distribution and discards outliers beyond a bounded
ratio of the mean -- extreme mismatches between one node's capacity and
its leaf set's would defeat local (leaf-set-scoped) load balancing.  Both
that generator and a plain uniform one are provided.
"""

from __future__ import annotations

import random
from typing import Callable

CapacityFn = Callable[[random.Random], int]


def uniform_capacities(low: int, high: int) -> CapacityFn:
    """Capacities uniform in [low, high] bytes."""
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")

    def draw(rng: random.Random) -> int:
        return rng.randint(low, high)

    return draw


def bounded_normal_capacities(
    mean: int, stddev_fraction: float = 0.4, min_ratio: float = 0.25, max_ratio: float = 4.0
) -> CapacityFn:
    """Normal capacities truncated to [min_ratio, max_ratio] x mean.

    Re-draws until the sample falls inside the bounds, mirroring the
    companion paper's policy of refusing nodes whose advertised capacity
    is wildly out of line with the rest of the network.
    """
    if mean < 1:
        raise ValueError("mean must be >= 1 byte")
    if stddev_fraction < 0:
        raise ValueError("stddev_fraction must be non-negative")
    if not 0 < min_ratio <= 1 <= max_ratio:
        raise ValueError("need 0 < min_ratio <= 1 <= max_ratio")

    def draw(rng: random.Random) -> int:
        low = mean * min_ratio
        high = mean * max_ratio
        while True:
            value = rng.gauss(mean, mean * stddev_fraction)
            if low <= value <= high:
                return int(value)

    return draw


def fixed_capacities(capacity: int) -> CapacityFn:
    """Every node advertises the same capacity (control condition)."""
    if capacity < 1:
        raise ValueError("capacity must be >= 1 byte")

    def draw(rng: random.Random) -> int:
        return capacity

    return draw
