"""Node churn schedules.

PAST nodes "may join the system at any time and may silently leave the
system without warning" (abstract).  The churn experiments drive the
overlay with schedules of arrival and departure events; this module
generates them as Poisson processes so inter-event times are memoryless,
the standard churn model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

ARRIVAL = "arrival"
DEPARTURE = "departure"


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a point in simulated time."""

    time: float
    kind: str  # ARRIVAL or DEPARTURE

    def __post_init__(self) -> None:
        if self.kind not in (ARRIVAL, DEPARTURE):
            raise ValueError(f"unknown churn event kind: {self.kind!r}")
        if self.time < 0:
            raise ValueError("event time must be non-negative")


def poisson_churn_schedule(
    rng: random.Random,
    duration: float,
    arrival_rate: float,
    departure_rate: float,
) -> List[ChurnEvent]:
    """Independent Poisson arrival and departure processes over
    [0, duration); returns events sorted by time.

    Rates are events per unit time.  Equal rates keep the expected
    network size constant; unequal rates grow or shrink it.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if arrival_rate < 0 or departure_rate < 0:
        raise ValueError("rates must be non-negative")
    events: List[ChurnEvent] = []
    for rate, kind in ((arrival_rate, ARRIVAL), (departure_rate, DEPARTURE)):
        if rate == 0:
            continue
        t = rng.expovariate(rate)
        while t < duration:
            events.append(ChurnEvent(time=t, kind=kind))
            t += rng.expovariate(rate)
    events.sort(key=lambda e: e.time)
    return events


def session_lengths(rng: random.Random, count: int, mean: float) -> List[float]:
    """Exponential node session lengths (time between a node's arrival
    and its departure), used to pick departure victims realistically."""
    if mean <= 0:
        raise ValueError("mean session length must be positive")
    return [rng.expovariate(1.0 / mean) for _ in range(count)]
