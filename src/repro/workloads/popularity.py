"""Request popularity: Zipf-distributed lookups.

Non-uniform popularity is what makes caching matter (claim C11): a small
set of hot files attracts most lookups, so cached copies near clients
absorb load and shorten routes.  Web and file-sharing request streams are
classically Zipf with exponent near 1.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterator, List, Sequence, TypeVar

Item = TypeVar("Item")


class ZipfPopularity:
    """Ranks 1..n with P(rank i) proportional to 1/i^s.

    Sampling uses the precomputed CDF and binary search: O(log n) per
    draw, exact (no rejection)."""

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise ValueError("need at least one rank")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (i ** exponent) for i in range(1, n + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cdf = cumulative

    def sample_rank(self, rng: random.Random) -> int:
        """A 1-based rank."""
        return bisect.bisect_left(self._cdf, rng.random()) + 1

    def sample(self, rng: random.Random, items: Sequence[Item]) -> Item:
        """An item drawn by Zipf rank (items[0] is the most popular)."""
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        return items[self.sample_rank(rng) - 1]

    def probability(self, rank: int) -> float:
        """Exact P(rank)."""
        if not 1 <= rank <= self.n:
            raise ValueError("rank out of range")
        lower = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - lower


def request_stream(
    rng: random.Random,
    items: Sequence[Item],
    count: int,
    exponent: float = 1.0,
) -> Iterator[Item]:
    """A lazy stream of *count* Zipf-popular requests over *items*.

    Popularity rank follows a random permutation of the items, so the
    hot set is not correlated with insertion order.
    """
    if not items:
        raise ValueError("cannot generate requests over no items")
    ranked = list(items)
    rng.shuffle(ranked)
    zipf = ZipfPopularity(len(ranked), exponent)
    for _ in range(count):
        yield zipf.sample(rng, ranked)
