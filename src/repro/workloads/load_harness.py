"""Locust-style load generator for the live storage cluster.

Drives a :class:`~repro.live.storage.LiveStorageCluster` -- over either
transport, though the point is the socket one -- with a seeded stream of
PAST operations in the canonical **1:3 store:retrieve mix**, and reports
p50/p95/p99 latencies per operation from the obs histograms.

Two driving modes, the standard load-testing pair:

* **closed loop** (default): ``clients`` concurrent clients, each
  issuing its next operation as soon as the previous one completes --
  concurrency is fixed, arrival rate adapts to service rate.  With an
  operation budget the schedule is *deterministic per seed*: each
  client owns a pre-generated op sequence drawn from its own seeded rng
  stream, so which operations run, on which files, from which origins
  is independent of scheduling interleave (latencies, of course, are
  not -- determinism claims are about the schedule and its results).
* **open loop** (``arrival_rate > 0``): operations fire at seeded
  exponential inter-arrival times regardless of completions -- fixed
  offered load, unbounded concurrency, the mode that surfaces queueing
  collapse (Kong et al.'s latency-SLO methodology).

Determinism rules (enforced by the repo linter on ``workloads/``): no
wall-clock reads -- latencies come from an injected monotonic *clock*
(defaulting to the running loop's clock); all randomness from rngs
seeded off the harness seed.

Every store inserts fresh :class:`~repro.core.files.RealData` content
(real bytes, not a synthetic size description), so over the socket
transport the cost ledger's real-frame pricing and the wire itself
carry genuine payloads.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.errors import DegradedError
from repro.core.files import RealData
from repro.core.smartcard import make_uncertified_card
from repro.sim.rng import stable_seed

OP_STORE = "store"
OP_RETRIEVE = "retrieve"


@dataclass(frozen=True)
class LoadProfile:
    """Shape of the offered load."""

    clients: int = 8
    operations: int = 200
    #: store:retrieve weights; the PAST evaluation's canonical 1:3 mix.
    store_weight: int = 1
    retrieve_weight: int = 3
    #: > 0 switches to open-loop arrivals at this rate (ops/second);
    #: ``clients`` is then ignored.
    arrival_rate: float = 0.0
    #: Bytes of RealData per stored file.
    file_size: int = 2048
    replication_factor: int = 3
    #: Files inserted (uncounted) before the run so the first retrieves
    #: have something to find.
    warmup_files: int = 8

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ValueError("operations must be >= 1")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.store_weight < 0 or self.retrieve_weight < 0 \
                or self.store_weight + self.retrieve_weight == 0:
            raise ValueError("mix weights must be non-negative, not both zero")
        if self.warmup_files < 1 and self.retrieve_weight > 0:
            raise ValueError("retrieves need at least one warmup file")


@dataclass
class LoadReport:
    """Everything one load run produced.

    ``signature()`` is the deterministic slice -- what ran and what it
    returned, no timing -- which two same-seed runs must agree on.
    """

    seed: int
    mode: str
    clients: int
    wall_seconds: float = 0.0
    ops: Dict[str, dict] = field(default_factory=dict)
    errors: Dict[str, int] = field(default_factory=dict)
    outcomes: List[str] = field(default_factory=list)
    #: SLO verdict block (obs/slo.evaluate_load_slo), attached by the
    #: CLI when the run is gated.
    slo: Optional[dict] = None

    @property
    def total_operations(self) -> int:
        return sum(op["count"] for op in self.ops.values())

    @property
    def store_fraction(self) -> float:
        total = self.total_operations
        store = self.ops.get(OP_STORE, {}).get("count", 0)
        return store / total if total else 0.0

    @property
    def throughput(self) -> float:
        return self.total_operations / self.wall_seconds \
            if self.wall_seconds > 0 else 0.0

    def signature(self) -> dict:
        """The schedule-and-results fingerprint (timing-free)."""
        return {
            "seed": self.seed,
            "mode": self.mode,
            "outcomes": sorted(self.outcomes),
            "errors": dict(sorted(self.errors.items())),
        }

    def to_json(self) -> str:
        body = {
            "seed": self.seed,
            "mode": self.mode,
            "clients": self.clients,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_ops_per_s": round(self.throughput, 2),
            "store_fraction": round(self.store_fraction, 4),
            "ops": self.ops,
            "errors": self.errors,
        }
        if self.slo is not None:
            body["slo"] = self.slo
        return json.dumps(body, indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [
            f"load run: seed={self.seed} mode={self.mode} "
            f"clients={self.clients}",
            f"  {self.total_operations} ops in {self.wall_seconds:.2f}s "
            f"({self.throughput:.1f} ops/s), "
            f"store fraction {self.store_fraction:.2f}",
        ]
        for op in sorted(self.ops):
            stats = self.ops[op]
            lines.append(
                f"  {op:9s} n={stats['count']:5d} ok={stats['ok']:5d}  "
                f"p50={stats['p50_ms']:8.2f}ms  "
                f"p95={stats['p95_ms']:8.2f}ms  "
                f"p99={stats['p99_ms']:8.2f}ms"
            )
        if self.errors:
            lines.append(f"  errors: {self.errors}")
        if self.slo is not None:
            from repro.obs.slo import format_verdict

            lines.extend("  " + line for line in format_verdict(self.slo))
        return "\n".join(lines)


class LoadHarness:
    """Run one load profile against a started storage cluster."""

    def __init__(self, cluster, profile: Optional[LoadProfile] = None,
                 seed: int = 0,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.cluster = cluster
        self.profile = profile if profile is not None else LoadProfile()
        self.seed = seed
        self._clock = clock
        card_rng = random.Random(stable_seed(seed, "load-card"))
        self._card = make_uncertified_card(
            card_rng, usage_quota=1 << 50, backend="insecure_fast"
        )
        #: file_ids successfully stored, shared retrieve population.
        self._stored: List[int] = []
        self._name_sequence = 0

    # ------------------------------------------------------------------ #
    # operation construction
    # ------------------------------------------------------------------ #

    def _fresh_file(self, rng: random.Random):
        """A new certificate + RealData pair (unique name per harness)."""
        self._name_sequence += 1
        name = f"load-{self.seed}-{self._name_sequence}"
        content_rng = random.Random(
            stable_seed(self.seed, "content", self._name_sequence)
        )
        data = RealData(content_rng.randbytes(self.profile.file_size))
        certificate = self._card.issue_file_certificate(
            name, data, self.profile.replication_factor,
            salt=self._name_sequence, insertion_date=0,
        )
        return certificate, data

    def _count_op(self, kind: str, outcome: str) -> None:
        """Publish one op outcome as a live counter, so a per-window
        scraper sees degradation *while it happens* (the SLO burn-rate
        input), not just in the end-of-run report."""
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.counter("load.ops", op=kind, outcome=outcome).increment()

    async def _run_op(self, kind: str, rng: random.Random,
                      report: LoadReport,
                      histograms: Dict[str, list]) -> None:
        origin = rng.choice(self.cluster.live_ids())
        clock = self._clock
        try:
            if kind == OP_STORE:
                certificate, data = self._fresh_file(rng)
                start = clock()
                result = await self.cluster.insert(certificate, data, origin)
                elapsed = clock() - start
                ok = bool(result.get("success"))
                if ok:
                    self._stored.append(certificate.file_id)
            else:
                file_id = rng.choice(self._stored)
                start = clock()
                result = await self.cluster.lookup(file_id, origin)
                elapsed = clock() - start
                ok = result.get("data") is not None
            histograms[kind].append(elapsed)
            outcome = "ok" if ok else "miss"
            report.outcomes.append(f"{kind}:{outcome}")
            self._count_op(kind, outcome)
        except DegradedError:
            report.errors[kind] = report.errors.get(kind, 0) + 1
            report.outcomes.append(f"{kind}:degraded")
            self._count_op(kind, "degraded")

    def _op_sequence(self) -> List[str]:
        """The run's exact op multiset in seeded-shuffled order.

        The mix is honored *exactly* (up to rounding), not just in
        expectation -- per-op sampling at small N drifts several sigma
        from 1:3, which would make the mix assertion flaky.
        """
        profile = self.profile
        total_weight = profile.store_weight + profile.retrieve_weight
        stores = round(profile.operations * profile.store_weight / total_weight)
        ops = [OP_STORE] * stores \
            + [OP_RETRIEVE] * (profile.operations - stores)
        rng = random.Random(stable_seed(self.seed, "mix"))
        rng.shuffle(ops)
        return ops

    def _schedules(self) -> List[List[str]]:
        """The op sequence dealt round-robin to clients: deterministic
        per seed and interleave-independent."""
        ops = self._op_sequence()
        return [ops[client::self.profile.clients]
                for client in range(self.profile.clients)]

    # ------------------------------------------------------------------ #
    # driving loops
    # ------------------------------------------------------------------ #

    async def run(self) -> LoadReport:
        profile = self.profile
        if self._clock is None:
            self._clock = asyncio.get_running_loop().time
        open_loop = profile.arrival_rate > 0
        report = LoadReport(
            seed=self.seed,
            mode="open" if open_loop else "closed",
            clients=1 if open_loop else profile.clients,
        )
        histograms: Dict[str, list] = {OP_STORE: [], OP_RETRIEVE: []}

        warmup_rng = random.Random(stable_seed(self.seed, "warmup"))
        for _ in range(profile.warmup_files):
            certificate, data = self._fresh_file(warmup_rng)
            origin = warmup_rng.choice(self.cluster.live_ids())
            result = await self.cluster.insert(certificate, data, origin)
            if result.get("success"):
                self._stored.append(certificate.file_id)
        if not self._stored and profile.retrieve_weight > 0:
            raise RuntimeError("warmup stored nothing; cluster unhealthy")

        start = self._clock()
        if open_loop:
            await self._run_open_loop(report, histograms)
        else:
            await self._run_closed_loop(report, histograms)
        report.wall_seconds = self._clock() - start
        self._summarise(report, histograms)
        return report

    async def _run_closed_loop(self, report: LoadReport,
                               histograms: Dict[str, list]) -> None:
        async def client(index: int, schedule: List[str]) -> None:
            rng = random.Random(stable_seed(self.seed, "client", index))
            for kind in schedule:
                await self._run_op(kind, rng, report, histograms)

        await asyncio.gather(*(
            client(index, schedule)
            for index, schedule in enumerate(self._schedules())
        ))

    async def _run_open_loop(self, report: LoadReport,
                             histograms: Dict[str, list]) -> None:
        profile = self.profile
        arrivals_rng = random.Random(stable_seed(self.seed, "arrivals"))
        op_rng = random.Random(stable_seed(self.seed, "client", 0))
        tasks: List[asyncio.Task] = []
        loop = asyncio.get_running_loop()
        for kind in self._op_sequence():
            tasks.append(loop.create_task(
                self._run_op(kind, op_rng, report, histograms)
            ))
            await asyncio.sleep(
                arrivals_rng.expovariate(profile.arrival_rate)
            )
        await asyncio.gather(*tasks)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def _summarise(self, report: LoadReport,
                   histograms: Dict[str, list]) -> None:
        metrics = getattr(self.cluster.obs, "metrics", None)
        for kind, samples in histograms.items():
            if not samples:
                continue
            histogram = None
            if metrics is not None:
                # Publish into the obs registry so the percentiles the
                # report quotes are the obs histograms' percentiles.
                histogram = metrics.histogram("load.latency_seconds", op=kind)
                histogram.extend(samples)
            else:  # pragma: no cover - obs is on by default
                from repro.obs.metrics import Histogram

                histogram = Histogram("load.latency_seconds")
                histogram.extend(samples)
            ok = sum(
                1 for outcome in report.outcomes
                if outcome == f"{kind}:ok"
            )
            report.ops[kind] = {
                "count": histogram.count,
                "ok": ok,
                "p50_ms": round(histogram.percentile(50) * 1000, 3),
                "p95_ms": round(histogram.percentile(95) * 1000, 3),
                "p99_ms": round(histogram.percentile(99) * 1000, 3),
                "mean_ms": round(histogram.mean * 1000, 3),
            }
