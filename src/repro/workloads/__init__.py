"""Synthetic workload generators.

The SOSP'01 companion evaluation drives PAST with real web-proxy and
filesystem traces; those are not redistributable, so this package
generates synthetic equivalents with the distributional properties the
results depend on:

* heavy-tailed file sizes (lognormal / Pareto mixtures,
  :mod:`repro.workloads.filesizes`);
* heterogeneous node storage capacities
  (:mod:`repro.workloads.capacities`);
* skewed request popularity (Zipf, :mod:`repro.workloads.popularity`);
* node churn schedules (:mod:`repro.workloads.churn`);
* a Locust-style live-cluster load harness
  (:mod:`repro.workloads.load_harness`).
"""

from repro.workloads.capacities import (
    bounded_normal_capacities,
    uniform_capacities,
)
from repro.workloads.churn import ChurnEvent, poisson_churn_schedule
from repro.workloads.filesizes import (
    FileSizeDistribution,
    LognormalSizes,
    ParetoSizes,
    TraceLikeSizes,
)
from repro.workloads.load_harness import LoadHarness, LoadProfile, LoadReport
from repro.workloads.popularity import ZipfPopularity, request_stream

__all__ = [
    "FileSizeDistribution",
    "LognormalSizes",
    "ParetoSizes",
    "TraceLikeSizes",
    "uniform_capacities",
    "bounded_normal_capacities",
    "ZipfPopularity",
    "request_stream",
    "ChurnEvent",
    "poisson_churn_schedule",
    "LoadHarness",
    "LoadProfile",
    "LoadReport",
]
