"""Content publishing: popularity, caching, and group storage.

The paper's second motivating scenario (section 1): a storage utility
"permits a group of nodes to jointly store or publish content that
exceeds the capacity of any individual node", and caching of popular
files balances the query load.

A publisher group releases a content set far larger than any single
node; a crowd of readers then fetches it with Zipf popularity.  The
example reports how en-route caching absorbs the hot items' load and
shortens routes as the crowd keeps reading.

Run:  python examples/content_publishing.py
"""

import random

from repro import PastNetwork, RngRegistry, SyntheticData
from repro.workloads.popularity import ZipfPopularity

NODES = 150
NODE_CAPACITY = 600_000          # no node can hold the catalogue alone
ITEMS = 60
ITEM_SIZE = 40_000               # catalogue = 2.4 MB >> one node's 0.6 MB
READERS = 40
READS_PER_READER = 25


def main() -> None:
    network = PastNetwork(rngs=RngRegistry(1984), cache_policy="gds")
    network.build(NODES, method="join", capacity_fn=lambda rng: NODE_CAPACITY)
    catalogue_bytes = ITEMS * ITEM_SIZE
    print(f"{NODES} nodes x {NODE_CAPACITY:,} B; catalogue is "
          f"{catalogue_bytes:,} B -- {catalogue_bytes / NODE_CAPACITY:.1f}x "
          "any single node's capacity")

    publisher = network.create_client(usage_quota=catalogue_bytes * 4)
    handles = [
        publisher.insert(f"episode-{i:03d}.ogg", SyntheticData(i, ITEM_SIZE),
                         replication_factor=3)
        for i in range(ITEMS)
    ]
    print(f"published {ITEMS} items with k=3 (storage spread over the ring)")

    zipf = ZipfPopularity(ITEMS, exponent=1.0)
    rng = random.Random(7)
    readers = [network.create_client(usage_quota=0) for _ in range(READERS)]

    def run_wave(label):
        hops = []
        cache_hits = 0
        for reader in readers:
            for _ in range(READS_PER_READER):
                handle = zipf.sample(rng, handles)
                result = reader.lookup_verbose(handle.file_id)
                hops.append(result.hops)
                cache_hits += int(result.response.source == "cache")
        total = len(hops)
        print(f"  {label}: mean hops {sum(hops) / total:.2f}, "
              f"{100.0 * cache_hits / total:.1f}% served from caches")
        return sum(hops) / total

    print(f"\n{READERS} readers, {READS_PER_READER} Zipf(1.0) reads each:")
    first = run_wave("wave 1 (cold caches)")
    second = run_wave("wave 2 (warm caches)")
    assert second <= first

    # Where does the hottest item's load actually land?
    hot = handles[0]
    holders = {r.node_id for r in hot.receipts}
    served_by_replica = served_by_cache = 0
    for _ in range(200):
        reader = rng.choice(readers)
        result = reader.lookup_verbose(hot.file_id)
        if result.response.serving_node in holders:
            served_by_replica += 1
        elif result.response.source == "cache":
            served_by_cache += 1
    print(f"\nhottest item, 200 further reads: {served_by_replica} hit its 3 "
          f"replica holders, {served_by_cache} absorbed by caches elsewhere")
    cached_at = sum(1 for n in network.live_past_nodes() if hot.file_id in n.cache)
    print(f"copies of the hottest item now cached on {cached_at} nodes")


if __name__ == "__main__":
    main()
