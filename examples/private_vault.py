"""A private vault: pseudonyms, client-side encryption, and sharing.

Section 1: users hold "initially unlinkable pseudonyms", may use several
of them, and share files "by distributing the fileId (potentially
anonymously) and, if necessary, a decryption key".  Section 2.1: "users
may use encryption to protect the privacy of their data ... data
encryption does not involve the smartcards."

One user operates two pseudonyms -- "work" and "home" -- stores an
encrypted document under each, proves the storage nodes hold only
ciphertext, shares one document with a friend by handing over the token,
and shows that the two pseudonyms cannot be linked through anything the
network observes.

Run:  python examples/private_vault.py
"""

from repro import PastNetwork, RngRegistry
from repro.core.pseudonym import ShareToken, UserAgent
from repro.crypto.symmetric import DecryptionError, generate_key


def main() -> None:
    network = PastNetwork(rngs=RngRegistry(1999))
    network.build(60, method="join", capacity_fn=lambda rng: 2_000_000)
    print(f"{network.pastry.live_count()}-node network\n")

    # One human, two unlinkable pseudonyms with separate quotas.
    user = UserAgent(network)
    user.create_pseudonym("work", usage_quota=500_000)
    user.create_pseudonym("home", usage_quota=500_000)

    work_doc = b"Q3 compensation plan -- confidential"
    home_doc = b"dear diary, the overlay converged today"
    work_token = user.store_private("comp-plan.doc", work_doc, pseudonym="work")
    home_token = user.store_private("diary.txt", home_doc, pseudonym="home")
    print("stored two encrypted documents under different pseudonyms")

    # What do the storage nodes actually hold?
    holders = 0
    leaked = 0
    for node in network.live_past_nodes():
        for token, plaintext in ((work_token, work_doc), (home_token, home_doc)):
            replica = node.store.get(token.file_id)
            if replica is not None and replica.data is not None:
                holders += 1
                if plaintext in replica.data.to_bytes():
                    leaked += 1
    print(f"checked {holders} stored replicas: {leaked} contain any plaintext")

    # Unlinkability: the only signer-visible information differs per
    # pseudonym, so an observing node cannot tie the two files together.
    cert_work = network.files[work_token.file_id].certificate
    cert_home = network.files[home_token.file_id].certificate
    linked = cert_work.owner == cert_home.owner
    print(f"signing keys identical across pseudonyms? {linked} "
          "(unlinkable: an observer sees two unrelated users)\n")

    # Sharing: hand the friend the token (fileId + key).  The friend has
    # no smartcard at all -- read-only users do not need one.
    print("sharing the diary with a friend (token = fileId + key)...")
    friend_copy = UserAgent.retrieve(network, home_token)
    print(f"  friend reads: {friend_copy.decode()!r}")

    # An eavesdropper who learned only the fileId gets sealed bytes, and
    # guessing a key does not help.
    eavesdropper_token = ShareToken(
        home_token.file_id, home_token.replication_factor,
        key=generate_key(network.rngs.stream("eve")),
    )
    try:
        UserAgent.retrieve(network, eavesdropper_token)
        print("  [!!] eavesdropper decrypted the diary")
    except DecryptionError:
        print("  eavesdropper with the fileId but a wrong key: decryption refused")


if __name__ == "__main__":
    main()
